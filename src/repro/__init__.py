"""Reproduction of "SIREN: Software Identification and Recognition in HPC Systems".

The package is organised as the paper's system plus every substrate it needs:

* :mod:`repro.hashing`   -- SSDeep-style fuzzy hashing (CTPH) and xxHash,
* :mod:`repro.elf`       -- ELF64 builder/parser (strings, symbols, .comment, DT_NEEDED),
* :mod:`repro.hpcsim`    -- simulated HPC system (filesystem, modules, ld.so, Slurm),
* :mod:`repro.corpus`    -- synthetic software corpus (system tools, scientific packages,
  Python environments, toolchains, shared libraries),
* :mod:`repro.collector` -- the SIREN ``LD_PRELOAD`` collector (the core contribution),
* :mod:`repro.transport` -- chunked UDP-style messaging with loss simulation,
* :mod:`repro.db`        -- SQLite storage,
* :mod:`repro.postprocess` -- batch message consolidation and Python package extraction,
* :mod:`repro.ingest`    -- streaming ingest (incremental consolidation, sharded receivers),
* :mod:`repro.analysis`  -- all evaluation analyses (Tables 2-8, Figures 2-5),
* :mod:`repro.workload`  -- the opt-in deployment-campaign generator,
* :mod:`repro.core`      -- the ``SirenFramework`` facade and ``AnalysisPipeline``.

Quickstart
----------
>>> from repro.workload import CampaignConfig, DeploymentCampaign
>>> from repro.core import AnalysisPipeline
>>> result = DeploymentCampaign(CampaignConfig(scale=0.002)).run()
>>> pipeline = AnalysisPipeline(result.records, result.user_names)
>>> rows = pipeline.table5_user_applications()
"""

from repro.analysis.live import LiveAnalysis
from repro.core import AnalysisPipeline, SirenConfig, SirenFramework
from repro.workload import CampaignConfig, CampaignResult, DeploymentCampaign

__version__ = "1.0.0"

__all__ = [
    "AnalysisPipeline",
    "LiveAnalysis",
    "SirenConfig",
    "SirenFramework",
    "CampaignConfig",
    "CampaignResult",
    "DeploymentCampaign",
    "__version__",
]
