"""LMOD-style environment module system.

On LUMI the SIREN data-collection library is deployed as a Lua module whose
only job is to prepend ``siren.so`` to ``LD_PRELOAD``; users opt in by loading
the module in their job scripts.  Other modules (Cray programming environment,
compilers, scientific libraries) modify the dynamic-linker search path, which
is why the same system executable can show up with different sets of loaded
shared objects (Table 4 of the paper).

A :class:`Module` here captures exactly those effects: environment variables
to set, search paths to prepend, ``LD_PRELOAD`` entries to add, and dependent
modules that are loaded implicitly (the way ``PrgEnv-cray`` pulls in
``cce`` and ``cray-libsci``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import SimulationError


@dataclass(frozen=True)
class Module:
    """One environment module."""

    name: str
    version: str = "1.0"
    library_paths: tuple[str, ...] = ()
    ld_preload: tuple[str, ...] = ()
    env: tuple[tuple[str, str], ...] = ()
    requires: tuple[str, ...] = ()

    @property
    def full_name(self) -> str:
        """``name/version`` string as it appears in ``LOADEDMODULES``."""
        return f"{self.name}/{self.version}"


@dataclass
class ModuleSystem:
    """Registry plus loader for environment modules."""

    _modules: dict[str, Module] = field(default_factory=dict)

    def register(self, module: Module) -> Module:
        """Register a module under its bare name (last registration wins)."""
        self._modules[module.name] = module
        return module

    def get(self, name: str) -> Module:
        """Look up a module by bare name (``cray-hdf5``) or full name (``cray-hdf5/1.12``)."""
        bare = name.split("/", 1)[0]
        try:
            return self._modules[bare]
        except KeyError as exc:
            raise SimulationError(f"unknown module: {name}") from exc

    def available(self) -> list[str]:
        """Full names of all registered modules."""
        return sorted(module.full_name for module in self._modules.values())

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    def load(self, names: list[str], environment: dict[str, str] | None = None) -> dict[str, str]:
        """Load modules (and their dependencies) into an environment.

        Returns a *new* environment dictionary with ``LOADEDMODULES``,
        ``LD_LIBRARY_PATH`` and ``LD_PRELOAD`` updated, mirroring what
        ``module load`` does to a shell environment.
        """
        env = dict(environment or {})
        loaded: list[str] = [m for m in env.get("LOADEDMODULES", "").split(":") if m]
        ordered = self._resolve_order(names)

        for module in ordered:
            if module.full_name in loaded:
                continue
            loaded.append(module.full_name)
            for key, value in module.env:
                env[key] = value
            if module.library_paths:
                existing = env.get("LD_LIBRARY_PATH", "")
                parts = [p for p in module.library_paths if p]
                if existing:
                    parts.append(existing)
                env["LD_LIBRARY_PATH"] = ":".join(dict.fromkeys(":".join(parts).split(":")))
            if module.ld_preload:
                existing = env.get("LD_PRELOAD", "")
                parts = list(module.ld_preload)
                if existing:
                    parts.append(existing)
                env["LD_PRELOAD"] = ":".join(dict.fromkeys(":".join(parts).split(":")))

        env["LOADEDMODULES"] = ":".join(loaded)
        return env

    def _resolve_order(self, names: list[str]) -> list[Module]:
        """Topologically order the requested modules and their dependencies."""
        ordered: list[Module] = []
        seen: set[str] = set()

        def visit(name: str, stack: tuple[str, ...]) -> None:
            module = self.get(name)
            if module.name in stack:
                raise SimulationError(
                    f"module dependency cycle: {' -> '.join(stack + (module.name,))}"
                )
            if module.name in seen:
                return
            for requirement in module.requires:
                visit(requirement, stack + (module.name,))
            seen.add(module.name)
            ordered.append(module)

        for name in names:
            visit(name, ())
        return ordered
