"""Slurm-like workload manager for the simulated cluster.

LUMI uses Slurm; the only aspects SIREN depends on are (a) the job / step /
rank identifiers exported into every process environment (``SLURM_JOB_ID``,
``SLURM_STEP_ID``, ``SLURM_PROCID``, plus ``HOSTNAME``) and (b) the fact that
a job script spawns a tree of processes (``bash``, ``srun``, ``lua`` for
module loads, the actual application ranks, auxiliary tools such as ``mkdir``
or ``rm``).  This module models job scripts as explicit lists of process
specifications and a scheduler that allocates identifiers and environments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import SimulationError


@dataclass(frozen=True)
class ProcessSpec:
    """One process to launch within a job step.

    Parameters
    ----------
    executable:
        Absolute path of the binary (or Python interpreter) to execute.
    ranks:
        Number of MPI ranks (``SLURM_PROCID`` 0..ranks-1) to launch.
    count:
        How many times this spec repeats within the step (e.g. a loop calling
        ``mkdir`` 500 times).  Each repetition gets a fresh PID.
    python_script:
        Path of the Python script, when the executable is a Python interpreter.
    imported_packages:
        Python packages the script imports (drives the interpreter memory map).
    mapped_files:
        Extra memory-mapped files (native extension modules of those packages).
    duration:
        Simulated wall-clock seconds per process.
    """

    executable: str
    argv: tuple[str, ...] = ()
    ranks: int = 1
    count: int = 1
    python_script: str | None = None
    imported_packages: tuple[str, ...] = ()
    mapped_files: tuple[str, ...] = ()
    duration: int = 1

    def __post_init__(self) -> None:
        if self.ranks < 1:
            raise SimulationError("ProcessSpec.ranks must be >= 1")
        if self.count < 1:
            raise SimulationError("ProcessSpec.count must be >= 1")

    @property
    def total_processes(self) -> int:
        """Number of OS processes this spec expands to."""
        return self.ranks * self.count


@dataclass(frozen=True)
class StepSpec:
    """One job step (one ``srun`` invocation or the batch step itself)."""

    processes: tuple[ProcessSpec, ...]
    uses_srun: bool = False

    @property
    def total_processes(self) -> int:
        """Number of OS processes in this step."""
        return sum(spec.total_processes for spec in self.processes)


@dataclass(frozen=True)
class JobScript:
    """A batch job: modules to load, extra environment, and steps to run."""

    name: str
    modules: tuple[str, ...] = ()
    environment: tuple[tuple[str, str], ...] = ()
    steps: tuple[StepSpec, ...] = ()

    @property
    def total_processes(self) -> int:
        """Number of OS processes across all steps."""
        return sum(step.total_processes for step in self.steps)


@dataclass
class SlurmJob:
    """Accounting record for one submitted job."""

    job_id: int
    user: str
    name: str
    node: str
    submit_time: int
    step_count: int = 0
    process_count: int = 0
    end_time: int = 0


@dataclass
class SlurmScheduler:
    """Job-identifier allocation and per-process environment construction."""

    nodes: tuple[str, ...] = tuple(f"nid{index:06d}" for index in range(1, 9))
    first_job_id: int = 9_100_000
    _next_job_id: int = field(init=False)
    jobs: list[SlurmJob] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise SimulationError("the scheduler needs at least one node")
        self._next_job_id = self.first_job_id

    def allocate_job(self, user: str, name: str, submit_time: int) -> SlurmJob:
        """Allocate the next job id and pick a node (round-robin)."""
        job_id = self._next_job_id
        self._next_job_id += 1
        node = self.nodes[(job_id - self.first_job_id) % len(self.nodes)]
        job = SlurmJob(job_id=job_id, user=user, name=name, node=node,
                       submit_time=submit_time)
        self.jobs.append(job)
        return job

    @staticmethod
    def process_environment(
        job: SlurmJob,
        step_id: int,
        procid: int,
        base_environment: dict[str, str],
    ) -> dict[str, str]:
        """Environment for one rank of one step of ``job``."""
        env = dict(base_environment)
        env["SLURM_JOB_ID"] = str(job.job_id)
        env["SLURM_JOB_NAME"] = job.name
        env["SLURM_STEP_ID"] = str(step_id)
        env["SLURM_PROCID"] = str(procid)
        env["HOSTNAME"] = job.node
        env["USER"] = job.user
        return env

    @property
    def job_count(self) -> int:
        """Number of jobs submitted so far."""
        return len(self.jobs)
