"""``/proc/<pid>/maps`` simulation.

SIREN parses ``/proc/self/maps`` for user executables and Python interpreters;
for the latter the mapped extension modules are later post-processed into the
list of imported Python packages (Figure 3 of the paper).  This module renders
memory-map listings in the kernel's text format from the objects a process has
loaded, so the collector can exercise the same parsing path it would on a real
system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hashing.xxhash import xxh64


@dataclass(frozen=True)
class MemoryRegion:
    """One line of a maps listing."""

    start: int
    end: int
    permissions: str
    offset: int
    device: str
    inode: int
    path: str

    def render(self) -> str:
        """Render in ``/proc/<pid>/maps`` format."""
        return (
            f"{self.start:012x}-{self.end:012x} {self.permissions} "
            f"{self.offset:08x} {self.device} {self.inode:>10d} {self.path}"
        )


def _base_address(path: str) -> int:
    """Deterministic pseudo-ASLR base address for a mapped object."""
    return 0x7F0000000000 + (xxh64(path.encode("utf-8")) % 0x0FFFFF) * 0x10000


def build_memory_map(
    executable: str,
    executable_size: int,
    executable_inode: int,
    loaded_objects: list[tuple[str, int, int]],
    extra_files: list[tuple[str, int, int]] | None = None,
) -> list[MemoryRegion]:
    """Build a plausible memory map for a process.

    Parameters
    ----------
    executable:
        Path of the main executable.
    executable_size, executable_inode:
        Its file size and inode.
    loaded_objects:
        ``(path, size, inode)`` for each loaded shared object.
    extra_files:
        Additional memory-mapped files, e.g. the native extension modules of
        imported Python packages.
    """
    regions: list[MemoryRegion] = []

    def add(path: str, size: int, inode: int, base: int | None = None) -> None:
        start = base if base is not None else _base_address(path)
        size = max(size, 0x1000)
        # Text mapping (r-xp) and data mapping (rw-p), like real ELF mappings.
        regions.append(MemoryRegion(start, start + size, "r-xp", 0, "fd:01", inode, path))
        regions.append(MemoryRegion(start + size, start + size + 0x1000, "rw-p",
                                    size, "fd:01", inode, path))

    add(executable, executable_size, executable_inode, base=0x400000)
    for path, size, inode in loaded_objects:
        add(path, size, inode)
    for path, size, inode in (extra_files or []):
        add(path, size, inode)

    # Anonymous regions every process has.
    regions.append(MemoryRegion(0x7FFE00000000, 0x7FFE00021000, "rw-p", 0, "00:00", 0, "[stack]"))
    regions.append(MemoryRegion(0x7FFF00000000, 0x7FFF00002000, "r-xp", 0, "00:00", 0, "[vdso]"))
    heap_base = 0x1400000
    regions.append(MemoryRegion(heap_base, heap_base + 0x200000, "rw-p", 0, "00:00", 0, "[heap]"))
    return regions


def render_memory_map(regions: list[MemoryRegion]) -> str:
    """Render a full maps listing (one region per line)."""
    return "\n".join(region.render() for region in regions)


def parse_mapped_paths(maps_text: str) -> list[str]:
    """Extract the distinct file paths from a maps listing, in first-seen order.

    This is the post-processing step SIREN applies to the collected maps: the
    pseudo-paths (``[stack]``, ``[heap]``, ``[vdso]``) and anonymous regions
    are dropped, duplicates collapse.
    """
    seen: dict[str, None] = {}
    for line in maps_text.splitlines():
        parts = line.split(None, 5)
        if len(parts) < 6:
            continue
        path = parts[5]
        if path.startswith("["):
            continue
        seen.setdefault(path, None)
    return list(seen)
