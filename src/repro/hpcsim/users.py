"""Users and groups of the simulated cluster.

The deployment campaign in the paper has 12 opt-in users, anonymised as
``user_1`` ... ``user_12``.  The registry assigns stable UIDs/GIDs and home
directories, and supports the same anonymisation step used in the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import SimulationError


@dataclass(frozen=True)
class User:
    """One cluster account."""

    username: str
    uid: int
    gid: int
    project: str = "project_465000000"

    @property
    def home(self) -> str:
        """Home directory path."""
        return f"/users/{self.username}"

    @property
    def project_dir(self) -> str:
        """Project (work) directory path, where user software usually lives."""
        return f"/project/{self.project}/{self.username}"

    @property
    def scratch_dir(self) -> str:
        """Scratch directory path."""
        return f"/scratch/{self.project}/{self.username}"


@dataclass
class UserRegistry:
    """Registry of cluster users with deterministic UID/GID allocation."""

    first_uid: int = 10_000
    _users: dict[str, User] = field(default_factory=dict)

    def add(self, username: str, *, project: str | None = None) -> User:
        """Register a new user (idempotent: re-adding returns the same user)."""
        if username in self._users:
            return self._users[username]
        uid = self.first_uid + len(self._users)
        user = User(
            username=username,
            uid=uid,
            gid=uid,
            project=project or "project_465000000",
        )
        self._users[username] = user
        return user

    def get(self, username: str) -> User:
        """Look up a user by name."""
        try:
            return self._users[username]
        except KeyError as exc:
            raise SimulationError(f"unknown user: {username}") from exc

    def by_uid(self, uid: int) -> User:
        """Look up a user by UID."""
        for user in self._users.values():
            if user.uid == uid:
                return user
        raise SimulationError(f"unknown uid: {uid}")

    def all(self) -> list[User]:
        """All users in registration order."""
        return list(self._users.values())

    def anonymize(self) -> dict[int, str]:
        """Map UIDs to anonymised labels ``user_<n>`` in registration order.

        The paper anonymises by "random assignment of user_<int> to UIDs";
        here the assignment is deterministic (registration order) so tests and
        benchmarks are stable, which does not change any of the analyses.
        """
        return {
            user.uid: f"user_{index + 1}"
            for index, user in enumerate(self._users.values())
        }

    def __len__(self) -> int:
        return len(self._users)

    def __contains__(self, username: str) -> bool:
        return username in self._users
