"""Processes and the pre-load hook runtime.

A :class:`ProcessContext` is the simulator's stand-in for everything a hooked
``siren.so`` constructor can observe from inside a real process: PIDs, UID/GID,
the executable path (``/proc/self/exe``), the environment (Slurm variables,
``LOADEDMODULES``, ``LD_PRELOAD``), the loaded shared objects
(``dl_iterate_phdr``), and the memory map (``/proc/self/maps``).

The :class:`ProcessRuntime` "runs" processes: it resolves the executable
through the dynamic linker, constructs the context, and invokes any registered
pre-load hooks at process start (constructor) and process end (destructor) --
but only when the hook's library was actually injected via ``LD_PRELOAD`` and
the executable is dynamically linked, mirroring the real mechanism and its
stated limitation for static binaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.hpcsim.dynlinker import DynamicLinker, LinkResult
from repro.hpcsim.filesystem import VirtualFilesystem
from repro.hpcsim.memmap import MemoryRegion, build_memory_map, render_memory_map
from repro.util.errors import SimulationError


@dataclass
class ProcessContext:
    """Everything observable from inside one process."""

    pid: int
    ppid: int
    uid: int
    gid: int
    executable: str
    argv: tuple[str, ...]
    environment: dict[str, str]
    hostname: str
    start_time: int
    end_time: int = 0
    link_result: LinkResult | None = None
    memory_map: list[MemoryRegion] = field(default_factory=list)
    python_script: str | None = None
    imported_packages: tuple[str, ...] = ()
    exit_code: int = 0

    # -- convenience accessors (the values SIREN reads) ------------------- #
    @property
    def loaded_objects(self) -> tuple[str, ...]:
        """Paths of the shared objects loaded into the process."""
        return self.link_result.loaded_objects if self.link_result else ()

    @property
    def slurm_job_id(self) -> str:
        """Value of ``SLURM_JOB_ID`` (empty outside a job)."""
        return self.environment.get("SLURM_JOB_ID", "")

    @property
    def slurm_step_id(self) -> str:
        """Value of ``SLURM_STEP_ID``."""
        return self.environment.get("SLURM_STEP_ID", "")

    @property
    def slurm_procid(self) -> str:
        """Value of ``SLURM_PROCID`` (the MPI rank)."""
        return self.environment.get("SLURM_PROCID", "")

    @property
    def loaded_modules(self) -> str:
        """Value of ``LOADEDMODULES``."""
        return self.environment.get("LOADEDMODULES", "")

    def maps_text(self) -> str:
        """The rendered ``/proc/self/maps`` content."""
        return render_memory_map(self.memory_map)


class PreloadHook(Protocol):
    """Interface of an ``LD_PRELOAD``-injected library (constructor/destructor)."""

    #: Path of the shared object implementing the hook (e.g. ``.../siren.so``).
    library_path: str

    def on_process_start(self, context: ProcessContext) -> None:
        """Called at process start (the library constructor)."""

    def on_process_end(self, context: ProcessContext) -> None:
        """Called at process termination (the library destructor)."""


@dataclass
class ProcessRuntime:
    """Launches processes against a filesystem + linker and drives hooks."""

    filesystem: VirtualFilesystem
    linker: DynamicLinker
    _hooks: list[PreloadHook] = field(default_factory=list)
    _next_pid: int = 1000
    processes_launched: int = 0
    hook_failures: int = 0

    def register_hook(self, hook: PreloadHook) -> None:
        """Register a pre-load hook (at most once per library path)."""
        if any(existing.library_path == hook.library_path for existing in self._hooks):
            raise SimulationError(f"hook already registered for {hook.library_path}")
        self._hooks.append(hook)

    def unregister_hook(self, library_path: str) -> None:
        """Remove a previously registered hook."""
        self._hooks = [hook for hook in self._hooks if hook.library_path != library_path]

    def allocate_pid(self) -> int:
        """Allocate the next PID (monotonically increasing, wraps at 4 M)."""
        pid = self._next_pid
        self._next_pid += 1
        if self._next_pid > 4_194_304:  # PID namespace wrap, like the kernel's pid_max
            self._next_pid = 1000
        return pid

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run_process(
        self,
        *,
        executable: str,
        argv: tuple[str, ...] | None = None,
        environment: dict[str, str],
        uid: int,
        gid: int,
        hostname: str,
        ppid: int = 1,
        pid: int | None = None,
        duration: int = 1,
        python_script: str | None = None,
        imported_packages: tuple[str, ...] = (),
        mapped_files: tuple[str, ...] = (),
    ) -> ProcessContext:
        """Execute one process and return its final context.

        Hook exceptions are swallowed (and counted) so that a buggy collector
        can never take down the "user" process -- SIREN's graceful-failure
        design goal.
        """
        if not self.filesystem.exists(executable):
            raise SimulationError(f"cannot execute missing file: {executable}")
        vfile = self.filesystem.get(executable)
        link = self.linker.link(executable, environment)

        loaded_meta: list[tuple[str, int, int]] = []
        for path in link.loaded_objects:
            meta = self.filesystem.stat(path)
            loaded_meta.append((path, meta.size, meta.inode))
        extra_meta: list[tuple[str, int, int]] = []
        for path in mapped_files:
            if self.filesystem.exists(path):
                meta = self.filesystem.stat(path)
                extra_meta.append((path, meta.size, meta.inode))

        start = self.filesystem.clock
        context = ProcessContext(
            pid=pid if pid is not None else self.allocate_pid(),
            ppid=ppid,
            uid=uid,
            gid=gid,
            executable=executable,
            argv=tuple(argv or (executable,)),
            environment=dict(environment),
            hostname=hostname,
            start_time=start,
            end_time=start + max(0, duration),
            link_result=link,
            memory_map=build_memory_map(
                executable, vfile.metadata.size, vfile.metadata.inode,
                loaded_meta, extra_meta,
            ),
            python_script=python_script,
            imported_packages=tuple(imported_packages),
        )
        self.filesystem.touch_atime(executable)
        self.processes_launched += 1

        for hook in self._active_hooks(link):
            try:
                hook.on_process_start(context)
            except Exception:  # noqa: BLE001 - graceful failure is the contract
                self.hook_failures += 1
        for hook in self._active_hooks(link):
            try:
                hook.on_process_end(context)
            except Exception:  # noqa: BLE001
                self.hook_failures += 1
        return context

    def _active_hooks(self, link: LinkResult) -> list[PreloadHook]:
        """Hooks whose library was actually injected into this process."""
        if link.static:
            return []
        preloaded = set(link.preloaded)
        return [hook for hook in self._hooks if hook.library_path in preloaded]
