"""Simulated HPC system substrate.

SIREN was deployed on LUMI, an HPE Cray EX system running Slurm and an
LMOD-style module environment, and collects its data from inside user
processes via ``LD_PRELOAD``.  This subpackage is the stand-in for that
production substrate: a deterministic, in-memory simulation of

* a POSIX-like **virtual filesystem** with per-file metadata (inode, size,
  permissions, owner, timestamps) holding the synthetic executables, shared
  libraries, Python interpreters and scripts (:mod:`repro.hpcsim.filesystem`),
* **users and groups** (:mod:`repro.hpcsim.users`),
* an **environment-module system** that manipulates ``LOADEDMODULES``,
  library search paths and ``LD_PRELOAD`` (:mod:`repro.hpcsim.modules`) -- the
  SIREN deployment itself is just a module that prepends ``siren.so`` to
  ``LD_PRELOAD``,
* a **dynamic linker** that resolves ``DT_NEEDED`` sonames against the
  environment-dependent search path, honours ``LD_PRELOAD``, and records the
  loaded shared objects for each process (:mod:`repro.hpcsim.dynlinker`),
* ``/proc/self/maps``-style **memory maps** (:mod:`repro.hpcsim.memmap`),
* **processes** with PID/PPID/UID/GID and environment
  (:mod:`repro.hpcsim.process`), launched by
* a **Slurm-like scheduler** that assigns job/step/rank identifiers and the
  corresponding ``SLURM_*`` environment variables (:mod:`repro.hpcsim.slurm`),
* tied together by a **cluster** facade that runs job scripts and invokes any
  registered pre-load hooks at process start and exit
  (:mod:`repro.hpcsim.cluster`).
"""

from repro.hpcsim.cluster import Cluster
from repro.hpcsim.dynlinker import DynamicLinker
from repro.hpcsim.filesystem import FileMetadata, VirtualFile, VirtualFilesystem, is_system_path
from repro.hpcsim.modules import Module, ModuleSystem
from repro.hpcsim.process import ProcessContext, ProcessRuntime
from repro.hpcsim.slurm import JobScript, ProcessSpec, SlurmJob, SlurmScheduler, StepSpec
from repro.hpcsim.users import User, UserRegistry

__all__ = [
    "Cluster",
    "DynamicLinker",
    "FileMetadata",
    "VirtualFile",
    "VirtualFilesystem",
    "is_system_path",
    "Module",
    "ModuleSystem",
    "ProcessContext",
    "ProcessRuntime",
    "JobScript",
    "StepSpec",
    "ProcessSpec",
    "SlurmJob",
    "SlurmScheduler",
    "User",
    "UserRegistry",
]
