"""In-memory virtual filesystem with POSIX-like metadata.

SIREN collects executable file metadata (inode number, file size, permissions,
owner UID/GID, and access/modification/change timestamps) and classifies
processes by whether their executable lives under a *system directory*
(``/usr/bin``, ``/lib`` ...) or a *user directory* (project/home/scratch
paths).  The virtual filesystem provides those two facilities: files with full
metadata, and the system-directory classification used by the collector's
selective-collection policy (Table 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util.errors import SimulationError

#: Directories whose executables the paper classifies as "system" processes.
SYSTEM_DIRECTORIES: tuple[str, ...] = (
    "/etc/", "/dev/", "/usr/", "/bin/", "/boot/", "/lib/",
    "/opt/", "/sbin/", "/sys/", "/proc/", "/var/",
)


def is_system_path(path: str) -> bool:
    """True if ``path`` lives under one of the paper's system directories."""
    return any(path.startswith(prefix) for prefix in SYSTEM_DIRECTORIES)


def normalize_path(path: str) -> str:
    """Normalise a path: collapse duplicate slashes, forbid relative paths."""
    if not path.startswith("/"):
        raise SimulationError(f"virtual filesystem paths must be absolute: {path!r}")
    parts = [part for part in path.split("/") if part]
    return "/" + "/".join(parts)


@dataclass(frozen=True)
class FileMetadata:
    """POSIX-style metadata, matching the fields SIREN collects."""

    inode: int
    size: int
    mode: int
    uid: int
    gid: int
    atime: int
    mtime: int
    ctime: int

    def as_dict(self) -> dict[str, int]:
        """Dictionary form used when serialising collector records."""
        return {
            "inode": self.inode,
            "size": self.size,
            "mode": self.mode,
            "uid": self.uid,
            "gid": self.gid,
            "atime": self.atime,
            "mtime": self.mtime,
            "ctime": self.ctime,
        }


@dataclass
class VirtualFile:
    """A file in the virtual filesystem: content plus metadata."""

    path: str
    content: bytes
    metadata: FileMetadata
    executable: bool = False

    @property
    def name(self) -> str:
        """Base name of the file."""
        return self.path.rsplit("/", 1)[-1]

    @property
    def directory(self) -> str:
        """Directory containing the file."""
        head = self.path.rsplit("/", 1)[0]
        return head or "/"


@dataclass
class VirtualFilesystem:
    """A flat path -> file mapping with inode allocation and timestamps.

    The filesystem clock is a simple integer (seconds); the cluster advances
    it as jobs run, so ``mtime``/``ctime`` values are deterministic.
    """

    clock: int = 1_733_000_000  # ~Dec 2024, matching the deployment campaign
    _files: dict[str, VirtualFile] = field(default_factory=dict)
    _next_inode: int = 100_000

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add_file(
        self,
        path: str,
        content: bytes,
        *,
        uid: int = 0,
        gid: int = 0,
        mode: int = 0o644,
        executable: bool = False,
        mtime: int | None = None,
    ) -> VirtualFile:
        """Create or replace a file; replacement bumps ctime and keeps the path."""
        path = normalize_path(path)
        timestamp = self.clock if mtime is None else mtime
        existing = self._files.get(path)
        inode = existing.metadata.inode if existing else self._allocate_inode()
        if executable:
            mode |= 0o111
        metadata = FileMetadata(
            inode=inode,
            size=len(content),
            mode=mode,
            uid=uid,
            gid=gid,
            atime=timestamp,
            mtime=timestamp,
            ctime=self.clock,
        )
        vfile = VirtualFile(path=path, content=bytes(content), metadata=metadata,
                            executable=executable)
        self._files[path] = vfile
        return vfile

    def _allocate_inode(self) -> int:
        inode = self._next_inode
        self._next_inode += 1
        return inode

    def remove(self, path: str) -> None:
        """Delete a file (missing paths raise)."""
        path = normalize_path(path)
        if path not in self._files:
            raise SimulationError(f"cannot remove missing file: {path}")
        del self._files[path]

    def touch_atime(self, path: str) -> None:
        """Record an access (updates atime to the current clock)."""
        vfile = self.get(path)
        vfile.metadata = replace(vfile.metadata, atime=self.clock)

    def advance_clock(self, seconds: int) -> int:
        """Advance the filesystem clock and return the new time."""
        if seconds < 0:
            raise SimulationError("clock cannot move backwards")
        self.clock += seconds
        return self.clock

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def exists(self, path: str) -> bool:
        """True if a file exists at ``path``."""
        return normalize_path(path) in self._files

    def get(self, path: str) -> VirtualFile:
        """Return the file at ``path`` (raises if missing)."""
        path = normalize_path(path)
        try:
            return self._files[path]
        except KeyError as exc:
            raise SimulationError(f"no such file: {path}") from exc

    def read(self, path: str) -> bytes:
        """Return the content of the file at ``path``."""
        return self.get(path).content

    def stat(self, path: str) -> FileMetadata:
        """Return the metadata of the file at ``path``."""
        return self.get(path).metadata

    def listdir(self, directory: str) -> list[str]:
        """Paths of files directly inside ``directory`` (sorted)."""
        directory = normalize_path(directory)
        prefix = directory.rstrip("/") + "/"
        return sorted(
            path for path in self._files
            if path.startswith(prefix) and "/" not in path[len(prefix):]
        )

    def glob_prefix(self, prefix: str) -> list[str]:
        """All paths starting with ``prefix`` (sorted)."""
        return sorted(path for path in self._files if path.startswith(prefix))

    def all_paths(self) -> list[str]:
        """Every path in the filesystem (sorted)."""
        return sorted(self._files)

    def executables(self) -> list[VirtualFile]:
        """All files flagged executable."""
        return [f for f in self._files.values() if f.executable]

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, path: str) -> bool:
        return self.exists(path)
