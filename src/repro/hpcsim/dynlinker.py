"""Dynamic-linker simulation (``ld.so``).

The linker resolves an executable's ``DT_NEEDED`` sonames against an ordered
search path, recursively pulls in the dependencies of each shared object, and
honours ``LD_PRELOAD`` -- which is precisely the mechanism SIREN piggybacks on:
its collection library is injected by listing ``siren.so`` in ``LD_PRELOAD``,
so it is loaded into every *dynamically linked* process and its
constructor/destructor run at process start/exit.

Environment-dependent search paths are what produce the paper's Table 4
phenomenon: the same ``/usr/bin/bash`` loads a different ``libtinfo`` (and
sometimes an extra ``libm``) depending on which modules the user environment
has prepended to ``LD_LIBRARY_PATH``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf.reader import ELFFile, is_elf
from repro.hpcsim.filesystem import VirtualFilesystem
from repro.util.errors import SimulationError

#: Default trusted directories searched after ``LD_LIBRARY_PATH``.
DEFAULT_SEARCH_PATH: tuple[str, ...] = ("/lib64", "/usr/lib64", "/usr/lib")


@dataclass(frozen=True)
class LinkResult:
    """Outcome of linking one executable in one environment."""

    executable: str
    loaded_objects: tuple[str, ...]
    preloaded: tuple[str, ...]
    missing: tuple[str, ...]
    static: bool = False

    @property
    def siren_loaded(self) -> bool:
        """True if the SIREN collection library ended up in the process image."""
        return any(path.endswith("siren.so") for path in self.preloaded)


@dataclass
class DynamicLinker:
    """Resolve shared-object dependencies for executables in a virtual filesystem."""

    filesystem: VirtualFilesystem
    default_paths: tuple[str, ...] = DEFAULT_SEARCH_PATH
    dynamic_cache_enabled: bool = True
    _needed_cache: dict[tuple[str, int], tuple[str, ...]] = field(default_factory=dict)
    _dynamic_cache: dict[tuple[str, int], bool] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # parsing helpers
    # ------------------------------------------------------------------ #
    def _needed_of(self, path: str) -> tuple[str, ...]:
        """``DT_NEEDED`` sonames of the ELF file at ``path`` (cached by mtime)."""
        vfile = self.filesystem.get(path)
        key = (path, vfile.metadata.mtime)
        cached = self._needed_cache.get(key)
        if cached is not None:
            return cached
        if not is_elf(vfile.content):
            needed: tuple[str, ...] = ()
        else:
            needed = tuple(ELFFile(vfile.content).needed_libraries())
        self._needed_cache[key] = needed
        return needed

    def is_dynamic(self, path: str) -> bool:
        """True if the executable at ``path`` is dynamically linked.

        Cached by ``(path, mtime)`` like the DT_NEEDED cache: re-parsing the
        ELF program headers for every process launch was one of the top
        serial costs the campaign profile surfaced.  Set
        ``dynamic_cache_enabled=False`` to force the uncached reference
        behaviour (used for A/B measurement).
        """
        vfile = self.filesystem.get(path)
        if self.dynamic_cache_enabled:
            key = (path, vfile.metadata.mtime)
            cached = self._dynamic_cache.get(key)
            if cached is not None:
                return cached
        content = vfile.content
        if not is_elf(content):
            # Scripts (shebang files) execute through an interpreter which is
            # itself dynamic; treat them as dynamic so hooks apply.
            dynamic = True
        else:
            dynamic = ELFFile(content).is_dynamically_linked
        if self.dynamic_cache_enabled:
            self._dynamic_cache[key] = dynamic
        return dynamic

    # ------------------------------------------------------------------ #
    # search path handling
    # ------------------------------------------------------------------ #
    def search_directories(self, environment: dict[str, str]) -> list[str]:
        """Ordered library search directories for the given environment."""
        directories: list[str] = []
        ld_path = environment.get("LD_LIBRARY_PATH", "")
        for part in ld_path.split(":"):
            if part and part not in directories:
                directories.append(part.rstrip("/"))
        for part in self.default_paths:
            if part not in directories:
                directories.append(part.rstrip("/"))
        return directories

    def resolve_soname(self, soname: str, directories: list[str]) -> str | None:
        """Find the first directory containing ``soname``; return its full path."""
        for directory in directories:
            candidate = f"{directory}/{soname}"
            if self.filesystem.exists(candidate):
                return candidate
        return None

    # ------------------------------------------------------------------ #
    # linking
    # ------------------------------------------------------------------ #
    def link(self, executable: str, environment: dict[str, str]) -> LinkResult:
        """Simulate ``ld.so`` for ``executable`` under ``environment``.

        Returns the ordered list of loaded shared objects (preloads first,
        then breadth-first over the dependency graph, each object once), the
        preloaded objects, and any sonames that could not be resolved.
        Statically linked executables produce an empty result with
        ``static=True`` -- SIREN cannot observe those.
        """
        if not self.is_dynamic(executable):
            return LinkResult(executable=executable, loaded_objects=(), preloaded=(),
                              missing=(), static=True)

        directories = self.search_directories(environment)
        loaded: list[str] = []
        missing: list[str] = []
        seen: set[str] = set()

        # LD_PRELOAD entries are absolute paths (or sonames searched like any
        # other library) loaded before anything else.
        preloaded: list[str] = []
        for entry in environment.get("LD_PRELOAD", "").split(":"):
            entry = entry.strip()
            if not entry:
                continue
            resolved = entry if self.filesystem.exists(entry) else \
                self.resolve_soname(entry, directories)
            if resolved is None:
                missing.append(entry)
                continue
            if resolved not in seen:
                seen.add(resolved)
                preloaded.append(resolved)
                loaded.append(resolved)

        # Breadth-first resolution of DT_NEEDED starting from the executable.
        queue: list[str] = [executable]
        visited_images: set[str] = set()
        while queue:
            image = queue.pop(0)
            if image in visited_images:
                continue
            visited_images.add(image)
            for soname in self._needed_of(image):
                resolved = self.resolve_soname(soname, directories)
                if resolved is None:
                    if soname not in missing:
                        missing.append(soname)
                    continue
                if resolved not in seen:
                    seen.add(resolved)
                    loaded.append(resolved)
                    queue.append(resolved)

        return LinkResult(
            executable=executable,
            loaded_objects=tuple(loaded),
            preloaded=tuple(preloaded),
            missing=tuple(missing),
            static=False,
        )

    def clear_cache(self) -> None:
        """Drop the mtime-keyed caches (used after rebuilding corpus files)."""
        self._needed_cache.clear()
        self._dynamic_cache.clear()


def ensure_library_present(filesystem: VirtualFilesystem, path: str) -> None:
    """Sanity helper for corpus builders: fail fast if a library file is missing."""
    if not filesystem.exists(path):
        raise SimulationError(f"expected shared library missing from filesystem: {path}")
