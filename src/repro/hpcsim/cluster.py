"""The cluster facade: filesystem + users + modules + linker + scheduler.

:class:`Cluster` wires the individual simulator pieces together and exposes
the two operations the rest of the reproduction needs:

* ``register_preload_hook`` -- install the SIREN collector (or any other
  pre-load library) so it runs inside every hooked process, and
* ``run_job`` -- execute a :class:`~repro.hpcsim.slurm.JobScript` on behalf of
  a user: load the requested modules, build the per-process Slurm environment,
  and launch every process of every step through the
  :class:`~repro.hpcsim.process.ProcessRuntime`.

The cluster is deliberately memory-frugal: process contexts are not retained
after their hooks have run (a campaign can simulate hundreds of thousands of
processes), only aggregate counters and the Slurm accounting records remain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hpcsim.dynlinker import DynamicLinker
from repro.hpcsim.filesystem import VirtualFilesystem
from repro.hpcsim.modules import ModuleSystem
from repro.hpcsim.process import PreloadHook, ProcessContext, ProcessRuntime
from repro.hpcsim.slurm import JobScript, SlurmJob, SlurmScheduler
from repro.hpcsim.users import User, UserRegistry
from repro.util.errors import SimulationError
from repro.util.timing import NULL_TIMER


@dataclass
class Cluster:
    """A simulated HPC system (the LUMI stand-in)."""

    name: str = "lumi-sim"
    filesystem: VirtualFilesystem = field(default_factory=VirtualFilesystem)
    users: UserRegistry = field(default_factory=UserRegistry)
    modules: ModuleSystem = field(default_factory=ModuleSystem)
    scheduler: SlurmScheduler = field(default_factory=SlurmScheduler)
    linker: DynamicLinker = field(init=False)
    runtime: ProcessRuntime = field(init=False)
    processes_run: int = 0

    # Stage stopwatch (plain class attribute, not a field: assign an enabled
    # StageTimer on an instance to profile its job execution).
    timer = NULL_TIMER

    def __post_init__(self) -> None:
        self.linker = DynamicLinker(self.filesystem)
        self.runtime = ProcessRuntime(self.filesystem, self.linker)

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #
    def add_user(self, username: str, *, project: str | None = None) -> User:
        """Create a user account (idempotent)."""
        return self.users.add(username, project=project)

    def register_preload_hook(self, hook: PreloadHook) -> None:
        """Install a pre-load hook; its ``library_path`` must exist on the filesystem."""
        if not self.filesystem.exists(hook.library_path):
            raise SimulationError(
                f"hook library {hook.library_path} is not present on the filesystem"
            )
        self.runtime.register_hook(hook)

    def base_environment(self, user: User) -> dict[str, str]:
        """The login environment of a user before any module loads."""
        return {
            "HOME": user.home,
            "USER": user.username,
            "PATH": "/usr/bin:/bin",
            "LOADEDMODULES": "",
        }

    # ------------------------------------------------------------------ #
    # job execution
    # ------------------------------------------------------------------ #
    def run_job(
        self,
        username: str,
        script: JobScript,
        *,
        keep_contexts: bool = False,
    ) -> tuple[SlurmJob, list[ProcessContext]]:
        """Execute a job script for ``username``.

        Returns the Slurm accounting record and, when ``keep_contexts`` is
        true, the full list of process contexts (useful in tests; disabled by
        default to keep large campaigns cheap).
        """
        with self.timer.section("cluster.run_job"):
            return self._run_job(username, script, keep_contexts=keep_contexts)

    def _run_job(
        self,
        username: str,
        script: JobScript,
        *,
        keep_contexts: bool,
    ) -> tuple[SlurmJob, list[ProcessContext]]:
        user = self.users.get(username)
        job = self.scheduler.allocate_job(user.username, script.name, self.filesystem.clock)

        environment = self.base_environment(user)
        for key, value in script.environment:
            environment[key] = value
        if script.modules:
            environment = self.modules.load(list(script.modules), environment)

        contexts: list[ProcessContext] = []
        total_processes = 0
        for step_id, step in enumerate(script.steps):
            for spec in step.processes:
                for _repeat in range(spec.count):
                    parent_pid = self.runtime.allocate_pid()
                    for rank in range(spec.ranks):
                        env = self.scheduler.process_environment(job, step_id, rank, environment)
                        context = self.runtime.run_process(
                            executable=spec.executable,
                            argv=spec.argv or (spec.executable,),
                            environment=env,
                            uid=user.uid,
                            gid=user.gid,
                            hostname=job.node,
                            ppid=parent_pid,
                            duration=spec.duration,
                            python_script=spec.python_script,
                            imported_packages=spec.imported_packages,
                            mapped_files=spec.mapped_files,
                        )
                        total_processes += 1
                        if keep_contexts:
                            contexts.append(context)
            # Each step advances the clock a little so timestamps differ.
            self.filesystem.advance_clock(1)

        job.step_count = len(script.steps)
        job.process_count = total_processes
        job.end_time = self.filesystem.clock
        self.processes_run += total_processes
        return job, contexts

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, int]:
        """Aggregate counters for quick sanity checks."""
        return {
            "users": len(self.users),
            "jobs": self.scheduler.job_count,
            "processes": self.processes_run,
            "files": len(self.filesystem),
            "hook_failures": self.runtime.hook_failures,
        }
