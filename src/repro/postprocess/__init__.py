"""Post-processing: UDP messages -> consolidated per-process records.

Two steps, exactly as in the paper:

1. :mod:`repro.postprocess.consolidate` merges the (possibly chunked, possibly
   partially lost) UDP messages of each process into a single record, and
   merges the Python *script* layer into its parent interpreter record.
2. :mod:`repro.postprocess.python_merge` extracts the imported Python packages
   from the memory-mapped files of Python interpreter processes.
"""

from repro.postprocess.consolidate import (
    Consolidator,
    MessageGroup,
    build_process_record,
    consolidate_store,
    expected_types_for,
)
from repro.postprocess.python_merge import extract_python_packages, package_from_mapped_path

__all__ = [
    "Consolidator",
    "MessageGroup",
    "build_process_record",
    "consolidate_store",
    "expected_types_for",
    "extract_python_packages",
    "package_from_mapped_path",
]
