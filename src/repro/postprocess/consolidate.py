"""Consolidate raw UDP messages into one record per process.

Messages arriving from the collector are grouped by the header key
``(JOBID, STEPID, PID, HASH, HOST, TIME)`` -- the ``HASH`` of the executable
path is part of the key precisely so that ``exec()`` chains reusing a PID
within the same second do not collapse into one another (Section 3.1).
Chunked contents are reassembled from whichever chunks survived the trip, the
Python ``SCRIPT`` layer is folded into its parent interpreter row, imported
Python packages are extracted from the memory map, and the result is one
:class:`~repro.db.store.ProcessRecord` per process, flagged ``incomplete``
when any expected piece is missing.

The record-assembly logic lives in the module-level
:func:`build_process_record` so the batch :class:`Consolidator` and the
streaming :class:`~repro.ingest.incremental.IncrementalConsolidator` produce
records through literally the same code path -- the equivalence of the two
ingest modes reduces to "both hand the same message groups to the same
function".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.collector.classify import ExecutableCategory
from repro.collector.records import InfoType, Layer, parse_keyvalues
from repro.db.store import MessageStore, ProcessRecord
from repro.postprocess.python_merge import extract_python_packages
from repro.transport.chunking import reassemble_chunks

#: Message types expected for every collected process (used for the incomplete flag).
_ALWAYS_EXPECTED = (InfoType.PROCINFO, InfoType.FILEMETA)

#: Content types per category whose absence marks a record incomplete.
_EXPECTED_BY_CATEGORY: dict[str, tuple[InfoType, ...]] = {
    ExecutableCategory.SYSTEM.value: (InfoType.OBJECTS,),
    ExecutableCategory.USER.value: (
        InfoType.OBJECTS, InfoType.MODULES, InfoType.COMPILERS, InfoType.MAPS,
        InfoType.FILE_H, InfoType.STRINGS_H, InfoType.SYMBOLS_H,
    ),
    ExecutableCategory.PYTHON.value: (InfoType.OBJECTS, InfoType.MAPS),
}


def expected_types_for(category: str) -> tuple[InfoType, ...]:
    """All ``SELF``-layer types whose absence marks a record of ``category`` incomplete."""
    return _ALWAYS_EXPECTED + _EXPECTED_BY_CATEGORY.get(category, ())


@dataclass
class MessageGroup:
    """All message chunks of one (process, layer, type)."""

    chunks: dict[int, str] = field(default_factory=dict)
    chunk_total: int = 1

    def add(self, chunk_index: int, chunk_total: int, content: str) -> None:
        self.chunks[chunk_index] = content
        self.chunk_total = max(self.chunk_total, chunk_total)

    @property
    def all_chunks_present(self) -> bool:
        """True once every announced chunk has arrived."""
        return len(self.chunks) >= self.chunk_total

    def reassemble(self) -> tuple[str, bool]:
        result = reassemble_chunks(self.chunks, self.chunk_total)
        return result.content, result.complete


ProcessKey = tuple[str, str, int, str, str, int]
GroupKey = tuple[str, str]


def build_process_record(key: ProcessKey,
                         groups: dict[GroupKey, MessageGroup]) -> ProcessRecord:
    """Assemble one :class:`ProcessRecord` from the message groups of one key.

    Pure function of its inputs: ``groups`` is not mutated, so callers may
    build a record from still-open groups (live snapshots) and rebuild later.
    """
    jobid, stepid, pid, path_hash, host, time = key
    record = ProcessRecord(jobid=jobid, stepid=stepid, pid=pid, hash=path_hash,
                           host=host, time=time)
    missing_chunks = False

    def content_of(layer: Layer, info_type: InfoType) -> str | None:
        nonlocal missing_chunks
        group = groups.get((layer.value, info_type.value))
        if group is None:
            return None
        content, complete = group.reassemble()
        if not complete:
            missing_chunks = True
        return content

    procinfo = content_of(Layer.SELF, InfoType.PROCINFO)
    if procinfo:
        info = parse_keyvalues(procinfo)
        record.executable = info.get("exe", "")
        record.category = info.get("category", "")
        record.uid = _to_int(info.get("uid"))
        record.gid = _to_int(info.get("gid"))
        record.ppid = _to_int(info.get("ppid"))

    record.file_metadata = content_of(Layer.SELF, InfoType.FILEMETA) or ""
    record.modules = content_of(Layer.SELF, InfoType.MODULES) or ""
    record.modules_h = content_of(Layer.SELF, InfoType.MODULES_H) or ""
    record.objects = content_of(Layer.SELF, InfoType.OBJECTS) or ""
    record.objects_h = content_of(Layer.SELF, InfoType.OBJECTS_H) or ""
    record.compilers = content_of(Layer.SELF, InfoType.COMPILERS) or ""
    record.compilers_h = content_of(Layer.SELF, InfoType.COMPILERS_H) or ""
    record.maps = content_of(Layer.SELF, InfoType.MAPS) or ""
    record.maps_h = content_of(Layer.SELF, InfoType.MAPS_H) or ""
    record.file_h = content_of(Layer.SELF, InfoType.FILE_H) or ""
    record.strings_h = content_of(Layer.SELF, InfoType.STRINGS_H) or ""
    record.symbols_h = content_of(Layer.SELF, InfoType.SYMBOLS_H) or ""

    # Merge the Python SCRIPT layer into the interpreter row ------------ #
    script_info = content_of(Layer.SCRIPT, InfoType.PROCINFO)
    if script_info:
        record.script_path = parse_keyvalues(script_info).get("script", "")
    record.script_meta = content_of(Layer.SCRIPT, InfoType.FILEMETA) or ""
    record.script_h = content_of(Layer.SCRIPT, InfoType.FILE_H) or ""

    # Imported Python packages from the memory map ---------------------- #
    if record.maps and (record.category == ExecutableCategory.PYTHON.value
                        or record.script_path):
        record.python_packages = ",".join(extract_python_packages(record.maps))

    record.incomplete = int(missing_chunks or _has_missing_types(record, groups))
    return record


def _has_missing_types(record: ProcessRecord,
                       groups: dict[GroupKey, MessageGroup]) -> bool:
    present = {key for key in groups if key[0] == Layer.SELF.value}
    for expected in expected_types_for(record.category):
        if (Layer.SELF.value, expected.value) not in present:
            return True
    return False


@dataclass
class Consolidator:
    """Turns the raw ``messages`` table into consolidated ``processes`` rows."""

    store: MessageStore
    records_built: int = 0
    incomplete_records: int = 0

    def run(self, *, clear_messages: bool = False) -> list[ProcessRecord]:
        """Consolidate everything currently in the store.

        The resulting records are inserted into the ``processes`` table and
        returned.  ``clear_messages=True`` drops the raw messages afterwards.
        """
        grouped: dict[ProcessKey, dict[GroupKey, MessageGroup]] = defaultdict(dict)
        for row in self.store.iter_messages():
            jobid, stepid, pid, path_hash, host, time, layer, info_type, idx, total, content = row
            key: ProcessKey = (jobid, stepid, pid, path_hash, host, time)
            group_key = (layer, info_type)
            group = grouped[key].setdefault(group_key, MessageGroup())
            group.add(idx, total, content)

        records = [self._build_record(key, groups) for key, groups in sorted(grouped.items())]
        self.store.insert_processes(records)
        self.records_built += len(records)
        if clear_messages:
            self.store.clear_messages()
        return records

    def _build_record(self, key: ProcessKey,
                      groups: dict[GroupKey, MessageGroup]) -> ProcessRecord:
        record = build_process_record(key, groups)
        if record.incomplete:
            self.incomplete_records += 1
        return record


def _to_int(value: str | None) -> int | None:
    try:
        return int(value) if value is not None else None
    except ValueError:
        return None


def consolidate_store(store: MessageStore, *, clear_messages: bool = False) -> list[ProcessRecord]:
    """Convenience wrapper: consolidate ``store`` and return the records."""
    return Consolidator(store).run(clear_messages=clear_messages)
