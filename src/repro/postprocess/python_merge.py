"""Derive imported Python packages from interpreter memory maps.

A Python process maps the native extension modules of every imported package
(``_heapq.cpython-311-x86_64-linux-gnu.so`` from the stdlib's ``lib-dynload``
directory, ``numpy/core/_multiarray_umath...so`` from ``site-packages``, ...).
SIREN collects the memory map of interpreter processes and this step turns the
mapped paths into package names -- the data behind Figure 3.
"""

from __future__ import annotations

import re

from repro.hpcsim.memmap import parse_mapped_paths

_CPYTHON_SUFFIX = re.compile(r"\.cpython-[^.]+\.so$|\.so$")


def _stem(filename: str) -> str:
    """File stem with the ``.cpython-XY-...so`` suffix removed."""
    return _CPYTHON_SUFFIX.sub("", filename)


def package_from_mapped_path(path: str) -> str | None:
    """Map one memory-mapped file path to a Python package name (or ``None``).

    * ``.../lib-dynload/_heapq.cpython-311-x86_64-linux-gnu.so`` -> ``heapq``
    * ``.../site-packages/numpy/core/_multiarray_umath...so``    -> ``numpy``
    * anything else (the interpreter itself, libc, ...)           -> ``None``
    """
    if "/site-packages/" in path:
        tail = path.split("/site-packages/", 1)[1]
        first = tail.split("/", 1)[0]
        if first.endswith(".so"):
            return _stem(first).lstrip("_") or None
        return first or None
    if "/lib-dynload/" in path:
        filename = path.rsplit("/", 1)[-1]
        name = _stem(filename).lstrip("_")
        return name or None
    return None


def extract_python_packages(maps_text: str) -> list[str]:
    """Distinct imported packages from a maps listing, sorted alphabetically."""
    packages: set[str] = set()
    for path in parse_mapped_paths(maps_text):
        name = package_from_mapped_path(path)
        if name:
            packages.add(name)
    return sorted(packages)
