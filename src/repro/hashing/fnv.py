"""Fowler-Noll-Vo (FNV) hashes.

ssdeep hashes every *piece* of the input (the bytes between two trigger
points) with a 32-bit FNV-style hash seeded with ``0x28021967`` and the FNV
prime ``0x01000193``; only the low six bits of the final value are kept and
mapped to a base64 character.  We expose that piecewise "sum hash" plus the
standard FNV-1/FNV-1a variants, which other subsystems use as cheap content
digests (e.g. synthetic inode numbers in the virtual filesystem).
"""

from __future__ import annotations

from typing import Iterable

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Seed used by spamsum/ssdeep for piece hashes ("HASH_INIT").
SSDEEP_HASH_INIT = 0x28021967
#: 32-bit FNV prime ("HASH_PRIME" in ssdeep).
FNV32_PRIME = 0x01000193
FNV32_OFFSET = 0x811C9DC5
FNV64_PRIME = 0x00000100000001B3
FNV64_OFFSET = 0xCBF29CE484222325


def sum_hash(byte: int, state: int) -> int:
    """One step of ssdeep's piece hash: ``(state * prime) ^ byte`` in 32 bits."""
    return ((state * FNV32_PRIME) & _MASK32) ^ byte


def sum_hash_bytes(data: Iterable[int], state: int = SSDEEP_HASH_INIT) -> int:
    """Apply :func:`sum_hash` over an iterable of bytes."""
    for byte in data:
        state = sum_hash(byte, state)
    return state


def fnv1_32(data: bytes, offset: int = FNV32_OFFSET) -> int:
    """Classic FNV-1 32-bit hash (multiply then xor)."""
    state = offset & _MASK32
    for byte in data:
        state = ((state * FNV32_PRIME) & _MASK32) ^ byte
    return state


def fnv1a_32(data: bytes, offset: int = FNV32_OFFSET) -> int:
    """FNV-1a 32-bit hash (xor then multiply)."""
    state = offset & _MASK32
    for byte in data:
        state = ((state ^ byte) * FNV32_PRIME) & _MASK32
    return state


def fnv1a_64(data: bytes, offset: int = FNV64_OFFSET) -> int:
    """FNV-1a 64-bit hash.

    This is the content key of the collector's content-addressed digest
    cache, so it runs over whole executables: the 64-bit mask is deferred
    across a 4-byte unroll (xor with a byte only touches the low 8 bits and
    multiplication commutes with reduction mod ``2**64``, so masking once per
    four bytes is exact) instead of being applied per byte.
    """
    state = offset & _MASK64
    prime = FNV64_PRIME
    length = len(data)
    stop = length & ~3
    for b0, b1, b2, b3 in zip(data[0:stop:4], data[1:stop:4],
                              data[2:stop:4], data[3:stop:4]):
        state = ((((state ^ b0) * prime ^ b1) * prime ^ b2) * prime ^ b3) * prime & _MASK64
    for byte in data[stop:length]:
        state = ((state ^ byte) * prime) & _MASK64
    return state
