"""Rolling hash used by the CTPH (ssdeep/spamsum) trigger.

The rolling hash is the "context trigger" in context-triggered piecewise
hashing: it is recomputed for every input byte over a sliding 7-byte window,
and whenever its value is congruent to ``blocksize - 1`` modulo the block
size, a piece boundary is emitted.  Because the value depends only on the last
7 bytes, inserting or deleting bytes early in a file only shifts the
boundaries locally -- which is exactly the property that makes the final
signature robust to small edits.

This implementation mirrors the reference ``roll_hash`` from spamsum/ssdeep:
three components ``h1`` (sum of window bytes), ``h2`` (position-weighted sum)
and ``h3`` (shift/xor mixer), combined by addition, all in 32-bit arithmetic.
"""

from __future__ import annotations

ROLLING_WINDOW = 7
_MASK32 = 0xFFFFFFFF


class RollingHash:
    """Stateful 7-byte rolling hash (spamsum ``roll_hash``)."""

    __slots__ = ("_window", "_h1", "_h2", "_h3", "_count")

    def __init__(self) -> None:
        self._window = [0] * ROLLING_WINDOW
        self._h1 = 0
        self._h2 = 0
        self._h3 = 0
        self._count = 0

    def reset(self) -> None:
        """Clear all state, as if freshly constructed."""
        for index in range(ROLLING_WINDOW):
            self._window[index] = 0
        self._h1 = self._h2 = self._h3 = 0
        self._count = 0

    def update(self, byte: int) -> int:
        """Feed one byte (0-255) and return the new rolling hash value."""
        slot = self._count % ROLLING_WINDOW
        self._h2 = (self._h2 - self._h1 + ROLLING_WINDOW * byte) & _MASK32
        self._h1 = (self._h1 + byte - self._window[slot]) & _MASK32
        self._window[slot] = byte
        self._count += 1
        self._h3 = ((self._h3 << 5) & _MASK32) ^ byte
        return (self._h1 + self._h2 + self._h3) & _MASK32

    @property
    def value(self) -> int:
        """Current hash value without feeding a new byte."""
        return (self._h1 + self._h2 + self._h3) & _MASK32

    @property
    def count(self) -> int:
        """Number of bytes consumed since the last reset."""
        return self._count


def roll_sequence(data: bytes) -> list[int]:
    """Return the rolling-hash value after each byte of ``data``.

    Mostly useful for tests and for demonstrating the locality property: the
    value after position ``i`` depends only on ``data[max(0, i-6):i+1]``.
    """
    roller = RollingHash()
    return [roller.update(byte) for byte in data]
