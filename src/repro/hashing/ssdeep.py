"""Context-Triggered Piecewise Hashing (CTPH) -- an SSDeep reimplementation.

SIREN uses ``libfuzzy`` (the ssdeep library) to fuzzy-hash executables, their
printable strings, their global ELF symbols, and the collected
module/compiler/library lists.  This module is a from-scratch pure-Python
implementation of the same algorithm (Kornblum, "Identifying almost identical
files using context triggered piecewise hashing", 2006):

Hashing
    A 7-byte rolling hash (:class:`~repro.hashing.rolling.RollingHash`) is
    updated for every input byte.  Whenever its value is congruent to
    ``blocksize - 1`` (mod blocksize) the current *piece* ends: the piece's
    FNV hash contributes one base64 character to the signature and the piece
    hash restarts.  Two signatures are produced simultaneously, one at the
    chosen block size and one at twice that size, so that files of somewhat
    different lengths can still be compared.  The block size starts at
    ``MIN_BLOCKSIZE`` and doubles until the expected signature fits in
    ``SPAMSUM_LENGTH`` (64) characters; if the resulting signature turns out
    too short, the block size is halved and the file rehashed.

Comparison
    Signatures are comparable only if their block sizes are equal or off by a
    factor of two.  Runs of more than three identical characters are collapsed
    (they carry little information and inflate scores), a common 7-gram is
    required, and a weighted Damerau-Levenshtein distance is rescaled into a
    0-100 match score, capped for very small block sizes to avoid spurious
    high scores on tiny inputs.

The output format is the familiar ``blocksize:sig1:sig2`` string, so values
look and behave like real ssdeep digests (although they are not bit-for-bit
identical to libfuzzy's output, which is irrelevant here because SIREN only
ever compares SIREN-produced hashes with each other).

Production hashing runs on the single-pass streaming engine in
:mod:`repro.hashing.engine` (one trigger scan serves all candidate block
sizes, so nothing is ever rescanned); the naive loop described above survives
as :meth:`FuzzyHasher.hash_reference`, the golden oracle the engine is pinned
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.hashing.edit_distance import has_common_substring, weighted_edit_distance
from repro.hashing.engine import B64_ALPHABET, FuzzyState, hash_many_parts
from repro.hashing.fnv import SSDEEP_HASH_INIT, sum_hash
from repro.hashing.rolling import ROLLING_WINDOW, RollingHash

#: Minimum block size -- signatures at smaller block sizes carry no structure.
MIN_BLOCKSIZE = 3
#: Maximum signature length (characters) for the primary signature.
SPAMSUM_LENGTH = 64
#: Maximum length of a run of identical characters kept during comparison.
MAX_SEQUENCE = 3


@dataclass(frozen=True)
class FuzzyHash:
    """A parsed fuzzy hash: block size plus the two signature strings."""

    block_size: int
    sig1: str
    sig2: str

    def __str__(self) -> str:
        return f"{self.block_size}:{self.sig1}:{self.sig2}"

    @classmethod
    def parse(cls, digest: str) -> "FuzzyHash":
        """Parse a ``blocksize:sig1:sig2`` digest string."""
        parts = digest.split(":", 2)
        if len(parts) != 3:
            raise ValueError(f"not a fuzzy hash: {digest!r}")
        try:
            block_size = int(parts[0])
        except ValueError as exc:
            raise ValueError(f"invalid block size in fuzzy hash: {digest!r}") from exc
        if block_size <= 0:
            raise ValueError(f"block size must be positive: {digest!r}")
        return cls(block_size=block_size, sig1=parts[1], sig2=parts[2])


class FuzzyHasher:
    """Configurable CTPH hasher.

    The defaults reproduce ssdeep's behaviour; the knobs exist mainly for the
    ablation benchmarks (e.g. disabling the double-block-size signature or the
    common-substring requirement to show why they matter).
    """

    def __init__(
        self,
        min_block_size: int = MIN_BLOCKSIZE,
        signature_length: int = SPAMSUM_LENGTH,
        require_common_substring: bool = True,
        compare_cache_size: int = 65536,
        use_engine: bool = True,
    ) -> None:
        if min_block_size < 1:
            raise ValueError("min_block_size must be >= 1")
        if signature_length < 8:
            raise ValueError("signature_length must be >= 8")
        self.min_block_size = min_block_size
        self.signature_length = signature_length
        self.require_common_substring = require_common_substring
        #: Route :meth:`hash` through the single-pass engine
        #: (:mod:`repro.hashing.engine`).  ``False`` forces the reference
        #: per-byte implementation; digests are byte-identical either way,
        #: so this is purely a benchmarking/debugging valve.
        self.use_engine = use_engine
        # Shared process pool for hash_many(concurrency > 1), created lazily.
        self._pool = None
        self._pool_width = 0
        # Per-instance LRU over *digest string* pairs.  ``compare`` is
        # symmetric, so keys are normalised to the sorted pair, doubling the
        # hit rate when the same instances meet in either order.
        self._cached_compare = lru_cache(maxsize=compare_cache_size)(self.compare)

    # ------------------------------------------------------------------ #
    # hashing
    # ------------------------------------------------------------------ #
    def initial_block_size(self, length: int) -> int:
        """Smallest block size whose expected signature fits in the budget."""
        block_size = self.min_block_size
        while block_size * self.signature_length < length:
            block_size *= 2
        return block_size

    def hash(self, data: bytes) -> FuzzyHash:
        """Compute the fuzzy hash of ``data``.

        Runs on the single-pass streaming engine
        (:class:`repro.hashing.engine.FuzzyState`) unless ``use_engine`` is
        off; the engine's digests are byte-identical to
        :meth:`hash_reference` (pinned by golden tests) but it scans the
        payload once instead of once per block-size halving, with no
        per-byte Python call overhead.
        """
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("FuzzyHasher.hash expects bytes-like input")
        data = bytes(data)
        if not self.use_engine:
            return self.hash_reference(data)
        state = FuzzyState(min_block_size=self.min_block_size,
                           signature_length=self.signature_length)
        block_size, sig1, sig2 = state.update(data).digest_parts()
        return FuzzyHash(block_size=block_size, sig1=sig1, sig2=sig2)

    def hash_reference(self, data: bytes) -> FuzzyHash:
        """The reference (seed) implementation: per-byte, rescan-on-halve.

        Kept as the oracle for the engine's golden equivalence tests and as
        the baseline of ``benchmarks/bench_hashing_engine.py``.
        """
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("FuzzyHasher.hash expects bytes-like input")
        data = bytes(data)
        block_size = self.initial_block_size(len(data))
        while True:
            sig1, sig2 = self._hash_at(data, block_size)
            # If the primary signature is too short the block size was too
            # coarse (e.g. highly repetitive input); retry at half the size.
            if block_size > self.min_block_size and len(sig1) < self.signature_length // 2:
                block_size //= 2
            else:
                return FuzzyHash(block_size=block_size, sig1=sig1, sig2=sig2)

    def hash_many(self, payloads: list[bytes], *, concurrency: int = 1) -> list[FuzzyHash]:
        """Hash a batch of payloads; results match ``[self.hash(p) ...]``.

        ``concurrency > 1`` fans the batch out over a process pool that is
        created lazily and *reused across calls* on this hasher instance, so
        repeated small batches do not pay worker startup every time.  It only
        wins for sizable payloads on multi-core hosts (payloads are shipped
        to worker processes); ordering is preserved and every digest is
        identical to what sequential :meth:`hash` produces.  The pool workers
        run the engine, so with ``use_engine=False`` the batch falls back to
        sequential reference hashing regardless of ``concurrency``.
        """
        items = []
        for payload in payloads:
            if not isinstance(payload, (bytes, bytearray, memoryview)):
                raise TypeError("FuzzyHasher.hash_many expects bytes-like payloads")
            items.append(bytes(payload))
        if concurrency <= 1 or len(items) < 2 or not self.use_engine:
            return [self.hash(payload) for payload in items]
        from concurrent.futures.process import BrokenProcessPool

        try:
            parts = hash_many_parts(items, self.min_block_size, self.signature_length,
                                    concurrency=concurrency,
                                    pool=self._shared_pool(concurrency))
        except BrokenProcessPool:
            # A killed worker poisons the whole executor; drop it so the next
            # batch respawns, and finish this one sequentially rather than
            # losing the caller's campaign.
            self._pool = None
            return [self.hash(payload) for payload in items]
        return [FuzzyHash(block_size=block, sig1=sig1, sig2=sig2)
                for block, sig1, sig2 in parts]

    def _shared_pool(self, concurrency: int):
        """Lazily-created process pool, reused while the width matches.

        A :func:`weakref.finalize` guard shuts the workers down when this
        hasher is garbage collected, so dropping the hasher never leaks
        worker processes; long-lived owners can also call :meth:`close`
        explicitly (the collector layer does).
        """
        import weakref
        from concurrent.futures import ProcessPoolExecutor

        if self._pool is not None and self._pool_width != concurrency:
            self._pool.shutdown(wait=False)
            self._pool = None
        if self._pool is None:
            pool = ProcessPoolExecutor(max_workers=concurrency)
            weakref.finalize(self, ProcessPoolExecutor.shutdown, pool, wait=False)
            self._pool = pool
            self._pool_width = concurrency
        return self._pool

    def close(self) -> None:
        """Shut down the shared :meth:`hash_many` process pool, if any.

        Safe to call at any time; a later ``hash_many(concurrency > 1)``
        simply creates a fresh pool.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def hash_text(self, text: str) -> FuzzyHash:
        """Fuzzy-hash a text payload (UTF-8 encoded)."""
        return self.hash(text.encode("utf-8"))

    def digest(self, data: bytes) -> str:
        """Convenience: return the digest string directly."""
        return str(self.hash(data))

    def _hash_at(self, data: bytes, block_size: int) -> tuple[str, str]:
        """Single pass producing the signatures at ``block_size`` and double it."""
        roller = RollingHash()
        piece1 = SSDEEP_HASH_INIT
        piece2 = SSDEEP_HASH_INIT
        sig1: list[str] = []
        sig2: list[str] = []
        double_block = block_size * 2
        sig_len = self.signature_length

        for byte in data:
            piece1 = sum_hash(byte, piece1)
            piece2 = sum_hash(byte, piece2)
            rolling = roller.update(byte)
            if rolling % block_size == block_size - 1:
                if len(sig1) < sig_len - 1:
                    sig1.append(B64_ALPHABET[piece1 % 64])
                    piece1 = SSDEEP_HASH_INIT
            if rolling % double_block == double_block - 1:
                if len(sig2) < sig_len // 2 - 1:
                    sig2.append(B64_ALPHABET[piece2 % 64])
                    piece2 = SSDEEP_HASH_INIT
        if roller.value != 0 or data:
            # Capture the trailing partial piece (always, even if empty data
            # produced no trigger at all but bytes were consumed).
            if data:
                sig1.append(B64_ALPHABET[piece1 % 64])
                sig2.append(B64_ALPHABET[piece2 % 64])
        return "".join(sig1), "".join(sig2)

    # ------------------------------------------------------------------ #
    # comparison
    # ------------------------------------------------------------------ #
    def compare(self, first: FuzzyHash | str, second: FuzzyHash | str) -> int:
        """Return the 0-100 similarity score between two fuzzy hashes."""
        h1 = first if isinstance(first, FuzzyHash) else FuzzyHash.parse(first)
        h2 = second if isinstance(second, FuzzyHash) else FuzzyHash.parse(second)

        b1, b2 = h1.block_size, h2.block_size
        if b1 != b2 and b1 != b2 * 2 and b2 != b1 * 2:
            return 0

        s1a = eliminate_sequences(h1.sig1)
        s1b = eliminate_sequences(h1.sig2)
        s2a = eliminate_sequences(h2.sig1)
        s2b = eliminate_sequences(h2.sig2)

        if b1 == b2 and s1a == s2a and s1b == s2b and s1a:
            return 100

        if b1 == b2:
            score1 = self._score_strings(s1a, s2a, b1)
            score2 = self._score_strings(s1b, s2b, b1 * 2)
            return max(score1, score2)
        if b1 == b2 * 2:
            return self._score_strings(s1a, s2b, b1)
        return self._score_strings(s1b, s2a, b2)

    def compare_cached(self, first: FuzzyHash | str, second: FuzzyHash | str) -> int:
        """:meth:`compare` memoised on the (order-normalised) digest pair.

        Similarity search compares the same small set of digests against each
        other over and over (every UNKNOWN baseline meets every candidate, and
        the pairwise matrix meets every pair twice through symmetry); the
        signature alignment is by far the most expensive step, so an LRU keyed
        on the digest pair removes all repeat work.
        """
        a = str(first)
        b = str(second)
        if b < a:
            a, b = b, a
        return self._cached_compare(a, b)

    def compare_cache_info(self):
        """Hit/miss statistics of the :meth:`compare_cached` LRU."""
        return self._cached_compare.cache_info()

    def _score_strings(self, s1: str, s2: str, block_size: int) -> int:
        """Convert an edit distance between two signatures into a 0-100 score."""
        if not s1 or not s2:
            return 0
        if self.require_common_substring and not has_common_substring(s1, s2, ROLLING_WINDOW):
            return 0
        if s1 == s2:
            score = 100
        else:
            # Any distance >= len(s1) + len(s2) rescales to a score of 0, so
            # the alignment may stop early once that is certain; scores are
            # unchanged (tests pin new-vs-unbounded equality).
            distance = weighted_edit_distance(s1, s2, bound=len(s1) + len(s2) - 1)
            # Rescale: 0 distance -> 100, distance comparable to the combined
            # signature length -> 0.  This mirrors ssdeep's score_strings().
            scaled = (distance * self.signature_length) // (len(s1) + len(s2))
            scaled = (100 * scaled) // self.signature_length
            if scaled >= 100:
                return 0
            score = 100 - scaled
        # For small block sizes, cap the score so short inputs cannot claim
        # near-perfect similarity on the strength of a handful of pieces.
        threshold = (99 + ROLLING_WINDOW) // ROLLING_WINDOW * self.min_block_size
        if block_size < threshold:
            cap = block_size // self.min_block_size * min(len(s1), len(s2))
            score = min(score, cap)
        return max(0, min(100, score))


def eliminate_sequences(signature: str) -> str:
    """Collapse runs of more than :data:`MAX_SEQUENCE` identical characters.

    This is the normalisation :meth:`FuzzyHasher.compare` applies to both
    signatures before scoring them; anything that reasons about which digests
    *can* score non-zero (notably the n-gram index in
    :mod:`repro.analysis.simindex`) must apply the same normalisation.
    """
    if len(signature) <= MAX_SEQUENCE:
        return signature
    out: list[str] = list(signature[:MAX_SEQUENCE])
    for index in range(MAX_SEQUENCE, len(signature)):
        char = signature[index]
        if not (
            char == signature[index - 1]
            and char == signature[index - 2]
            and char == signature[index - 3]
        ):
            out.append(char)
    return "".join(out)


#: Backwards-compatible alias (the helper predates its public use).
_eliminate_sequences = eliminate_sequences


# Module-level singleton mirroring libfuzzy's stateless API ------------------
_DEFAULT_HASHER = FuzzyHasher()


def fuzzy_hash(data: bytes) -> str:
    """Fuzzy-hash a bytes payload with default parameters (digest string)."""
    return _DEFAULT_HASHER.digest(data)


def fuzzy_hash_text(text: str) -> str:
    """Fuzzy-hash a text payload (UTF-8) with default parameters."""
    return str(_DEFAULT_HASHER.hash_text(text))


def compare(first: FuzzyHash | str, second: FuzzyHash | str) -> int:
    """Compare two fuzzy hashes with default parameters (0-100)."""
    return _DEFAULT_HASHER.compare(first, second)
