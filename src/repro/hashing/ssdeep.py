"""Context-Triggered Piecewise Hashing (CTPH) -- an SSDeep reimplementation.

SIREN uses ``libfuzzy`` (the ssdeep library) to fuzzy-hash executables, their
printable strings, their global ELF symbols, and the collected
module/compiler/library lists.  This module is a from-scratch pure-Python
implementation of the same algorithm (Kornblum, "Identifying almost identical
files using context triggered piecewise hashing", 2006):

Hashing
    A 7-byte rolling hash (:class:`~repro.hashing.rolling.RollingHash`) is
    updated for every input byte.  Whenever its value is congruent to
    ``blocksize - 1`` (mod blocksize) the current *piece* ends: the piece's
    FNV hash contributes one base64 character to the signature and the piece
    hash restarts.  Two signatures are produced simultaneously, one at the
    chosen block size and one at twice that size, so that files of somewhat
    different lengths can still be compared.  The block size starts at
    ``MIN_BLOCKSIZE`` and doubles until the expected signature fits in
    ``SPAMSUM_LENGTH`` (64) characters; if the resulting signature turns out
    too short, the block size is halved and the file rehashed.

Comparison
    Signatures are comparable only if their block sizes are equal or off by a
    factor of two.  Runs of more than three identical characters are collapsed
    (they carry little information and inflate scores), a common 7-gram is
    required, and a weighted Damerau-Levenshtein distance is rescaled into a
    0-100 match score, capped for very small block sizes to avoid spurious
    high scores on tiny inputs.

The output format is the familiar ``blocksize:sig1:sig2`` string, so values
look and behave like real ssdeep digests (although they are not bit-for-bit
identical to libfuzzy's output, which is irrelevant here because SIREN only
ever compares SIREN-produced hashes with each other).

Production hashing runs on the single-pass streaming engine in
:mod:`repro.hashing.engine` (one trigger scan serves all candidate block
sizes, so nothing is ever rescanned); the naive loop described above survives
as :meth:`FuzzyHasher.hash_reference`, the golden oracle the engine is pinned
against.  Production *comparison* likewise runs on the batched bit-parallel
engine of :mod:`repro.hashing.compare_engine` (per-digest normalization
cache + word-parallel LCS kernel, batched via :meth:`FuzzyHasher.compare_many`);
the scalar path described above survives as
:meth:`FuzzyHasher.compare_reference`, the oracle the engine's byte-identical
scores are pinned against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hashing.compare_engine import (
    CompareCache,
    NormalizedDigest,
    default_cost_distance_many,
    normalize_digest,
    normalize_parsed,
)
from repro.hashing.edit_distance import has_common_substring, weighted_edit_distance
from repro.hashing.engine import B64_ALPHABET, FuzzyState, hash_many_parts
from repro.hashing.fnv import SSDEEP_HASH_INIT, sum_hash
from repro.hashing.rolling import ROLLING_WINDOW, RollingHash

#: Minimum block size -- signatures at smaller block sizes carry no structure.
MIN_BLOCKSIZE = 3
#: Maximum signature length (characters) for the primary signature.
SPAMSUM_LENGTH = 64
#: Maximum length of a run of identical characters kept during comparison.
MAX_SEQUENCE = 3


@dataclass(frozen=True)
class FuzzyHash:
    """A parsed fuzzy hash: block size plus the two signature strings."""

    block_size: int
    sig1: str
    sig2: str

    def __str__(self) -> str:
        return f"{self.block_size}:{self.sig1}:{self.sig2}"

    @classmethod
    def parse(cls, digest: str) -> "FuzzyHash":
        """Parse a ``blocksize:sig1:sig2`` digest string."""
        parts = digest.split(":", 2)
        if len(parts) != 3:
            raise ValueError(f"not a fuzzy hash: {digest!r}")
        try:
            block_size = int(parts[0])
        except ValueError as exc:
            raise ValueError(f"invalid block size in fuzzy hash: {digest!r}") from exc
        if block_size <= 0:
            raise ValueError(f"block size must be positive: {digest!r}")
        return cls(block_size=block_size, sig1=parts[1], sig2=parts[2])


class FuzzyHasher:
    """Configurable CTPH hasher.

    The defaults reproduce ssdeep's behaviour; the knobs exist mainly for the
    ablation benchmarks (e.g. disabling the double-block-size signature or the
    common-substring requirement to show why they matter).
    """

    def __init__(
        self,
        min_block_size: int = MIN_BLOCKSIZE,
        signature_length: int = SPAMSUM_LENGTH,
        require_common_substring: bool = True,
        compare_cache_size: int = 65536,
        use_engine: bool = True,
        compare_backend: str = "bitparallel",
    ) -> None:
        if min_block_size < 1:
            raise ValueError("min_block_size must be >= 1")
        if signature_length < 8:
            raise ValueError("signature_length must be >= 8")
        if compare_backend not in ("bitparallel", "reference"):
            raise ValueError(
                f"unknown compare_backend {compare_backend!r} "
                "(expected 'bitparallel' or 'reference')")
        self.min_block_size = min_block_size
        self.signature_length = signature_length
        self._require_common_substring = require_common_substring
        #: Route :meth:`hash` through the single-pass engine
        #: (:mod:`repro.hashing.engine`).  ``False`` forces the reference
        #: per-byte implementation; digests are byte-identical either way,
        #: so this is purely a benchmarking/debugging valve.
        self.use_engine = use_engine
        self._compare_backend = compare_backend
        # Shared process pool for hash_many(concurrency > 1), created lazily.
        self._pool = None
        self._pool_width = 0
        # Per-instance LRU over *digest string* pairs.  ``compare`` is
        # symmetric, so keys are normalised to the sorted pair, doubling the
        # hit rate when the same instances meet in either order.  The cache
        # holds only strings and scores -- never ``self`` -- so the hasher
        # is not pinned in a reference cycle (the seed's ``lru_cache`` over
        # the bound method was).
        self._compare_cache = CompareCache(maxsize=compare_cache_size)

    # ------------------------------------------------------------------ #
    # hashing
    # ------------------------------------------------------------------ #
    def initial_block_size(self, length: int) -> int:
        """Smallest block size whose expected signature fits in the budget."""
        block_size = self.min_block_size
        while block_size * self.signature_length < length:
            block_size *= 2
        return block_size

    def hash(self, data: bytes) -> FuzzyHash:
        """Compute the fuzzy hash of ``data``.

        Runs on the single-pass streaming engine
        (:class:`repro.hashing.engine.FuzzyState`) unless ``use_engine`` is
        off; the engine's digests are byte-identical to
        :meth:`hash_reference` (pinned by golden tests) but it scans the
        payload once instead of once per block-size halving, with no
        per-byte Python call overhead.
        """
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("FuzzyHasher.hash expects bytes-like input")
        data = bytes(data)
        if not self.use_engine:
            return self.hash_reference(data)
        state = FuzzyState(min_block_size=self.min_block_size,
                           signature_length=self.signature_length)
        block_size, sig1, sig2 = state.update(data).digest_parts()
        return FuzzyHash(block_size=block_size, sig1=sig1, sig2=sig2)

    def hash_reference(self, data: bytes) -> FuzzyHash:
        """The reference (seed) implementation: per-byte, rescan-on-halve.

        Kept as the oracle for the engine's golden equivalence tests and as
        the baseline of ``benchmarks/bench_hashing_engine.py``.
        """
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("FuzzyHasher.hash expects bytes-like input")
        data = bytes(data)
        block_size = self.initial_block_size(len(data))
        while True:
            sig1, sig2 = self._hash_at(data, block_size)
            # If the primary signature is too short the block size was too
            # coarse (e.g. highly repetitive input); retry at half the size.
            if block_size > self.min_block_size and len(sig1) < self.signature_length // 2:
                block_size //= 2
            else:
                return FuzzyHash(block_size=block_size, sig1=sig1, sig2=sig2)

    def hash_many(self, payloads: list[bytes], *, concurrency: int = 1) -> list[FuzzyHash]:
        """Hash a batch of payloads; results match ``[self.hash(p) ...]``.

        ``concurrency > 1`` fans the batch out over a process pool that is
        created lazily and *reused across calls* on this hasher instance, so
        repeated small batches do not pay worker startup every time.  It only
        wins for sizable payloads on multi-core hosts (payloads are shipped
        to worker processes); ordering is preserved and every digest is
        identical to what sequential :meth:`hash` produces.  The pool workers
        run the engine, so with ``use_engine=False`` the batch falls back to
        sequential reference hashing regardless of ``concurrency``.
        """
        items = []
        for payload in payloads:
            if not isinstance(payload, (bytes, bytearray, memoryview)):
                raise TypeError("FuzzyHasher.hash_many expects bytes-like payloads")
            items.append(bytes(payload))
        if concurrency <= 1 or len(items) < 2 or not self.use_engine:
            return [self.hash(payload) for payload in items]
        from concurrent.futures.process import BrokenProcessPool

        try:
            parts = hash_many_parts(items, self.min_block_size, self.signature_length,
                                    concurrency=concurrency,
                                    pool=self._shared_pool(concurrency))
        except BrokenProcessPool:
            # A killed worker poisons the whole executor; drop it so the next
            # batch respawns, and finish this one sequentially rather than
            # losing the caller's campaign.
            self._pool = None
            return [self.hash(payload) for payload in items]
        return [FuzzyHash(block_size=block, sig1=sig1, sig2=sig2)
                for block, sig1, sig2 in parts]

    def _shared_pool(self, concurrency: int):
        """Lazily-created process pool, reused while the width matches.

        A :func:`weakref.finalize` guard shuts the workers down when this
        hasher is garbage collected, so dropping the hasher never leaks
        worker processes; long-lived owners can also call :meth:`close`
        explicitly (the collector layer does).
        """
        import weakref
        from concurrent.futures import ProcessPoolExecutor

        if self._pool is not None and self._pool_width != concurrency:
            self._pool.shutdown(wait=False)
            self._pool = None
        if self._pool is None:
            pool = ProcessPoolExecutor(max_workers=concurrency)
            weakref.finalize(self, ProcessPoolExecutor.shutdown, pool, wait=False)
            self._pool = pool
            self._pool_width = concurrency
        return self._pool

    def close(self) -> None:
        """Shut down the shared :meth:`hash_many` process pool, if any.

        Safe to call at any time; a later ``hash_many(concurrency > 1)``
        simply creates a fresh pool.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def hash_text(self, text: str) -> FuzzyHash:
        """Fuzzy-hash a text payload (UTF-8 encoded)."""
        return self.hash(text.encode("utf-8"))

    def digest(self, data: bytes) -> str:
        """Convenience: return the digest string directly."""
        return str(self.hash(data))

    def _hash_at(self, data: bytes, block_size: int) -> tuple[str, str]:
        """Single pass producing the signatures at ``block_size`` and double it."""
        roller = RollingHash()
        piece1 = SSDEEP_HASH_INIT
        piece2 = SSDEEP_HASH_INIT
        sig1: list[str] = []
        sig2: list[str] = []
        double_block = block_size * 2
        sig_len = self.signature_length

        for byte in data:
            piece1 = sum_hash(byte, piece1)
            piece2 = sum_hash(byte, piece2)
            rolling = roller.update(byte)
            if rolling % block_size == block_size - 1:
                if len(sig1) < sig_len - 1:
                    sig1.append(B64_ALPHABET[piece1 % 64])
                    piece1 = SSDEEP_HASH_INIT
            if rolling % double_block == double_block - 1:
                if len(sig2) < sig_len // 2 - 1:
                    sig2.append(B64_ALPHABET[piece2 % 64])
                    piece2 = SSDEEP_HASH_INIT
        if roller.value != 0 or data:
            # Capture the trailing partial piece (always, even if empty data
            # produced no trigger at all but bytes were consumed).
            if data:
                sig1.append(B64_ALPHABET[piece1 % 64])
                sig2.append(B64_ALPHABET[piece2 % 64])
        return "".join(sig1), "".join(sig2)

    # ------------------------------------------------------------------ #
    # comparison
    # ------------------------------------------------------------------ #
    @property
    def compare_backend(self) -> str:
        """The active comparison kernel: ``"bitparallel"`` or ``"reference"``.

        ``"bitparallel"`` (default) scores through the engine of
        :mod:`repro.hashing.compare_engine` -- normalization cached per
        unique digest, distances via the word-parallel LCS kernel;
        ``"reference"`` keeps the seed scalar path (re-parse + Python DP per
        pair).  Scores are byte-identical either way; the knob exists for
        verification and benchmarking.  Assigning it clears the compare LRU.
        """
        return self._compare_backend

    @compare_backend.setter
    def compare_backend(self, value: str) -> None:
        if value not in ("bitparallel", "reference"):
            raise ValueError(
                f"unknown compare_backend {value!r} "
                "(expected 'bitparallel' or 'reference')")
        if value != self._compare_backend:
            self._compare_backend = value
            self.compare_cache_clear()

    @property
    def require_common_substring(self) -> bool:
        """Whether scoring demands a shared 7-gram (ssdeep's gate).

        Assigning a different value clears the compare LRU -- cached scores
        were computed under the old gate and would otherwise go stale.
        """
        return self._require_common_substring

    @require_common_substring.setter
    def require_common_substring(self, value: bool) -> None:
        if bool(value) != self._require_common_substring:
            self._require_common_substring = bool(value)
            self.compare_cache_clear()

    def compare(self, first: FuzzyHash | str, second: FuzzyHash | str) -> int:
        """Return the 0-100 similarity score between two fuzzy hashes."""
        if self._compare_backend == "reference":
            return self.compare_reference(first, second)
        return self._compare_batch(self._normalize(first),
                                   [self._normalize(second)])[0]

    @staticmethod
    def _normalize(digest: FuzzyHash | str) -> NormalizedDigest:
        """Normalise a digest string (cached) or a ``FuzzyHash``'s components.

        Objects go through the component-level path so hand-constructed
        ``FuzzyHash`` values that would not survive a str()+re-parse round
        trip still score identically to :meth:`compare_reference`.
        """
        if isinstance(digest, str):
            return normalize_digest(digest)
        return normalize_parsed(digest.block_size, digest.sig1, digest.sig2)

    def compare_reference(self, first: FuzzyHash | str, second: FuzzyHash | str) -> int:
        """The seed scalar comparison: parse, normalise and align per pair.

        Kept as the oracle the bit-parallel engine is pinned against and as
        the baseline of ``benchmarks/bench_compare.py``.
        """
        h1 = first if isinstance(first, FuzzyHash) else FuzzyHash.parse(first)
        h2 = second if isinstance(second, FuzzyHash) else FuzzyHash.parse(second)

        b1, b2 = h1.block_size, h2.block_size
        if b1 != b2 and b1 != b2 * 2 and b2 != b1 * 2:
            return 0

        s1a = eliminate_sequences(h1.sig1)
        s1b = eliminate_sequences(h1.sig2)
        s2a = eliminate_sequences(h2.sig1)
        s2b = eliminate_sequences(h2.sig2)

        if b1 == b2 and s1a == s2a and s1b == s2b and s1a:
            return 100

        if b1 == b2:
            score1 = self._score_strings(s1a, s2a, b1)
            score2 = self._score_strings(s1b, s2b, b1 * 2)
            return max(score1, score2)
        if b1 == b2 * 2:
            return self._score_strings(s1a, s2b, b1)
        return self._score_strings(s1b, s2a, b2)

    def compare_many(self, baseline: FuzzyHash | str,
                     candidates: list) -> list[int]:
        """Score ``baseline`` against a candidate batch; matches scalar compare.

        The batched hot path of similarity search, the pairwise matrices and
        live analysis: the baseline is normalised once, repeated candidate
        digests are deduplicated and every unique pair is scored exactly once
        -- through the compare LRU first (a pair a previous sweep or a scalar
        :meth:`compare_cached` call already scored is a hit), then through
        the one-vs-many bit-parallel kernel, which advances the whole
        remaining batch one signature column per word operation.  Every
        scored pair is inserted into the LRU, so later scalar callers
        benefit too.  Returns one 0-100 score per candidate, in order,
        byte-identical to ``[self.compare(baseline, c) for c in candidates]``.
        """
        base = baseline if isinstance(baseline, str) else str(baseline)
        # Dedup and cache-key by digest string, but score from the *source*
        # value (component path for FuzzyHash objects, exactly like scalar
        # compare), so object candidates whose signatures would not survive
        # a str()+re-parse round trip still match the scalar loop.  String
        # keying leaves the same (pre-existing) ambiguity compare_cached
        # has: distinct objects sharing one digest string share one score.
        keys: list[str] = []
        unique: dict[str, FuzzyHash | str] = {}
        for candidate in candidates:
            key = candidate if isinstance(candidate, str) else str(candidate)
            keys.append(key)
            if key not in unique:
                unique[key] = candidate
        scores: dict[str, int] = {}
        pending: list[str] = []
        for key in unique:
            cached = self._compare_cache.get(self._pair_key(base, key))
            if cached is not None:
                scores[key] = cached
            else:
                pending.append(key)
        if pending:
            if self._compare_backend == "reference":
                computed = [self.compare_reference(baseline, unique[key])
                            for key in pending]
            else:
                computed = self._compare_batch(
                    self._normalize(baseline),
                    [self._normalize(unique[key]) for key in pending])
            for key, score in zip(pending, computed):
                self._compare_cache.put(self._pair_key(base, key), score)
                scores[key] = score
        return [scores[key] for key in keys]

    def compare_cached(self, first: FuzzyHash | str, second: FuzzyHash | str) -> int:
        """:meth:`compare` memoised on the (order-normalised) digest pair.

        Similarity search compares the same small set of digests against each
        other over and over (every UNKNOWN baseline meets every candidate, and
        the pairwise matrix meets every pair twice through symmetry); the
        signature alignment is by far the most expensive step, so an LRU keyed
        on the digest pair removes all repeat work.  :meth:`compare_many`
        feeds the same cache, so batch sweeps and scalar lookups share hits.
        """
        a = str(first)
        b = str(second)
        if b < a:
            a, b = b, a
        cached = self._compare_cache.get((a, b))
        if cached is None:
            cached = self.compare(a, b)
            self._compare_cache.put((a, b), cached)
        return cached

    def compare_cache_info(self):
        """Hit/miss statistics of the shared compare LRU."""
        return self._compare_cache.info()

    def compare_cache_clear(self) -> None:
        """Drop every cached score (call after changing comparison knobs).

        The knob setters (:attr:`compare_backend`,
        :attr:`require_common_substring`) call this automatically; callers
        mutating scoring-relevant state by other means must call it
        themselves, or the LRU serves scores computed under the old knobs.
        """
        self._compare_cache.clear()

    @staticmethod
    def _pair_key(a: str, b: str) -> tuple[str, str]:
        """Order-normalised LRU key (compare is symmetric)."""
        return (a, b) if a <= b else (b, a)

    # -- bit-parallel backend ------------------------------------------- #
    def _compare_batch(self, na: NormalizedDigest,
                       pending: list[NormalizedDigest]) -> list[int]:
        """Score one normalised baseline against many normalised candidates.

        Immediately decidable components (incompatible bands, empty or equal
        signatures, no shared 7-gram) resolve inline; the rest queue into at
        most two one-vs-many kernel sweeps -- one per baseline signature,
        since that signature is the kernel's pattern whichever candidate
        signature it aligns against.  Each sweep also has one fixed scoring
        band: the baseline's block size for its chunk signature, double it
        for the double-chunk signature (exactly the bands
        :meth:`compare_reference` passes for the corresponding alignments).
        """
        results = [0] * len(pending)
        # Alignments needing a distance, grouped by baseline signature:
        # (candidate position, candidate signature).
        queue1: list[tuple[int, str]] = []
        queue2: list[tuple[int, str]] = []
        band1 = na.block_size
        band2 = na.block_size * 2
        for position, nb in enumerate(pending):
            b1, b2 = na.block_size, nb.block_size
            if b1 != b2 and b1 != b2 * 2 and b2 != b1 * 2:
                continue
            if b1 == b2 and na.s1 == nb.s1 and na.s2 == nb.s2 and na.s1:
                results[position] = 100
                continue
            if b1 == b2:
                self._queue_component(position, na.s1, nb.s1, na.grams1, nb.grams1,
                                      band1, results, queue1)
                self._queue_component(position, na.s2, nb.s2, na.grams2, nb.grams2,
                                      band2, results, queue2)
            elif b1 == b2 * 2:
                self._queue_component(position, na.s1, nb.s2, na.grams1, nb.grams2,
                                      band1, results, queue1)
            else:
                self._queue_component(position, na.s2, nb.s1, na.grams2, nb.grams1,
                                      band2, results, queue2)
        for pattern, masks, band, queue in ((na.s1, na.masks1, band1, queue1),
                                            (na.s2, na.masks2, band2, queue2)):
            if not queue:
                continue
            texts = [text for _, text in queue]
            distances = default_cost_distance_many(pattern, texts, masks)
            for (position, text), distance in zip(queue, distances):
                score = self._rescale(distance, len(pattern), len(text))
                if score is None:
                    continue
                score = self._apply_cap(score, len(pattern), len(text), band)
                if score > results[position]:
                    results[position] = score
        return results

    def _queue_component(self, position: int, s1: str, s2: str,
                         grams1: frozenset, grams2: frozenset, band: int,
                         results: list[int], queue: list) -> None:
        """Resolve one alignment inline or queue it for the batched kernel."""
        if not s1 or not s2:
            return
        if self._require_common_substring and not (grams1 & grams2):
            return
        if s1 == s2:
            score = self._apply_cap(100, len(s1), len(s2), band)
            if score > results[position]:
                results[position] = score
            return
        queue.append((position, s2))

    # -- shared scoring arithmetic -------------------------------------- #
    def _rescale(self, distance: int, len1: int, len2: int) -> int | None:
        """Edit distance -> raw 0-100 score; ``None`` when it rescales past 0.

        Mirrors ssdeep's ``score_strings()`` rescaling.  Both backends share
        this arithmetic, so their scores cannot drift: any distance at or
        above ``len1 + len2`` maps to ``None`` (score 0), which is also why
        the reference path's bounded DP -- whose early-exit value is only a
        lower bound once it exceeds ``len1 + len2 - 1`` -- yields the same
        score as the kernel's exact distance.
        """
        scaled = (distance * self.signature_length) // (len1 + len2)
        scaled = (100 * scaled) // self.signature_length
        if scaled >= 100:
            return None
        return 100 - scaled

    def _apply_cap(self, score: int, len1: int, len2: int, block_size: int) -> int:
        """Small-block-size cap: short inputs cannot claim near-perfect scores."""
        threshold = (99 + ROLLING_WINDOW) // ROLLING_WINDOW * self.min_block_size
        if block_size < threshold:
            cap = block_size // self.min_block_size * min(len1, len2)
            score = min(score, cap)
        return max(0, min(100, score))

    def _score_strings(self, s1: str, s2: str, block_size: int) -> int:
        """Convert an edit distance between two signatures into a 0-100 score."""
        if not s1 or not s2:
            return 0
        if self._require_common_substring and not has_common_substring(
                s1, s2, ROLLING_WINDOW):
            return 0
        if s1 == s2:
            score = 100
        else:
            # Any distance >= len(s1) + len(s2) rescales to a score of 0, so
            # the alignment may stop early once that is certain; scores are
            # unchanged (tests pin new-vs-unbounded equality).
            distance = weighted_edit_distance(s1, s2, bound=len(s1) + len(s2) - 1)
            score = self._rescale(distance, len(s1), len(s2))
            if score is None:
                return 0
        # For small block sizes, cap the score so short inputs cannot claim
        # near-perfect similarity on the strength of a handful of pieces.
        return self._apply_cap(score, len(s1), len(s2), block_size)


def eliminate_sequences(signature: str) -> str:
    """Collapse runs of more than :data:`MAX_SEQUENCE` identical characters.

    This is the normalisation :meth:`FuzzyHasher.compare` applies to both
    signatures before scoring them; anything that reasons about which digests
    *can* score non-zero (notably the n-gram index in
    :mod:`repro.analysis.simindex`) must apply the same normalisation.
    """
    if len(signature) <= MAX_SEQUENCE:
        return signature
    out: list[str] = list(signature[:MAX_SEQUENCE])
    for index in range(MAX_SEQUENCE, len(signature)):
        char = signature[index]
        if not (
            char == signature[index - 1]
            and char == signature[index - 2]
            and char == signature[index - 3]
        ):
            out.append(char)
    return "".join(out)


#: Backwards-compatible alias (the helper predates its public use).
_eliminate_sequences = eliminate_sequences


# Module-level singleton mirroring libfuzzy's stateless API ------------------
_DEFAULT_HASHER = FuzzyHasher()


def fuzzy_hash(data: bytes) -> str:
    """Fuzzy-hash a bytes payload with default parameters (digest string)."""
    return _DEFAULT_HASHER.digest(data)


def fuzzy_hash_text(text: str) -> str:
    """Fuzzy-hash a text payload (UTF-8) with default parameters."""
    return str(_DEFAULT_HASHER.hash_text(text))


def compare(first: FuzzyHash | str, second: FuzzyHash | str) -> int:
    """Compare two fuzzy hashes with default parameters (0-100)."""
    return _DEFAULT_HASHER.compare(first, second)
