"""Hashing substrate for the SIREN reproduction.

The paper relies on two hash families:

* **SSDeep** context-triggered piecewise hashing (CTPH) producing *fuzzy
  hashes* whose pairwise comparison yields a 0-100 similarity score.  SIREN
  fuzzy-hashes the raw executable, its printable strings, its global ELF
  symbols, and the module/compiler/library/memory-map lists.
* **xxHash** (``XXH3_128bits`` in the paper) as a fast non-cryptographic hash
  of the executable path, used purely to disambiguate PID collisions in the
  database.

Both are implemented here from scratch in pure Python (the target environment
has neither ``libfuzzy`` nor ``xxHash`` bindings).  The CTPH implementation
follows the published spamsum/ssdeep algorithm (Kornblum 2006): a 7-byte
rolling hash triggers piece boundaries, each piece is hashed with FNV, and the
signature is a base64 string at two block sizes; comparison removes long
character runs, requires a common 7-gram, and converts a weighted
Damerau-Levenshtein distance into a 0-100 match score.
"""

from repro.hashing.compare_engine import (
    CompareCache,
    NormalizedDigest,
    compare_scan_backend,
    lcs_length,
    lcs_length_many,
    normalize_digest,
)
from repro.hashing.edit_distance import (
    damerau_levenshtein,
    levenshtein,
    weighted_edit_distance,
)
from repro.hashing.engine import FuzzyState, scan_backend
from repro.hashing.fnv import fnv1_32, fnv1a_32, fnv1a_64, sum_hash
from repro.hashing.rolling import RollingHash
from repro.hashing.ssdeep import (
    FuzzyHash,
    FuzzyHasher,
    compare,
    fuzzy_hash,
    fuzzy_hash_text,
)
from repro.hashing.xxhash import xxh32, xxh64, xxh128_hex

__all__ = [
    "RollingHash",
    "FuzzyHash",
    "FuzzyHasher",
    "FuzzyState",
    "scan_backend",
    "CompareCache",
    "NormalizedDigest",
    "compare_scan_backend",
    "lcs_length",
    "lcs_length_many",
    "normalize_digest",
    "fuzzy_hash",
    "fuzzy_hash_text",
    "compare",
    "levenshtein",
    "damerau_levenshtein",
    "weighted_edit_distance",
    "fnv1_32",
    "fnv1a_32",
    "fnv1a_64",
    "sum_hash",
    "xxh32",
    "xxh64",
    "xxh128_hex",
]
