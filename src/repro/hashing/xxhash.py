"""Pure-Python xxHash (XXH32 / XXH64) plus a 128-bit composite.

SIREN hashes the path to the executable with ``XXH3_128bits`` from the xxHash
library; the result is *not* analysed for similarity -- it only disambiguates
rows when a process image is replaced via ``exec()`` while keeping the same
PID and timestamp.  Any deterministic, fast, well-distributed hash fills that
role, so this module provides spec-faithful XXH32 and XXH64 implementations
and :func:`xxh128_hex`, a 128-bit value built from two independently seeded
XXH64 lanes.  The substitution (XXH3 -> dual XXH64) is documented in
DESIGN.md.

Reference: https://github.com/Cyan4973/xxHash (algorithm specification).
"""

from __future__ import annotations

import struct

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF

# --- XXH32 constants -------------------------------------------------------
_P32_1 = 2654435761
_P32_2 = 2246822519
_P32_3 = 3266489917
_P32_4 = 668265263
_P32_5 = 374761393

# --- XXH64 constants -------------------------------------------------------
_P64_1 = 11400714785074694791
_P64_2 = 14029467366897019727
_P64_3 = 1609587929392839161
_P64_4 = 9650029242287828579
_P64_5 = 2870177450012600261


def _rotl32(value: int, count: int) -> int:
    return ((value << count) | (value >> (32 - count))) & _MASK32


def _rotl64(value: int, count: int) -> int:
    return ((value << count) | (value >> (64 - count))) & _MASK64


# ---------------------------------------------------------------------------
# XXH32
# ---------------------------------------------------------------------------
def _xxh32_round(acc: int, lane: int) -> int:
    acc = (acc + lane * _P32_2) & _MASK32
    acc = _rotl32(acc, 13)
    return (acc * _P32_1) & _MASK32


def xxh32(data: bytes, seed: int = 0) -> int:
    """32-bit xxHash of ``data`` with the given seed."""
    data = bytes(data)
    length = len(data)
    seed &= _MASK32
    index = 0

    if length >= 16:
        v1 = (seed + _P32_1 + _P32_2) & _MASK32
        v2 = (seed + _P32_2) & _MASK32
        v3 = seed
        v4 = (seed - _P32_1) & _MASK32
        limit = length - 16
        while index <= limit:
            lanes = struct.unpack_from("<4I", data, index)
            v1 = _xxh32_round(v1, lanes[0])
            v2 = _xxh32_round(v2, lanes[1])
            v3 = _xxh32_round(v3, lanes[2])
            v4 = _xxh32_round(v4, lanes[3])
            index += 16
        acc = (_rotl32(v1, 1) + _rotl32(v2, 7) + _rotl32(v3, 12) + _rotl32(v4, 18)) & _MASK32
    else:
        acc = (seed + _P32_5) & _MASK32

    acc = (acc + length) & _MASK32

    while index + 4 <= length:
        (lane,) = struct.unpack_from("<I", data, index)
        acc = (acc + lane * _P32_3) & _MASK32
        acc = (_rotl32(acc, 17) * _P32_4) & _MASK32
        index += 4
    while index < length:
        acc = (acc + data[index] * _P32_5) & _MASK32
        acc = (_rotl32(acc, 11) * _P32_1) & _MASK32
        index += 1

    acc ^= acc >> 15
    acc = (acc * _P32_2) & _MASK32
    acc ^= acc >> 13
    acc = (acc * _P32_3) & _MASK32
    acc ^= acc >> 16
    return acc


# ---------------------------------------------------------------------------
# XXH64
# ---------------------------------------------------------------------------
def _xxh64_round(acc: int, lane: int) -> int:
    acc = (acc + lane * _P64_2) & _MASK64
    acc = _rotl64(acc, 31)
    return (acc * _P64_1) & _MASK64


def _xxh64_merge_round(acc: int, val: int) -> int:
    val = _xxh64_round(0, val)
    acc ^= val
    return (acc * _P64_1 + _P64_4) & _MASK64


def xxh64(data: bytes, seed: int = 0) -> int:
    """64-bit xxHash of ``data`` with the given seed."""
    data = bytes(data)
    length = len(data)
    seed &= _MASK64
    index = 0

    if length >= 32:
        v1 = (seed + _P64_1 + _P64_2) & _MASK64
        v2 = (seed + _P64_2) & _MASK64
        v3 = seed
        v4 = (seed - _P64_1) & _MASK64
        limit = length - 32
        while index <= limit:
            lanes = struct.unpack_from("<4Q", data, index)
            v1 = _xxh64_round(v1, lanes[0])
            v2 = _xxh64_round(v2, lanes[1])
            v3 = _xxh64_round(v3, lanes[2])
            v4 = _xxh64_round(v4, lanes[3])
            index += 32
        acc = (_rotl64(v1, 1) + _rotl64(v2, 7) + _rotl64(v3, 12) + _rotl64(v4, 18)) & _MASK64
        acc = _xxh64_merge_round(acc, v1)
        acc = _xxh64_merge_round(acc, v2)
        acc = _xxh64_merge_round(acc, v3)
        acc = _xxh64_merge_round(acc, v4)
    else:
        acc = (seed + _P64_5) & _MASK64

    acc = (acc + length) & _MASK64

    while index + 8 <= length:
        (lane,) = struct.unpack_from("<Q", data, index)
        acc ^= _xxh64_round(0, lane)
        acc = (_rotl64(acc, 27) * _P64_1 + _P64_4) & _MASK64
        index += 8
    if index + 4 <= length:
        (lane,) = struct.unpack_from("<I", data, index)
        acc ^= (lane * _P64_1) & _MASK64
        acc = (_rotl64(acc, 23) * _P64_2 + _P64_3) & _MASK64
        index += 4
    while index < length:
        acc ^= (data[index] * _P64_5) & _MASK64
        acc = (_rotl64(acc, 11) * _P64_1) & _MASK64
        index += 1

    acc ^= acc >> 33
    acc = (acc * _P64_2) & _MASK64
    acc ^= acc >> 29
    acc = (acc * _P64_3) & _MASK64
    acc ^= acc >> 32
    return acc


def xxh64_hex(data: bytes, seed: int = 0) -> str:
    """Hex digest of :func:`xxh64`."""
    return f"{xxh64(data, seed):016x}"


def xxh128_hex(data: bytes | str, seed: int = 0) -> str:
    """128-bit hex digest built from two independently seeded XXH64 lanes.

    This stands in for ``XXH3_128bits`` (see DESIGN.md): SIREN only uses the
    value as an opaque identifier of the executable *path*, so collision
    resistance at the 2^-64 level per lane is more than sufficient.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    low = xxh64(data, seed)
    high = xxh64(data, (seed ^ _P64_1) & _MASK64)
    return f"{high:016x}{low:016x}"
