"""Batched bit-parallel signature comparison engine.

PR 1 prunes candidate pairs and the hashing engine made *producing* digests
fast, but every pair surviving the prune still paid a per-pair pure-Python
toll: ``compare`` re-parsed both digests, re-ran run-length normalisation
four times, and executed an ``O(64*64)`` Python DP.  This module removes
that last unvectorised hot path with three pieces:

Normalization cache
    :func:`normalize_digest` parses a digest string once and caches
    everything the comparison needs per *unique digest* instead of per pair:
    the block size, both run-length-normalised signatures, their 7-gram sets
    (so the common-substring gate becomes one frozenset intersection), and
    the per-character bitmasks the kernel consumes.

Bit-parallel LCS kernel
    With the scorer's fixed costs (insert/delete 1, substitute 2, transpose
    2) a substitution or adjacent transposition never beats the
    delete+insert pair it replaces, so the weighted Damerau-Levenshtein
    distance collapses to the indel-only distance

        ``d(a, b) = len(a) + len(b) - 2 * LCS(a, b)``

    and LCS length admits the Hyyro/Allison-Dix word-parallel recurrence:
    one machine word per DP *column*, ``O(ceil(m/64) * n)`` word operations
    instead of ``O(m*n)`` Python-level cell updates.  Signatures are at most
    64 characters after normalisation in the default configuration, i.e.
    exactly one word.  :func:`lcs_length` runs the recurrence on Python
    integers (any pattern length -- longer-than-64 signatures from custom
    ``signature_length`` configurations just widen the int), and
    :func:`lcs_length_many` vectorises the one-vs-many case with numpy:
    a whole candidate batch advances one text column per ``uint64`` array
    operation.

Compare LRU
    :class:`CompareCache` is the explicit LRU behind
    ``FuzzyHasher.compare_cached`` *and* ``FuzzyHasher.compare_many``.  The
    seed implementation wrapped a bound method in ``functools.lru_cache``,
    which pinned the hasher inside a reference cycle (hasher -> cache ->
    bound method -> hasher) until a GC pass; this cache stores only digest
    strings and scores, so dropping the hasher frees it immediately, and
    batch scoring can feed it directly -- scalar ``compare_cached`` callers
    hit pairs a ``compare_many`` sweep already scored.

The kernel is exact, not approximate: scores produced through this module
are byte-identical to the reference scalar path (pinned by the property
tests in ``tests/hashing/test_compare_engine.py``).  Non-default costs
(``levenshtein``, ``damerau_levenshtein``, custom-cost callers of
``weighted_edit_distance``) keep the existing DP -- the reduction above
only holds for the scorer's 1/1/2/2 costs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from typing import NamedTuple

from repro.hashing.rolling import ROLLING_WINDOW

try:  # optional accelerator -- the kernel is exact either way
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

#: n-gram length of the common-substring gate -- must match the reference
#: path's ``has_common_substring(s1, s2, ROLLING_WINDOW)`` or the backends'
#: gates (and therefore their scores) diverge.
NGRAM = ROLLING_WINDOW

#: Below this many texts the batch set-up costs more than it saves.
_MIN_BATCH = 4

#: ``numpy.bitwise_count`` arrived in numpy 2.0; older installs fall back to
#: the scalar kernel, which needs no popcount ufunc.
_BITWISE_COUNT = getattr(_np, "bitwise_count", None) if _np is not None else None


def compare_scan_backend() -> str:
    """Name of the active one-vs-many kernel (``"numpy"`` or ``"python"``)."""
    return "numpy" if _BITWISE_COUNT is not None else "python"


# --------------------------------------------------------------------------- #
# per-digest normalization cache
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class NormalizedDigest:
    """Everything ``compare`` needs from one digest, computed once.

    ``s1``/``s2`` are the run-length-normalised signatures, ``grams1`` /
    ``grams2`` their 7-gram sets (the common-substring gate is a frozenset
    intersection), and ``masks1``/``masks2`` the per-character bit masks of
    each signature used as the kernel's pattern vectors (bit ``i`` of
    ``masks[c]`` is set iff ``sig[i] == c``).
    """

    block_size: int
    s1: str
    s2: str
    grams1: frozenset[str]
    grams2: frozenset[str]
    masks1: dict[str, int]
    masks2: dict[str, int]


def signature_masks(signature: str) -> dict[str, int]:
    """Per-character match-bit masks of ``signature`` (the pattern vectors)."""
    masks: dict[str, int] = {}
    for position, char in enumerate(signature):
        masks[char] = masks.get(char, 0) | (1 << position)
    return masks


def signature_grams(signature: str, length: int = NGRAM) -> frozenset[str]:
    """The ``length``-gram set of ``signature`` (empty for short signatures)."""
    if len(signature) < length:
        return frozenset()
    return frozenset(signature[i:i + length] for i in range(len(signature) - length + 1))


#: Entries carry gram sets and mask dicts (kilobytes, not the compare LRU's
#: tens of bytes), so the cap is sized for bounded residency: large enough
#: that a campaign's unique digests mostly stay resident, small enough that
#: worst-case memory stays in the tens of megabytes.
_NORMALIZE_CACHE_SIZE = 16384


def normalize_parsed(block_size: int, sig1: str, sig2: str) -> NormalizedDigest:
    """Normalise an already-parsed digest (e.g. a ``FuzzyHash``'s components).

    The component-level entry point matters for hand-constructed
    ``FuzzyHash`` objects whose fields would not survive a str()+re-parse
    round trip; scalar ``compare`` uses it so both backends score the same
    signature strings.  Uncached -- object callers are rare, and the hot
    paths all go through :func:`normalize_digest`.
    """
    # Imported lazily: ssdeep imports this module for the kernel, and the
    # normalise primitive lives there.
    from repro.hashing.ssdeep import eliminate_sequences

    s1 = eliminate_sequences(sig1)
    s2 = eliminate_sequences(sig2)
    return NormalizedDigest(
        block_size=block_size,
        s1=s1,
        s2=s2,
        grams1=signature_grams(s1),
        grams2=signature_grams(s2),
        masks1=signature_masks(s1),
        masks2=signature_masks(s2),
    )


@lru_cache(maxsize=_NORMALIZE_CACHE_SIZE)
def normalize_digest(digest: str) -> NormalizedDigest:
    """Parse + normalise one digest string, cached per unique string.

    Raises :class:`ValueError` for unparseable digests, exactly like
    ``FuzzyHash.parse`` (errors are not cached).  The cache is module-level
    and content-addressed -- normalisation depends only on the digest
    string, never on hasher knobs, so every hasher instance shares it.
    """
    from repro.hashing.ssdeep import FuzzyHash

    parsed = FuzzyHash.parse(digest)
    return normalize_parsed(parsed.block_size, parsed.sig1, parsed.sig2)


def normalize_cache_clear() -> None:
    """Drop the module-level normalization cache (tests / memory pressure)."""
    normalize_digest.cache_clear()


# --------------------------------------------------------------------------- #
# bit-parallel LCS kernel
# --------------------------------------------------------------------------- #
def lcs_length(masks: dict[str, int], m: int, text: str) -> int:
    """Length of the LCS between the pattern behind ``masks`` and ``text``.

    The Hyyro/Allison-Dix recurrence: ``V`` starts all-ones over ``m`` bits;
    for each text character, ``U = V & PM[c]`` marks extendable matches and
    ``V = (V + U) | (V - U)`` advances every DP column one step in parallel.
    Zero bits of the final ``V`` count the LCS.  Python integers make the
    word as wide as the pattern needs, so any ``m`` is exact.
    """
    if not m or not text:
        return 0
    full = (1 << m) - 1
    v = full
    get = masks.get
    for char in text:
        p = get(char, 0)
        u = v & p
        v = ((v + u) | (v - u)) & full
    return m - v.bit_count()


def lcs_length_many(masks: dict[str, int], m: int, texts: list[str]) -> list[int]:
    """One-vs-many :func:`lcs_length`: the whole batch advances per column.

    Candidates become rows of a code matrix (ragged lengths padded with a
    sentinel whose match mask is 0 -- a pad step leaves ``V`` unchanged, so
    padding is a no-op); each of the at-most-``max_len`` column steps is
    three ``uint64`` array operations over the entire batch.  Carries from
    ``V + U`` propagate upward only, so bits at and above ``m`` never feed
    back into the live low ``m`` bits and the mod-``2**64`` wrap is exact.
    Falls back to the scalar kernel for patterns wider than one word, tiny
    batches, or numpy-free installs -- results are identical either way.
    """
    if (_BITWISE_COUNT is None or m == 0 or m > 64 or len(texts) < _MIN_BATCH):
        return [lcs_length(masks, m, text) for text in texts]
    max_len = max((len(text) for text in texts), default=0)
    if max_len == 0:
        return [0] * len(texts)
    # Encode every distinct character once; code 0 is the pad sentinel.
    codes: dict[str, int] = {}
    pattern_masks = [0]
    rows = _np.zeros((len(texts), max_len), dtype=_np.intp, order="F")
    for row, text in enumerate(texts):
        for column, char in enumerate(text):
            code = codes.get(char)
            if code is None:
                code = codes[char] = len(pattern_masks)
                pattern_masks.append(masks.get(char, 0))
            rows[row, column] = code
    table = _np.array(pattern_masks, dtype=_np.uint64)
    full = _np.uint64((1 << m) - 1)
    v = _np.full(len(texts), full, dtype=_np.uint64)
    for column in range(max_len):
        p = table[rows[:, column]]
        u = v & p
        v = (v + u) | (v - u)
    return (m - _BITWISE_COUNT(v & full)).tolist()


def default_cost_distance(s1: str, s2: str, masks1: dict[str, int] | None = None) -> int:
    """The scorer's weighted edit distance at default costs, via the kernel.

    Equals ``weighted_edit_distance(s1, s2)`` with the default 1/1/2/2
    costs: substitutions and transpositions cost exactly a delete+insert
    pair, so only the indel-distance ``len(s1) + len(s2) - 2*LCS`` remains.
    """
    if masks1 is None:
        masks1 = signature_masks(s1)
    return len(s1) + len(s2) - 2 * lcs_length(masks1, len(s1), s2)


def default_cost_distance_many(s1: str, texts: list[str],
                               masks1: dict[str, int] | None = None) -> list[int]:
    """Batched :func:`default_cost_distance` of one pattern against many texts."""
    if masks1 is None:
        masks1 = signature_masks(s1)
    m = len(s1)
    return [m + len(text) - 2 * lcs for text, lcs
            in zip(texts, lcs_length_many(masks1, m, texts))]


# --------------------------------------------------------------------------- #
# the shared compare LRU
# --------------------------------------------------------------------------- #
class CacheInfo(NamedTuple):
    """``functools.lru_cache``-shaped statistics of a :class:`CompareCache`."""

    hits: int
    misses: int
    maxsize: int
    currsize: int


class CompareCache:
    """Explicit LRU over (digest, digest) -> score, shared by scalar and batch.

    Unlike the seed's ``lru_cache`` over a bound method, this holds no
    reference to its owning hasher (keys are digest-string pairs, values are
    int scores), so a dropped hasher is freed without waiting for a cycle
    GC pass -- and batch scoring can :meth:`put` results directly, warming
    the cache for later scalar lookups.
    """

    __slots__ = ("maxsize", "hits", "misses", "_data")

    def __init__(self, maxsize: int = 65536) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[tuple[str, str], int] = OrderedDict()

    def get(self, key: tuple[str, str]) -> int | None:
        """The cached score for ``key``, or ``None`` (counted as hit/miss)."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: tuple[str, str], value: int) -> None:
        """Insert one scored pair, evicting the least recently used beyond capacity."""
        if self.maxsize <= 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters (as ``cache_clear``)."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def info(self) -> CacheInfo:
        """``lru_cache``-compatible statistics tuple."""
        return CacheInfo(hits=self.hits, misses=self.misses,
                         maxsize=self.maxsize, currsize=len(self._data))
