"""Single-pass streaming CTPH engine.

The reference :class:`~repro.hashing.ssdeep.FuzzyHasher` implementation walks
the payload one byte at a time through two Python call boundaries per byte
(``RollingHash.update`` + ``sum_hash``) and, whenever the primary signature
turns out too short, *halves the block size and rescans the whole payload from
scratch*.  Fuzzy-hashing executables is by far the most expensive part of
collection, so this module rebuilds that hot path as a streaming, single-pass,
multi-blocksize engine -- like libfuzzy's ``fuzzy_update`` -- while producing
**byte-identical digests** (pinned by the golden tests in
``tests/hashing/test_engine.py``).

Design
------
The spamsum rolling hash is a *pure function of the last 7 input bytes*
(``h1`` is the window sum, ``h2`` the position-weighted window sum, and the
shift/xor mixer ``h3`` pushes every byte out of 32-bit range after seven
steps).  Two consequences drive the whole design:

1. *One trigger scan serves every block size.*  A piece boundary at block
   size ``b`` occurs when ``rolling % b == b - 1``, i.e. when ``b`` divides
   ``rolling + 1``.  Candidate block sizes are ``min_bs * 2**i``, so a single
   pass that records, for each position with ``min_bs | rolling + 1``, the
   2-adic level ``2**i`` of ``(rolling + 1) // min_bs`` yields the trigger
   stream of *all* candidate block sizes at once.  Per level the engine keeps
   only the total trigger count plus the first ``signature_length - 1``
   positions -- everything a signature can ever consume -- so the trigger
   bookkeeping stays a few hundred integers no matter how large the stream
   grows.  (The payload itself *is* retained, by reference, because the FNV
   piece hashes of the finally-selected block size are computed lazily at
   digest time; ``FuzzyState`` trades memory for never rescanning.)
2. *The scan is chunk-parallel.*  Because the rolling value depends only on a
   7-byte window, a chunk can be scanned given just the 6 preceding bytes:
   there is no sequential carry.  When :mod:`numpy` is importable the scan is
   vectorised (shifted adds / xors over ``uint32``, exact mod ``2**32``);
   otherwise a fused pure-Python loop runs with the rolling hash inlined into
   local variables and zero per-byte function calls.

Once the stream ends, the final block size is decided from the recorded
trigger *counts* exactly like the reference decision loop (halve while the
primary signature would come out shorter than ``signature_length // 2``), and
only then are the FNV piece hashes computed -- one pass per selected
signature over the recorded piece boundaries.  The FNV inner loop defers the
32-bit mask across a 4-byte unroll: multiplication and xor-with-a-byte are
both compatible with reduction mod ``2**32``, so masking once per four bytes
is exact.

``hash_many`` adds a batch layer with an optional ``ProcessPoolExecutor``
backend for multi-core hosts; results are identical to sequential hashing in
payload order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from itertools import chain
from typing import Iterable, Sequence

from repro.hashing.fnv import FNV32_PRIME, SSDEEP_HASH_INIT
from repro.hashing.rolling import ROLLING_WINDOW

try:  # optional accelerator -- the engine is exact either way
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

#: Base64 alphabet used for signature characters (standard alphabet, as ssdeep).
B64_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

#: Upper bound on bytes scanned per vectorised slice (bounds temporaries).
_SCAN_SLICE = 1 << 22


def scan_backend() -> str:
    """Name of the active trigger-scan kernel (``"numpy"`` or ``"python"``)."""
    return "numpy" if _np is not None else "python"


class FuzzyState:
    """Streaming CTPH state: feed chunks with :meth:`update`, read the digest.

    Maintains the trigger bookkeeping of *all* candidate block sizes
    concurrently, so the digest never requires rescanning earlier input --
    the rolling scan touches every byte exactly once no matter how often the
    block size would have halved.  Input chunks are retained (by reference
    where possible) because the FNV piece hashes of the finally-selected
    block size are computed lazily at :meth:`digest` time.
    """

    __slots__ = ("min_block_size", "signature_length", "_chunks", "_length",
                 "_tail", "_counts", "_positions", "_payload_cache", "_result")

    def __init__(self, min_block_size: int = 3, signature_length: int = 64) -> None:
        if min_block_size < 1:
            raise ValueError("min_block_size must be >= 1")
        if signature_length < 8:
            raise ValueError("signature_length must be >= 8")
        self.min_block_size = min_block_size
        self.signature_length = signature_length
        self._chunks: list[bytes] = []
        self._length = 0
        self._tail = b"\x00" * ROLLING_WINDOW
        self._counts: list[int] = []        # per level: total trigger count
        self._positions: list[list[int]] = []  # per level: first sl-1 positions
        self._payload_cache: bytes | None = None
        self._result: tuple[int, str, str] | None = None

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #
    def update(self, data: bytes | bytearray | memoryview) -> "FuzzyState":
        """Consume the next chunk of the stream; returns ``self`` for chaining."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("FuzzyState.update expects bytes-like input")
        data = bytes(data)
        if not data:
            return self
        self._payload_cache = None
        self._result = None
        if _np is not None:
            self._scan_numpy(data, self._length)
        else:
            self._scan_python(data, self._length)
        self._chunks.append(data)
        self._length += len(data)
        if len(data) >= ROLLING_WINDOW:
            self._tail = data[-ROLLING_WINDOW:]
        else:
            self._tail = (self._tail + data)[-ROLLING_WINDOW:]
        return self

    @property
    def length(self) -> int:
        """Number of bytes consumed so far."""
        return self._length

    # ------------------------------------------------------------------ #
    # digest
    # ------------------------------------------------------------------ #
    def digest_parts(self) -> tuple[int, str, str]:
        """``(block_size, sig1, sig2)`` of everything consumed so far."""
        if self._result is not None:
            return self._result
        min_bs = self.min_block_size
        sl = self.signature_length
        length = self._length
        if length == 0:
            self._result = (min_bs, "", "")
            return self._result
        # Smallest block size whose expected signature fits the budget, then
        # halve while the primary signature would come out too short -- the
        # reference decision loop, driven by recorded counts instead of
        # rescans.  A level's signature length is min(count, sl - 1) chars
        # plus the unconditional final piece.
        level = 0
        block_size = min_bs
        while block_size * sl < length:
            block_size *= 2
            level += 1
        counts = self._counts
        cap1 = sl - 1
        while level > 0:
            triggers = counts[level] if level < len(counts) else 0
            if min(triggers, cap1) + 1 >= sl // 2:
                break
            level -= 1
            block_size //= 2
        positions = self._positions
        ends1 = positions[level] if level < len(positions) else []
        ends2 = positions[level + 1] if level + 1 < len(positions) else []
        payload = self._payload()
        sig1 = _signature(payload, ends1, cap1)
        sig2 = _signature(payload, ends2, sl // 2 - 1)
        self._result = (block_size, sig1, sig2)
        return self._result

    def digest(self):
        """The digest as a :class:`~repro.hashing.ssdeep.FuzzyHash`."""
        from repro.hashing.ssdeep import FuzzyHash  # deferred: avoids a cycle

        block_size, sig1, sig2 = self.digest_parts()
        return FuzzyHash(block_size=block_size, sig1=sig1, sig2=sig2)

    def _payload(self) -> bytes:
        if self._payload_cache is None:
            chunks = self._chunks
            self._payload_cache = chunks[0] if len(chunks) == 1 else b"".join(chunks)
            # The joined copy supersedes the chunk list (keeps retained
            # memory at one payload, not two, after a streamed digest).
            self._chunks = [self._payload_cache]
        return self._payload_cache

    # ------------------------------------------------------------------ #
    # trigger scan kernels
    # ------------------------------------------------------------------ #
    def _scan_python(self, data: bytes, base: int) -> None:
        """Fused rolling-hash scan: all state in locals, no per-byte calls."""
        min_bs = self.min_block_size
        cap = self.signature_length - 1
        counts = self._counts
        positions = self._positions
        tail = self._tail
        # Rebuild the window-determined rolling components from the tail.
        h1 = h2 = h3 = 0
        for index in range(ROLLING_WINDOW):
            byte = tail[index]
            h1 += byte
            h2 += (index + 1) * byte
            h3 = (h3 << 5 & 4294967295) ^ byte
        pos = base
        # The outgoing window byte of position t is stream[t - 7]: lazily
        # chain the 7 tail bytes in front of the chunk (no payload copy).
        for byte, out in zip(data, chain(tail, data)):
            h2 = h2 - h1 + 7 * byte
            h1 = h1 + byte - out
            h3 = (h3 << 5 & 4294967295) ^ byte
            q = (h1 + h2 + h3 & 4294967295) + 1
            if not q % min_bs:
                v = q // min_bs
                level = 0
                while True:
                    if level == len(counts):
                        counts.append(0)
                        positions.append([])
                    counts[level] += 1
                    plist = positions[level]
                    if len(plist) < cap:
                        plist.append(pos)
                    if v & 1:
                        break
                    v >>= 1
                    level += 1
            pos += 1

    def _scan_numpy(self, data: bytes, base: int) -> None:
        """Vectorised trigger scan, exact mod 2**32, sliced to bound memory.

        Each slice buffer is the 6 preceding stream bytes (window context)
        plus at most ``_SCAN_SLICE`` payload bytes, so transient memory stays
        bounded regardless of chunk size.
        """
        length = len(data)
        view = memoryview(data)
        for start in range(0, length, _SCAN_SLICE):
            end = min(length, start + _SCAN_SLICE)
            if start == 0:
                context = self._tail[-(ROLLING_WINDOW - 1):]
            else:
                context = view[start - (ROLLING_WINDOW - 1):start]
            buf = b"".join((context, view[start:end]))  # one bounded allocation
            local_pos, levels = _scan_slice_numpy(buf, self.min_block_size)
            self._fold_events(local_pos + (base + start), levels)

    def _fold_events(self, pos_arr, lv_arr) -> None:
        """Accumulate vectorised (position, 2-adic level) events per level."""
        cap = self.signature_length - 1
        counts = self._counts
        positions = self._positions
        level = 0
        while pos_arr.size:
            if level == len(counts):
                counts.append(0)
                positions.append([])
            counts[level] += int(pos_arr.size)
            plist = positions[level]
            if len(plist) < cap:
                plist.extend(pos_arr[:cap - len(plist)].tolist())
            keep = lv_arr >= (1 << (level + 1))
            pos_arr = pos_arr[keep]
            lv_arr = lv_arr[keep]
            level += 1


def _scan_slice_numpy(buf, min_bs: int):
    """Trigger events of one slice: ``buf`` is 6 context bytes + the payload.

    Returns ``(positions, levels)`` where positions are 0-based within the
    payload part and levels are the 2-adic components ``2**i`` of
    ``(rolling + 1) // min_bs``.
    """
    c8 = _np.frombuffer(buf, dtype=_np.uint8)
    wide = c8.astype(_np.uint16)
    # Position t of the payload sits at c8[t+6]; window byte b[t-k] at c8[t+6-k].
    # h1 + h2 together: byte b[t-k] carries weight 1 + (7-k).
    h12 = 8 * wide[6:]
    h3 = c8[6:].astype(_np.uint32)
    for k in range(1, ROLLING_WINDOW):
        w = wide[6 - k:len(wide) - k]
        h12 += _np.uint16(8 - k) * w
        h3 ^= w.astype(_np.uint32) << _np.uint32(5 * k)
    q = h3 + h12          # uint32 wrap-around == mod 2**32
    q += _np.uint32(1)    # q == 0 encodes rolling + 1 == 2**32
    mask = (q % _np.uint32(min_bs)) == 0
    power_of_two = min_bs & (min_bs - 1) == 0
    if power_of_two:
        mask |= q == 0    # 2**32 is divisible by a power-of-two min_bs
    else:
        mask &= q != 0    # ...but by nothing else
    pos = _np.nonzero(mask)[0]
    v = q[pos].astype(_np.uint64)
    if power_of_two:
        v[v == 0] = _np.uint64(1) << _np.uint64(32)
    v //= _np.uint64(min_bs)
    levels = v & (~v + _np.uint64(1))
    return pos, levels


# ---------------------------------------------------------------------- #
# piece hashing (runs once, for the selected block size only)
# ---------------------------------------------------------------------- #
def _signature(data: bytes, ends: Sequence[int], cap: int) -> str:
    """Signature characters for pieces ending at ``ends`` (capped) plus tail."""
    chars: list[str] = []
    start = 0
    for end in ends[:cap]:
        chars.append(B64_ALPHABET[_fnv_piece(data, start, end + 1) & 63])
        start = end + 1
    chars.append(B64_ALPHABET[_fnv_piece(data, start, len(data)) & 63])
    return "".join(chars)


def _fnv_piece(data: bytes, start: int, end: int) -> int:
    """ssdeep's piece hash over ``data[start:end]``.

    Multiplication and xor-with-a-byte both commute with reduction mod
    ``2**32`` (the xor only touches the low 8 bits), so the 32-bit mask is
    applied once per 4-byte unroll instead of per byte -- exact, and measurably
    faster than the per-byte reference loop.
    """
    h = SSDEEP_HASH_INIT
    prime = FNV32_PRIME
    stop = start + ((end - start) & ~3)
    for b0, b1, b2, b3 in zip(data[start:stop:4], data[start + 1:stop:4],
                              data[start + 2:stop:4], data[start + 3:stop:4]):
        h = ((((h * prime ^ b0) * prime ^ b1) * prime ^ b2) * prime ^ b3) & 4294967295
    for byte in data[stop:end]:
        h = (h * prime & 4294967295) ^ byte
    return h


# ---------------------------------------------------------------------- #
# batch layer
# ---------------------------------------------------------------------- #
def hash_parts(data: bytes, min_block_size: int = 3,
               signature_length: int = 64) -> tuple[int, str, str]:
    """One-shot engine hash returning ``(block_size, sig1, sig2)``."""
    state = FuzzyState(min_block_size=min_block_size, signature_length=signature_length)
    state.update(data)
    return state.digest_parts()


def _hash_worker(args: tuple[bytes, int, int]) -> tuple[int, str, str]:
    """Process-pool entry point (must be picklable at module level)."""
    data, min_block_size, signature_length = args
    return hash_parts(data, min_block_size, signature_length)


def hash_many_parts(payloads: Iterable[bytes], min_block_size: int = 3,
                    signature_length: int = 64, *,
                    concurrency: int = 1,
                    pool: ProcessPoolExecutor | None = None) -> list[tuple[int, str, str]]:
    """Hash a batch of payloads, optionally across a process pool.

    Results are in payload order and identical to sequential hashing.  Pass a
    long-lived ``pool`` (as :meth:`FuzzyHasher.hash_many` does) to amortise
    worker startup across batches; a pool only pays off for sizable payloads
    on multi-core hosts, since every payload is shipped to a worker process.
    """
    items = [bytes(p) for p in payloads]
    if concurrency <= 1 or len(items) < 2:
        return [hash_parts(p, min_block_size, signature_length) for p in items]
    args = [(p, min_block_size, signature_length) for p in items]
    workers = min(concurrency, len(items))
    chunksize = max(1, len(items) // (workers * 4))
    if pool is not None:
        return list(pool.map(_hash_worker, args, chunksize=chunksize))
    with ProcessPoolExecutor(max_workers=workers) as owned:
        return list(owned.map(_hash_worker, args, chunksize=chunksize))
