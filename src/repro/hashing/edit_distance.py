"""Edit distances used to compare fuzzy-hash signatures.

The paper (Section 2.1) describes ssdeep's comparison as a
Damerau-Levenshtein distance over the two signature strings -- insertions,
deletions, substitutions, and transpositions of adjacent characters -- which
is then rescaled into a 0-100 similarity score.  This module implements:

* :func:`levenshtein` -- the classic unit-cost Levenshtein distance,
* :func:`damerau_levenshtein` -- the restricted (optimal string alignment)
  Damerau-Levenshtein distance with unit costs,
* :func:`weighted_edit_distance` -- the configurable-cost variant the fuzzy
  comparison actually uses (ssdeep's ``edit_distn`` charges 1 for
  insert/delete and 2 for substitution; transpositions cost 2 here so that a
  swap is never more expensive than the delete+insert it replaces).

All functions operate on plain ``str`` objects and run in ``O(len(a)*len(b))``
time and ``O(min(len(a), len(b)))`` memory for the two-row variants.
"""

from __future__ import annotations


def levenshtein(a: str, b: str) -> int:
    """Unit-cost Levenshtein distance between ``a`` and ``b``."""
    return weighted_edit_distance(a, b, insert_cost=1, delete_cost=1, substitute_cost=1,
                                  transpose_cost=None)


def damerau_levenshtein(a: str, b: str) -> int:
    """Restricted Damerau-Levenshtein (OSA) distance with unit costs."""
    return weighted_edit_distance(a, b, insert_cost=1, delete_cost=1, substitute_cost=1,
                                  transpose_cost=1)


def weighted_edit_distance(
    a: str,
    b: str,
    *,
    insert_cost: int = 1,
    delete_cost: int = 1,
    substitute_cost: int = 2,
    transpose_cost: int | None = 2,
    bound: int | None = None,
) -> int:
    """Weighted edit distance with optional adjacent-transposition moves.

    Parameters
    ----------
    a, b:
        The strings to align.
    insert_cost, delete_cost, substitute_cost:
        Costs of the three classic operations.  The defaults match ssdeep's
        ``edit_distn`` (1/1/2).
    transpose_cost:
        Cost of swapping two adjacent characters (Damerau move).  ``None``
        disables transpositions entirely, giving plain weighted Levenshtein.
    bound:
        Optional early-exit cost bound.  Distances up to ``bound`` are exact;
        once every cell of the two most recent DP rows exceeds ``bound`` (DP
        values only grow along any alignment path, and with transpositions a
        path can skip at most one row), the true distance provably exceeds
        ``bound`` too and the scan stops, returning that row minimum -- a
        lower bound on the true distance that is itself ``> bound``.  Callers
        that only compare the distance against a threshold ``<= bound`` (the
        fuzzy-hash scorer) therefore see unchanged results at a fraction of
        the cost for dissimilar strings.

    Returns
    -------
    int
        The minimal total cost of transforming ``a`` into ``b`` (exact when
        it is ``<= bound`` or ``bound`` is ``None``).
    """
    if a == b:
        return 0
    if not a:
        return len(b) * insert_cost
    if not b:
        return len(a) * delete_cost

    len_a, len_b = len(a), len(b)
    # Three rows are enough even with transpositions (we only look back two).
    prev2: list[int] = [0] * (len_b + 1)
    prev: list[int] = [j * insert_cost for j in range(len_b + 1)]
    current: list[int] = [0] * (len_b + 1)

    for i in range(1, len_a + 1):
        current[0] = i * delete_cost
        char_a = a[i - 1]
        for j in range(1, len_b + 1):
            char_b = b[j - 1]
            cost = 0 if char_a == char_b else substitute_cost
            best = min(
                prev[j] + delete_cost,       # delete a[i-1]
                current[j - 1] + insert_cost,  # insert b[j-1]
                prev[j - 1] + cost,          # match / substitute
            )
            if (
                transpose_cost is not None
                and i > 1
                and j > 1
                and char_a == b[j - 2]
                and a[i - 2] == char_b
            ):
                best = min(best, prev2[j - 2] + transpose_cost)
            current[j] = best
        if bound is not None:
            frontier = min(min(current), min(prev))
            if frontier > bound:
                return frontier
        prev2, prev, current = prev, current, prev2

    return prev[len_b]


def has_common_substring(a: str, b: str, length: int = 7) -> bool:
    """True if ``a`` and ``b`` share any common substring of ``length`` chars.

    ssdeep refuses to score two signatures at all unless they share a 7-gram;
    this filters out coincidental low-distance matches between short unrelated
    signatures.
    """
    if len(a) < length or len(b) < length:
        return False
    grams = {a[i:i + length] for i in range(len(a) - length + 1)}
    return any(b[i:i + length] in grams for i in range(len(b) - length + 1))
