"""Materialise the synthetic corpus inside a virtual filesystem.

The :class:`CorpusBuilder` turns the declarative specifications of this
subpackage (libraries, system tools, packages, Python environments) into
actual ELF images and script files inside a :class:`~repro.hpcsim.cluster.Cluster`,
registers the environment modules that make the non-default library stacks
reachable, and returns a :class:`CorpusManifest` describing everything it
installed -- which is what the workload generator uses to compose job scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.libraries import LIBRARY_BY_KEY, LIBRARY_CATALOG, LibrarySpec
from repro.corpus.packages import PACKAGES, PackageSpec, VariantSpec
from repro.corpus.python_env import PYTHON_INTERPRETERS, PYTHON_PACKAGES, PythonInterpreterSpec
from repro.corpus.system_tools import SYSTEM_TOOLS, SystemToolSpec
from repro.corpus.toolchains import comments_for
from repro.elf.builder import ELFBuilder
from repro.elf.constants import ET_DYN, ET_EXEC
from repro.hpcsim.cluster import Cluster
from repro.hpcsim.modules import Module
from repro.hpcsim.users import User
from repro.util.errors import CorpusError
from repro.util.rng import SeededRNG

#: Path of the SIREN data-collection library on the simulated system.
SIREN_LIBRARY_PATH = "/appl/local/siren/lib/siren.so"

#: Decorative environment modules (names only); used to compose realistic
#: ``LOADEDMODULES`` values per package.
ENVIRONMENT_MODULES: tuple[tuple[str, str], ...] = (
    ("init-lumi", "0.2"), ("craype", "2.7.30"), ("cce", "17.0.1"),
    ("PrgEnv-cray", "8.5.0"), ("cray-mpich", "8.1.29"), ("cray-libsci", "23.12.5"),
    ("cray-hdf5", "1.12.2"), ("cray-netcdf", "4.9.0"), ("cray-fftw", "3.3.10"),
    ("rocm", "6.0.3"), ("cray-python", "3.10.10"), ("lumi-tools", "24.05"),
    ("buildtools", "24.03"), ("partition-gpu", "8.5.0"),
)


@dataclass(frozen=True)
class InstalledExecutable:
    """One executable the corpus installed in a user (or shared) directory."""

    path: str
    package: str
    variant_id: str
    version: str
    owner: str                    #: username owning the install ("" for shared installs)
    compilers: tuple[str, ...]
    library_keys: tuple[str, ...]
    required_modules: tuple[str, ...]
    size: int

    @property
    def filename(self) -> str:
        """Base name of the executable."""
        return self.path.rsplit("/", 1)[-1]


@dataclass
class CorpusManifest:
    """Everything the builder installed, indexed for the workload generator."""

    siren_library: str = SIREN_LIBRARY_PATH
    siren_module: str = "siren"
    system_tools: dict[str, str] = field(default_factory=dict)
    python_interpreters: dict[str, str] = field(default_factory=dict)
    library_paths: dict[str, str] = field(default_factory=dict)
    executables: list[InstalledExecutable] = field(default_factory=list)
    stack_modules: dict[str, str] = field(default_factory=dict)

    def tool(self, name: str) -> str:
        """Path of a system tool."""
        try:
            return self.system_tools[name]
        except KeyError as exc:
            raise CorpusError(f"system tool not installed: {name}") from exc

    def interpreter(self, name: str) -> str:
        """Path of a Python interpreter."""
        try:
            return self.python_interpreters[name]
        except KeyError as exc:
            raise CorpusError(f"python interpreter not installed: {name}") from exc

    def executables_for(self, package: str, owner: str | None = None) -> list[InstalledExecutable]:
        """Installed executables of a package (optionally restricted to one owner)."""
        return [
            exe for exe in self.executables
            if exe.package == package and (owner is None or exe.owner in ("", owner))
        ]

    def find_executable(self, package: str, variant_id: str,
                        owner: str | None = None) -> InstalledExecutable:
        """Find a specific installed variant."""
        for exe in self.executables_for(package, owner):
            if exe.variant_id == variant_id:
                return exe
        raise CorpusError(f"no installed executable for {package}/{variant_id}")


@dataclass
class CorpusBuilder:
    """Builds the corpus into a cluster's virtual filesystem."""

    cluster: Cluster
    rng: SeededRNG = field(default_factory=lambda: SeededRNG(2024))
    manifest: CorpusManifest = field(default_factory=CorpusManifest)
    _variant_images: dict[tuple[str, str], bytes] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # top-level orchestration
    # ------------------------------------------------------------------ #
    def install_base_system(self) -> CorpusManifest:
        """Install libraries, system tools, Python environments and siren.so."""
        self._install_libraries()
        self._install_system_tools()
        self._install_python()
        self._install_siren()
        self._register_environment_modules()
        return self.manifest

    # ------------------------------------------------------------------ #
    # shared libraries
    # ------------------------------------------------------------------ #
    def _install_libraries(self) -> None:
        filesystem = self.cluster.filesystem
        default_dirs: list[str] = list(self.cluster.linker.default_paths)
        for spec in LIBRARY_CATALOG:
            image = self._build_library_image(spec)
            filesystem.add_file(spec.path, image, executable=True, mode=0o755)
            self.manifest.library_paths[spec.key] = spec.path
            if spec.in_default_path and spec.directory not in default_dirs:
                default_dirs.append(spec.directory)
            if not spec.in_default_path:
                module = Module(name=spec.key, version="corpus",
                                library_paths=(spec.directory,))
                self.cluster.modules.register(module)
                self.manifest.stack_modules[spec.key] = module.full_name
            filesystem.advance_clock(7)
        # Cray PE / ROCm directories are in ld.so.conf on the real system, so
        # they become part of the default search path here as well.
        self.cluster.linker.default_paths = tuple(default_dirs)
        self.cluster.linker.clear_cache()

    def _build_library_image(self, spec: LibrarySpec) -> bytes:
        builder = ELFBuilder(file_type=ET_DYN, soname=spec.soname)
        builder.set_text_from_source(f"shared library {spec.key}\nsoname {spec.soname}",
                                     size=max(512, spec.size), seed=11)
        builder.add_needed_many(list(spec.needed))
        builder.add_strings([spec.soname, f"{spec.key} synthetic shared object"])
        builder.add_global_functions([
            f"{spec.key.replace('-', '_').replace('+', 'x')}_entry_{index}" for index in range(4)
        ])
        builder.add_comment("GCC: (SUSE Linux) 12.3.0")
        return builder.build()

    # ------------------------------------------------------------------ #
    # system tools
    # ------------------------------------------------------------------ #
    def _install_system_tools(self) -> None:
        filesystem = self.cluster.filesystem
        for tool in SYSTEM_TOOLS:
            image = self._build_tool_image(tool)
            path = f"{tool.directory}/{tool.name}"
            filesystem.add_file(path, image, executable=True, mode=0o755)
            self.manifest.system_tools[tool.name] = path
            filesystem.advance_clock(3)

    def _build_tool_image(self, tool: SystemToolSpec) -> bytes:
        builder = ELFBuilder(file_type=ET_EXEC)
        builder.set_text_from_source(f"system tool {tool.name}", size=tool.text_size, seed=5)
        builder.add_strings([tool.name, *tool.strings])
        builder.add_global_functions(["main", f"{tool.name}_usage", f"{tool.name}_main_loop"])
        builder.add_comment("GCC: (SUSE Linux) 7.5.0")
        if not tool.static:
            builder.add_needed_many(
                [LIBRARY_BY_KEY[key].soname for key in tool.library_keys]
            )
        return builder.build()

    # ------------------------------------------------------------------ #
    # python environments
    # ------------------------------------------------------------------ #
    def _install_python(self) -> None:
        filesystem = self.cluster.filesystem
        for interpreter in PYTHON_INTERPRETERS:
            image = self._build_interpreter_image(interpreter)
            filesystem.add_file(interpreter.path, image, executable=True, mode=0o755)
            self.manifest.python_interpreters[interpreter.name] = interpreter.path
            for package in PYTHON_PACKAGES:
                extension = package.extension_path(interpreter)
                payload = self._build_extension_image(package.name, interpreter.name)
                filesystem.add_file(extension, payload, mode=0o644)
            filesystem.advance_clock(5)

    def _build_interpreter_image(self, interpreter: PythonInterpreterSpec) -> bytes:
        builder = ELFBuilder(file_type=ET_EXEC)
        builder.set_text_from_source(f"python interpreter {interpreter.version}",
                                     size=interpreter.text_size, seed=9)
        builder.add_strings([f"Python {interpreter.version}", "Fatal Python error:",
                             "PYTHONPATH", "sys.path"])
        builder.add_global_functions(["Py_Main", "Py_Initialize", "PyRun_SimpleFile",
                                      "PyEval_EvalCode"])
        builder.add_comment("GCC: (SUSE Linux) 12.3.0")
        builder.add_needed_many(
            [LIBRARY_BY_KEY[key].soname for key in interpreter.library_keys]
        )
        return builder.build()

    def _build_extension_image(self, package: str, interpreter: str) -> bytes:
        builder = ELFBuilder(file_type=ET_DYN, soname=f"{package}.so")
        builder.set_text(self.rng.fork("pyext", package, interpreter).bytes(256))
        builder.add_strings([f"python extension {package}"])
        builder.add_global_functions([f"PyInit__{package}"])
        return builder.build()

    # ------------------------------------------------------------------ #
    # the SIREN collection library
    # ------------------------------------------------------------------ #
    def _install_siren(self) -> None:
        builder = ELFBuilder(file_type=ET_DYN, soname="siren.so")
        builder.set_text_from_source("siren data collection library", size=2048, seed=13)
        builder.add_strings(["siren.so", "SIREN data collection", "UDP sender"])
        builder.add_global_functions(["siren_constructor", "siren_destructor",
                                      "siren_collect", "siren_send_udp"])
        builder.add_comment("GCC: (SUSE Linux) 12.3.0")
        self.cluster.filesystem.add_file(SIREN_LIBRARY_PATH, builder.build(),
                                         executable=True, mode=0o755)
        self.cluster.modules.register(Module(
            name="siren", version="0.1",
            library_paths=("/appl/local/siren/lib",),
            ld_preload=(SIREN_LIBRARY_PATH,),
        ))
        self.manifest.siren_library = SIREN_LIBRARY_PATH

    # ------------------------------------------------------------------ #
    # decorative environment modules
    # ------------------------------------------------------------------ #
    def _register_environment_modules(self) -> None:
        for name, version in ENVIRONMENT_MODULES:
            self.cluster.modules.register(Module(name=name, version=version))

    # ------------------------------------------------------------------ #
    # scientific packages
    # ------------------------------------------------------------------ #
    def install_package(self, package: PackageSpec, user: User) -> list[InstalledExecutable]:
        """Install every variant of ``package`` for ``user`` and return the records."""
        return [self.install_variant(package, variant, user) for variant in package.variants]

    def install_variant(
        self, package: PackageSpec, variant: VariantSpec, user: User,
    ) -> InstalledExecutable:
        """Install one package variant for one user (shared installs ignore the user)."""
        path = self._variant_path(package, variant, user)
        for existing in self.manifest.executables:
            if existing.path == path:
                return existing
        image = self._variant_image(package, variant, user)
        shared = "{user}" not in package.install_root
        owner = "" if shared else user.username
        self.cluster.filesystem.add_file(
            path, image, executable=True, mode=0o750,
            uid=0 if shared else user.uid, gid=0 if shared else user.gid,
        )
        self.cluster.filesystem.advance_clock(60)
        self.cluster.linker.clear_cache()

        keys = variant.library_keys(package.base_library_keys)
        required_modules = tuple(sorted(
            key for key in keys if not LIBRARY_BY_KEY[key].in_default_path
        ))
        record = InstalledExecutable(
            path=path,
            package=package.name,
            variant_id=variant.variant_id,
            version=variant.version,
            owner=owner,
            compilers=variant.compilers,
            library_keys=keys,
            required_modules=required_modules,
            size=len(image),
        )
        self.manifest.executables.append(record)
        return record

    def _variant_path(self, package: PackageSpec, variant: VariantSpec, user: User) -> str:
        root = package.install_root.format(project=user.project, user=user.username)
        filename = variant.filename or package.executable_stem
        subdir = variant.subdir.format(project=user.project, user=user.username) \
            if variant.subdir else ""
        if subdir.startswith("/"):
            return f"{subdir}/{filename}"
        if subdir:
            return f"{root}/{subdir}/{filename}"
        return f"{root}/bin-{variant.variant_id}/{filename}"

    def _variant_image(self, package: PackageSpec, variant: VariantSpec, user: User) -> bytes:
        cache_key = (package.name, variant.variant_id)
        if cache_key in self._variant_images:
            return self._variant_images[cache_key]
        if variant.copy_of is not None:
            source_variant = package.variant(variant.copy_of)
            image = self._variant_image(package, source_variant, user)
            self._variant_images[cache_key] = image
            return image

        keys = variant.library_keys(package.base_library_keys)
        sonames = [LIBRARY_BY_KEY[key].soname for key in keys]

        builder = ELFBuilder(file_type=ET_EXEC)
        builder.set_text_from_source(
            self._variant_source(package, variant), size=variant.text_size, seed=0,
        )
        strings = [template.replace("%s", variant.version) if "%s" in template else template
                   for template in package.strings]
        strings.append(f"{package.name} release {variant.version}")
        strings.extend(sorted(set(sonames)))
        builder.add_strings(strings)
        builder.add_global_functions(list(package.public_functions))
        builder.add_global_objects(list(package.public_objects))
        # Major feature revisions add a small number of new public symbols;
        # minor patches leave the public interface untouched (the property the
        # paper exploits when arguing symbol hashes are the most stable).
        for feature in range(variant.patch_level // 4):
            builder.add_symbol(f"{package.executable_stem}_feature_{feature}")
        builder.add_local_symbols([f"{package.executable_stem}_static_helper_{index}"
                                   for index in range(4)])
        for comment in comments_for(list(variant.compilers)):
            builder.add_comment(comment)
        builder.add_needed_many(sorted(set(sonames)))
        image = builder.build()
        self._variant_images[cache_key] = image
        return image

    @staticmethod
    def _variant_source(package: PackageSpec, variant: VariantSpec) -> str:
        """Synthetic 'source code' whose patch level drives binary similarity."""
        lines = [
            f"{package.name} translation unit {index}: routine {package.executable_stem}_{index % 9}"
            for index in range(package.source_lines)
        ]
        for patch in range(variant.patch_level):
            position = (patch * 11 + 5) % len(lines)
            lines[position] = (
                f"{package.name} translation unit {position}: patched revision {patch} "
                f"({variant.version})"
            )
        return "\n".join(lines)
