"""Python interpreters, importable packages and their native extensions.

Python is a special case for SIREN (Section 4.4): the process-level view only
sees the interpreter executable, so the collector additionally records the
memory-mapped files of the interpreter and the post-processing step extracts
the imported packages from the mapped native-extension modules, plus the fuzzy
hash and metadata of the input script.

This module defines the interpreters observed in the paper's Table 8
(python3.6, python3.10, python3.11 -- all installed under system directories)
and the package vocabulary of Figure 3, each package mapped to the native
extension file an import would map into the process.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PythonInterpreterSpec:
    """One installed Python interpreter."""

    name: str                 #: executable name, e.g. ``python3.10``
    directory: str            #: installation directory (a system directory)
    version: str              #: full version string
    library_keys: tuple[str, ...] = ("libc", "libm", "pthread", "libdl", "python")
    text_size: int = 3072

    @property
    def path(self) -> str:
        """Full executable path."""
        return f"{self.directory}/{self.name}"

    @property
    def short_version(self) -> str:
        """``3.10``-style version used in library paths."""
        return ".".join(self.version.split(".")[:2])

    @property
    def lib_dynload(self) -> str:
        """Directory holding the stdlib native extension modules."""
        return f"/usr/lib64/python{self.short_version}/lib-dynload"

    @property
    def site_packages(self) -> str:
        """Directory holding third-party packages."""
        return f"/usr/lib64/python{self.short_version}/site-packages"


#: The three interpreters of Table 8.
PYTHON_INTERPRETERS: tuple[PythonInterpreterSpec, ...] = (
    PythonInterpreterSpec(name="python3.6", directory="/usr/bin", version="3.6.15"),
    PythonInterpreterSpec(name="python3.10", directory="/usr/bin", version="3.10.13"),
    PythonInterpreterSpec(name="python3.11", directory="/opt/python/3.11.5/bin",
                          version="3.11.5"),
)

PYTHON_INTERPRETERS_BY_NAME: dict[str, PythonInterpreterSpec] = {
    spec.name: spec for spec in PYTHON_INTERPRETERS
}


@dataclass(frozen=True)
class PythonPackageSpec:
    """One importable package with a native extension module."""

    name: str                 #: canonical package name as reported in Figure 3
    kind: str                 #: ``stdlib`` or ``site``
    extension_stem: str       #: file stem of the native module (before .cpython-XY.so)
    subdir: str = ""          #: package subdirectory under site-packages

    def extension_path(self, interpreter: PythonInterpreterSpec) -> str:
        """Path of the native extension as mapped into the given interpreter."""
        tag = interpreter.short_version.replace(".", "")
        filename = f"{self.extension_stem}.cpython-{tag}-x86_64-linux-gnu.so"
        if self.kind == "stdlib":
            return f"{interpreter.lib_dynload}/{filename}"
        base = f"{interpreter.site_packages}/{self.name}"
        return f"{base}/{self.subdir}/{filename}" if self.subdir else f"{base}/{filename}"


def _stdlib(name: str, stem: str | None = None) -> PythonPackageSpec:
    return PythonPackageSpec(name=name, kind="stdlib", extension_stem=stem or f"_{name}")


def _site(name: str, stem: str, subdir: str = "") -> PythonPackageSpec:
    return PythonPackageSpec(name=name, kind="site", extension_stem=stem, subdir=subdir)


#: The package vocabulary of Figure 3 (36 packages).
PYTHON_PACKAGES: tuple[PythonPackageSpec, ...] = (
    _stdlib("heapq"), _stdlib("struct"), _stdlib("math", "math"),
    _stdlib("posixsubprocess"), _stdlib("select", "select"), _stdlib("blake2"),
    _stdlib("hashlib"), _stdlib("bz2"), _stdlib("lzma"), _stdlib("zlib", "zlib"),
    _stdlib("fcntl", "fcntl"), _stdlib("array", "array"), _stdlib("binascii", "binascii"),
    _stdlib("bisect"), _stdlib("cmath", "cmath"), _stdlib("csv"), _stdlib("ctypes"),
    _stdlib("datetime"), _stdlib("decimal"), _stdlib("grp", "grp"), _stdlib("json"),
    _stdlib("mmap", "mmap"), _stdlib("multiprocessing"), _stdlib("opcode"),
    _stdlib("pickle"), _stdlib("queue"), _stdlib("random"), _stdlib("sha512"),
    _stdlib("socket", "_socket"), _stdlib("unicodedata", "unicodedata"),
    _stdlib("zoneinfo"), _stdlib("sha3"),
    _site("mpi4py", "MPI"), _site("numpy", "_multiarray_umath", subdir="core"),
    _site("pandas", "algos", subdir="_libs"), _site("scipy", "_ufuncs", subdir="special"),
)

PYTHON_PACKAGES_BY_NAME: dict[str, PythonPackageSpec] = {
    spec.name: spec for spec in PYTHON_PACKAGES
}

#: Packages imported by essentially every script (Figure 3's "basic components").
COMMON_PACKAGES: tuple[str, ...] = (
    "heapq", "struct", "math", "posixsubprocess", "select", "blake2", "hashlib",
)

#: More specialised packages, imported only by a subset of scripts.
SPECIALISED_PACKAGES: tuple[str, ...] = tuple(
    spec.name for spec in PYTHON_PACKAGES if spec.name not in COMMON_PACKAGES
)


def extension_paths(interpreter_name: str, packages: list[str]) -> list[str]:
    """Mapped-file paths for importing ``packages`` under ``interpreter_name``."""
    interpreter = PYTHON_INTERPRETERS_BY_NAME[interpreter_name]
    paths: list[str] = []
    for package in packages:
        spec = PYTHON_PACKAGES_BY_NAME.get(package)
        if spec is not None:
            paths.append(spec.extension_path(interpreter))
    return paths
