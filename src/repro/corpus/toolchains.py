"""Compiler toolchains and their ``.comment`` identification strings.

Compilers record a producer string in the ``.comment`` section of every
object file they emit; a linked executable therefore carries one entry per
distinct toolchain that contributed objects.  The paper's Table 6 and Figure 4
group these strings into *family [provenance]* labels such as ``GCC [SUSE]``
or ``clang [Cray]``.  This module defines the toolchains used by the synthetic
corpus and the mapping from raw comment strings back to those labels.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Toolchain:
    """One compiler toolchain."""

    label: str            #: analysis label, e.g. ``"GCC [SUSE]"``
    family: str            #: compiler family (GCC, clang, LLD, rustc)
    provenance: str        #: distribution/vendor, e.g. ``"SUSE"``
    comment: str           #: the exact ``.comment`` entry this toolchain writes
    version: str


#: The eight toolchains observed in the paper's deployment (Table 6 / Figure 4).
TOOLCHAINS: dict[str, Toolchain] = {
    "GCC [SUSE]": Toolchain(
        label="GCC [SUSE]", family="GCC", provenance="SUSE",
        comment="GCC: (SUSE Linux) 12.3.0", version="12.3.0",
    ),
    "GCC [Red Hat]": Toolchain(
        label="GCC [Red Hat]", family="GCC", provenance="Red Hat",
        comment="GCC: (GNU) 8.5.0 20210514 (Red Hat 8.5.0-18)", version="8.5.0",
    ),
    "GCC [conda]": Toolchain(
        label="GCC [conda]", family="GCC", provenance="conda",
        comment="GCC: (conda-forge gcc 12.3.0-3) 12.3.0", version="12.3.0",
    ),
    "GCC [HPE]": Toolchain(
        label="GCC [HPE]", family="GCC", provenance="HPE",
        comment="GCC: (HPE CPE) 12.2.0", version="12.2.0",
    ),
    "clang [Cray]": Toolchain(
        label="clang [Cray]", family="clang", provenance="Cray",
        comment="clang version 17.0.1 (Cray PE 24.03)", version="17.0.1",
    ),
    "clang [AMD]": Toolchain(
        label="clang [AMD]", family="clang", provenance="AMD",
        comment="AMD clang version 17.0.0 (roc-6.0.3 24012)", version="17.0.0",
    ),
    "LLD [AMD]": Toolchain(
        label="LLD [AMD]", family="LLD", provenance="AMD",
        comment="Linker: AMD LLD 17.0.0 (roc-6.0.3)", version="17.0.0",
    ),
    "rustc": Toolchain(
        label="rustc", family="rustc", provenance="",
        comment="rustc version 1.75.0 (82e1608df 2023-12-21)", version="1.75.0",
    ),
}

#: Ordered list of labels, as displayed on the x-axis of Figure 4.
TOOLCHAIN_ORDER: tuple[str, ...] = (
    "GCC [SUSE]", "LLD [AMD]", "clang [Cray]", "clang [AMD]",
    "GCC [Red Hat]", "GCC [conda]", "GCC [HPE]", "rustc",
)


def comments_for(labels: list[str]) -> list[str]:
    """The ``.comment`` entries an executable built with these toolchains carries."""
    return [TOOLCHAINS[label].comment for label in labels]


def provenance_label(comment: str) -> str:
    """Map a raw ``.comment`` entry back to its ``family [provenance]`` label.

    Unknown producers are grouped under their leading token so that novel
    toolchains still show up in reports (the paper highlights exactly this
    ability to reveal "the emergence of novel toolchains").
    """
    for toolchain in TOOLCHAINS.values():
        if comment == toolchain.comment:
            return toolchain.label
    lowered = comment.lower()
    if lowered.startswith("gcc"):
        return _labelled("GCC", comment)
    if "clang" in lowered:
        vendor = "AMD" if "amd" in lowered else ("Cray" if "cray" in lowered else "")
        return f"clang [{vendor}]" if vendor else "clang"
    if "lld" in lowered:
        return "LLD [AMD]" if "amd" in lowered else "LLD"
    if lowered.startswith("rustc"):
        return "rustc"
    return comment.split()[0] if comment.split() else "unknown"


def _labelled(family: str, comment: str) -> str:
    lowered = comment.lower()
    for vendor in ("SUSE", "Red Hat", "conda", "HPE", "AMD", "Cray"):
        if vendor.lower() in lowered:
            return f"{family} [{vendor}]"
    return family


def compiler_labels(comments: list[str]) -> list[str]:
    """Distinct toolchain labels for a list of comment entries, in first-seen order."""
    seen: dict[str, None] = {}
    for comment in comments:
        seen.setdefault(provenance_label(comment), None)
    return list(seen)
