"""System-directory executables.

Table 3 of the paper lists the most frequently used executables from system
directories (``/usr/bin/srun``, ``/usr/bin/bash``, ``/usr/bin/lua5.3`` ...)
out of 112 distinct system executables.  This module defines a representative
set of those tools: each is a small dynamically linked ELF executable whose
``DT_NEEDED`` list is chosen so the loaded-object analysis behaves like the
real thing (``bash`` pulls ``libtinfo``; ``srun`` pulls the Slurm/munge
libraries; ``grep`` pulls ``libpcre``; and so on).

The paper's Table 1 policy means SIREN records only file metadata and loaded
libraries for these executables -- no hashing -- so their content only needs to
be structurally valid, not large.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SystemToolSpec:
    """One system-directory executable."""

    name: str
    directory: str
    library_keys: tuple[str, ...]
    strings: tuple[str, ...] = ()
    text_size: int = 1536
    static: bool = False      #: statically linked tools are invisible to SIREN


def _tool(name: str, keys: tuple[str, ...], directory: str = "/usr/bin",
          strings: tuple[str, ...] = (), static: bool = False) -> SystemToolSpec:
    return SystemToolSpec(name=name, directory=directory, library_keys=keys,
                          strings=strings, static=static)


_COREUTILS = ("libc", "libacl", "libcap")

#: The system tools installed by the corpus builder.
SYSTEM_TOOLS: tuple[SystemToolSpec, ...] = (
    _tool("srun", ("libc", "libslurm", "libmunge", "pthread"),
          strings=("srun: error: %s", "Usage: srun [OPTIONS(0)...]")),
    _tool("sbatch", ("libc", "libslurm", "libmunge")),
    _tool("squeue", ("libc", "libslurm", "libmunge")),
    _tool("sacct", ("libc", "libslurm", "libmunge")),
    _tool("bash", ("libc", "libtinfo-default", "libdl"),
          strings=("GNU bash, version 4.4.23(1)-release",)),
    _tool("sh", ("libc", "libtinfo-default", "libdl")),
    _tool("lua5.3", ("libc", "liblua", "libm", "libdl"),
          strings=("Lua 5.3.6  Copyright (C) 1994-2020 Lua.org",)),
    _tool("rm", _COREUTILS),
    _tool("cat", _COREUTILS),
    _tool("uname", _COREUTILS),
    _tool("ls", ("libc", "libacl", "libcap", "libselinux", "libpcre")),
    _tool("mkdir", _COREUTILS),
    _tool("grep", ("libc", "libpcre")),
    _tool("cp", ("libc", "libacl", "libselinux")),
    _tool("mv", ("libc", "libacl", "libselinux")),
    _tool("sed", ("libc", "libacl")),
    _tool("gawk", ("libc", "libm", "libreadline")),
    _tool("tar", ("libc", "libacl", "libselinux")),
    _tool("gzip", ("libc",)),
    _tool("date", _COREUTILS),
    _tool("hostname", ("libc",)),
    _tool("sleep", ("libc",)),
    _tool("echo", ("libc",)),
    _tool("env", ("libc",)),
    _tool("id", ("libc", "libselinux")),
    _tool("chmod", _COREUTILS),
    _tool("tail", _COREUTILS),
    _tool("head", _COREUTILS),
    _tool("sort", ("libc", "pthread")),
    _tool("find", ("libc", "libselinux")),
    _tool("wc", _COREUTILS),
    _tool("touch", _COREUTILS),
    _tool("dirname", ("libc",)),
    _tool("basename", ("libc",)),
    _tool("readlink", ("libc",)),
    _tool("ln", ("libc", "libacl", "libselinux")),
    _tool("df", ("libc",)),
    _tool("du", ("libc",)),
    _tool("tee", ("libc",)),
    _tool("cut", ("libc",)),
    _tool("tr", ("libc",)),
    _tool("xargs", ("libc",)),
    _tool("ssh", ("libc", "libcrypto", "libz", "libselinux"), strings=("OpenSSH_8.4p1",)),
    _tool("scp", ("libc", "libcrypto", "libz")),
    _tool("rsync", ("libc", "libz", "libacl"), strings=("rsync  version 3.2.3",)),
    _tool("curl", ("libc", "libcrypto", "libz", "pthread")),
    _tool("wget", ("libc", "libcrypto", "libz", "libpcre")),
    _tool("time", ("libc",), directory="/usr/bin"),
    _tool("numactl", ("libc", "numa")),
    _tool("ldd", ("libc",)),
    _tool("file", ("libc", "libz")),
    _tool("diff", ("libc",)),
    _tool("md5sum", ("libc",)),
    _tool("sha256sum", ("libc",)),
    _tool("seq", ("libc",)),
    _tool("true", ("libc",), directory="/usr/bin"),
    _tool("false", ("libc",)),
    _tool("printf", ("libc",)),
    _tool("stat", ("libc", "libselinux")),
    _tool("busybox", ("libc",), directory="/usr/bin", static=True),
)

SYSTEM_TOOLS_BY_NAME: dict[str, SystemToolSpec] = {tool.name: tool for tool in SYSTEM_TOOLS}


def tool_path(name: str) -> str:
    """Full installation path of a system tool."""
    spec = SYSTEM_TOOLS_BY_NAME[name]
    return f"{spec.directory}/{spec.name}"
