"""Shared-library catalog and the substring-derived library tags.

Figure 2 and Figure 5 of the paper analyse "derived and filtered" shared
objects: each loaded library path is scanned for a fixed, ordered list of
informative substrings (``libsci``, ``pthread``, ``pmi`` ... ``siren``) and
the matching substrings, joined with ``-`` in catalog order, become the
library's tag (``libsci-cray``, ``rocfft-rocm-fft``, ``hdf5-fortran-parallel-
cray`` ...).  Libraries whose paths match no substring are dropped as
uninformative.

This module defines

* :data:`LIBRARY_SUBSTRINGS` -- the exact substring list from Section 4.3,
* :func:`derive_library_tag` / :func:`derive_tags` -- the tag derivation,
* :data:`LIBRARY_CATALOG` -- every shared-library *instance* installed on the
  simulated system (soname, directory, dependencies), with install paths
  chosen so that the derived tags reproduce the paper's tag vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Substring list from the paper (Section 4.3), in presentation order.
LIBRARY_SUBSTRINGS: tuple[str, ...] = (
    "libsci", "pthread", "pmi", "netcdf", "hdf5", "fortran", "parallel", "python",
    "fabric", "numa", "boost", "openacc", "amdgpu", "cuda", "drm", "rocsolver",
    "rocsparse", "rocfft", "MIOpen", "rocm", "gromacs", "blas", "fft", "torch",
    "quadmath", "craymath", "cray", "tykky", "climatedt", "amber", "spack", "yaml",
    "java", "siren",
)


def derive_library_tag(path: str) -> str | None:
    """Derive the filtered tag for one library path (``None`` if uninformative).

    Matching is case-sensitive, exactly as the paper's substring list implies
    (``MIOpen`` keeps its mixed case); matched substrings are joined with
    ``-`` in the order they appear in :data:`LIBRARY_SUBSTRINGS`.
    """
    matched = [token for token in LIBRARY_SUBSTRINGS if token in path]
    if not matched:
        return None
    return "-".join(matched)


def derive_tags(paths: list[str]) -> list[str]:
    """Distinct derived tags for a list of library paths, in first-seen order."""
    seen: dict[str, None] = {}
    for path in paths:
        tag = derive_library_tag(path)
        if tag is not None:
            seen.setdefault(tag, None)
    return list(seen)


@dataclass(frozen=True)
class LibrarySpec:
    """One installed shared-library instance."""

    key: str                     #: catalog key used by packages and tests
    soname: str                  #: ``DT_SONAME`` / file name
    directory: str               #: install directory
    needed: tuple[str, ...] = ()  #: sonames this library itself depends on
    size: int = 2048             #: approximate ``.text`` payload size
    in_default_path: bool = True  #: whether ld.so finds it without modules

    @property
    def path(self) -> str:
        """Full installation path."""
        return f"{self.directory}/{self.soname}"


def _lib(key: str, soname: str, directory: str, needed: tuple[str, ...] = (),
         size: int = 2048, in_default_path: bool = True) -> LibrarySpec:
    return LibrarySpec(key=key, soname=soname, directory=directory, needed=needed,
                       size=size, in_default_path=in_default_path)


#: Every shared library the corpus installs.  Keys of tagged libraries equal
#: the derived tag the paper reports for them (checked by tests).
LIBRARY_CATALOG: tuple[LibrarySpec, ...] = (
    # -- untagged base system libraries (no informative substring) -------- #
    _lib("libc", "libc.so.6", "/lib64"),
    _lib("libm", "libm.so.6", "/lib64"),
    _lib("libdl", "libdl.so.2", "/lib64"),
    _lib("librt", "librt.so.1", "/lib64"),
    _lib("libstdc++", "libstdc++.so.6", "/lib64", needed=("libm.so.6", "libgcc_s.so.1")),
    _lib("libgcc_s", "libgcc_s.so.1", "/lib64"),
    _lib("ld-linux", "ld-linux-x86-64.so.2", "/lib64"),
    _lib("libz", "libz.so.1", "/lib64"),
    _lib("libtinfo-default", "libtinfo.so.6", "/lib64"),
    _lib("libreadline", "libreadline.so.8", "/lib64", needed=("libtinfo.so.6",)),
    _lib("liblua", "liblua5.3.so.5", "/usr/lib64", needed=("libm.so.6",)),
    _lib("libselinux", "libselinux.so.1", "/lib64"),
    _lib("libacl", "libacl.so.1", "/lib64"),
    _lib("libpcre", "libpcre2-8.so.0", "/lib64"),
    _lib("libcap", "libcap.so.2", "/lib64"),
    _lib("libcrypto", "libcrypto.so.3", "/usr/lib64"),
    _lib("libexpat", "libexpat.so.1", "/usr/lib64"),
    _lib("libffi", "libffi.so.7", "/usr/lib64"),
    _lib("libmunge", "libmunge.so.2", "/usr/lib64"),
    _lib("libslurm", "libslurm_full.so", "/usr/lib64/slurm", needed=("libmunge.so.2",)),

    # -- alternative libtinfo installs producing the Table 4 bash variants - #
    _lib("libtinfo-spack", "libtinfo.so.6",
         "/appl/spack/v0.21/views/ncurses/lib", in_default_path=False),
    _lib("libtinfo-sw", "libtinfo.so.6",
         "/project/project_465000100/SW/ncurses/lib",
         needed=("libm.so.6",), in_default_path=False),

    # -- generic tagged system libraries ---------------------------------- #
    _lib("pthread", "libpthread.so.0", "/lib64"),
    _lib("numa", "libnuma.so.1", "/usr/lib64"),
    _lib("drm", "libdrm.so.2", "/usr/lib64"),
    _lib("amdgpu-drm", "libdrm_amdgpu.so.1", "/usr/lib64", needed=("libdrm.so.2",)),
    _lib("fortran", "libgfortran.so.5", "/usr/lib64", needed=("libm.so.6",)),
    _lib("python", "libpython3.so", "/usr/lib64"),
    _lib("yaml", "libyaml-0.so.2", "/usr/lib64"),

    # -- Cray programming environment -------------------------------------- #
    _lib("cray", "libmpi_cray.so.12", "/opt/cray/pe/mpich/8.1/lib",
         needed=("libfabric.so.1", "libpmi.so.0", "libpthread.so.0")),
    _lib("libsci-cray", "libsci_cray.so.6", "/opt/cray/pe/libsci/23.12/lib",
         needed=("libpthread.so.0",)),
    _lib("quadmath-cray", "libquadmath.so.0", "/opt/cray/pe/gcc-native/12/lib64"),
    _lib("craymath-cray", "libcraymath.so.1", "/opt/cray/pe/cce/17.0/lib"),
    _lib("fabric-cray", "libfabric.so.1", "/opt/cray/libfabric/1.15/lib64"),
    _lib("pmi-cray", "libpmi.so.0", "/opt/cray/pe/pmi/6.1/lib"),
    _lib("fft-cray", "libfftw3.so.3", "/opt/cray/pe/fftw/3.3/lib"),
    _lib("netcdf-cray", "libnetcdf.so.19", "/opt/cray/pe/netcdf/4.9/lib",
         needed=("libhdf5.so.310",)),
    _lib("netcdf-parallel-cray", "libnetcdf_parallel.so.19",
         "/opt/cray/pe/netcdf-parallel/4.9/lib", needed=("libhdf5_parallel.so.310",)),
    _lib("hdf5-cray", "libhdf5.so.310", "/opt/cray/pe/hdf5/1.12/lib"),
    _lib("hdf5-parallel-cray", "libhdf5_parallel.so.310", "/opt/cray/pe/hdf5-parallel/1.12/lib"),
    _lib("hdf5-fortran-parallel-cray", "libhdf5_fortran_parallel.so.310",
         "/opt/cray/pe/hdf5-parallel/1.12/lib", needed=("libgfortran.so.5",)),
    _lib("openacc-cray", "libopenacc.so.1", "/opt/cray/pe/cce/17.0/lib"),
    _lib("amdgpu-cray", "libamdgpu_target.so.1", "/opt/cray/pe/cce/17.0/lib"),

    # -- ROCm stack --------------------------------------------------------- #
    _lib("rocm", "libamdhip64.so.6", "/opt/rocm-6.0.3/lib"),
    _lib("rocm-blas", "librocblas.so.4", "/opt/rocm-6.0.3/lib",
         needed=("libamdhip64.so.6",)),
    _lib("rocsolver-rocm", "librocsolver.so.0", "/opt/rocm-6.0.3/lib",
         needed=("librocblas.so.4",)),
    _lib("rocsparse-rocm", "librocsparse.so.1", "/opt/rocm-6.0.3/lib",
         needed=("libamdhip64.so.6",)),
    _lib("rocm-fft", "libhipfft.so.0", "/opt/rocm-6.0.3/lib",
         needed=("librocfft.so.0",)),
    _lib("rocfft-rocm-fft", "librocfft.so.0", "/opt/rocm-6.0.3/lib",
         needed=("libamdhip64.so.6",)),
    _lib("MIOpen-rocm", "libMIOpen.so.1", "/opt/rocm-6.0.3/lib",
         needed=("libamdhip64.so.6",)),

    # -- application / stack specific libraries ----------------------------- #
    _lib("gromacs", "libgromacs_mpi.so.8", "/project/project_465000200/gromacs/2024.1/lib",
         needed=("libpthread.so.0",), in_default_path=False),
    _lib("boost", "libboost_serialization.so.1.82", "/appl/lumi/boost/1.82/lib",
         in_default_path=False),
    _lib("climatedt", "libclimatedt.so.2", "/project/project_465000300/climatedt/lib",
         in_default_path=False),
    _lib("climatedt-yaml", "libclimatedt_yaml.so.2", "/project/project_465000300/climatedt/lib",
         needed=("libyaml-0.so.2",), in_default_path=False),
    _lib("amber", "libamber_common.so.22", "/project/project_465000400/amber22/lib",
         in_default_path=False),
    _lib("cuda-amber", "libcuda_stub.so.1", "/project/project_465000400/amber22/cuda/lib",
         in_default_path=False),
    _lib("rocm-torch", "libtorch_hip.so.2", "/appl/pytorch-rocm/2.2/lib",
         needed=("libamdhip64.so.6",), in_default_path=False),
    _lib("numa-rocm-torch", "libnuma.so.1", "/appl/pytorch-rocm/2.2/torch/numa/lib",
         in_default_path=False),
    _lib("torch-tykky", "libtorch_cpu.so.2", "/appl/local/tykky/pytorch-env/torch/lib",
         in_default_path=False),
    _lib("numa-torch-tykky", "libnuma.so.1", "/appl/local/tykky/pytorch-env/torch/numa/lib",
         in_default_path=False),

    # -- spack installations ------------------------------------------------- #
    _lib("spack", "libzstd.so.1", "/appl/spack/v0.21/opt/zstd-1.5.5/lib",
         in_default_path=False),
    _lib("blas-spack", "libopenblas.so.0", "/appl/spack/v0.21/opt/openblas-0.3.24/lib",
         needed=("libpthread.so.0",), in_default_path=False),
    _lib("rocsolver-spack", "librocsolver.so.0", "/appl/spack/v0.21/opt/rocsolver-5.7/lib",
         in_default_path=False),
    _lib("rocsparse-spack", "librocsparse.so.1", "/appl/spack/v0.21/opt/rocsparse-5.7/lib",
         in_default_path=False),
    _lib("drm-spack", "libdrm.so.2", "/appl/spack/v0.21/opt/libdrm-2.4/lib",
         in_default_path=False),
    _lib("amdgpu-drm-spack", "libdrm_amdgpu.so.1", "/appl/spack/v0.21/opt/libdrm-2.4/lib",
         needed=("libdrm.so.2",), in_default_path=False),
    _lib("numa-spack", "libnuma.so.1", "/appl/spack/v0.21/opt/numactl-2.0.16/lib",
         in_default_path=False),

    # -- the SIREN collection library itself --------------------------------- #
    _lib("siren", "siren.so", "/appl/local/siren/lib", in_default_path=False),
)

#: Index by catalog key.
LIBRARY_BY_KEY: dict[str, LibrarySpec] = {spec.key: spec for spec in LIBRARY_CATALOG}


def library_path(key: str) -> str:
    """Full install path of the library with the given catalog key."""
    return LIBRARY_BY_KEY[key].path


def sonames_for_keys(keys: list[str]) -> list[str]:
    """Sonames (DT_NEEDED entries) for a list of catalog keys, preserving order."""
    return [LIBRARY_BY_KEY[key].soname for key in keys]
