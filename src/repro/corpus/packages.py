"""Scientific software packages of the synthetic corpus.

Each :class:`PackageSpec` describes one software product the way the paper's
user community uses it (Table 5 / Figures 4-5): which compilers build it,
which shared libraries it links, what its public symbols and embedded strings
look like, and which concrete *variants* (versions, compiler mixes, small
source patches, install paths) exist on the system.

Variant counts follow the relative structure of Table 5 (GROMACS: a single
executable shared by two users; icon: many distinct executables of a single
user; LAMMPS/miniconda: a handful of variants), scaled down from the paper's
absolute numbers -- the similarity analyses only need several variants per
package, not 175.

The special ``UNKNOWN`` case of Table 7 is realised exactly as the paper
describes it: a byte-identical copy of one ICON executable installed under a
nondescript path/file name (``a.out``), plus progressively more different ICON
variants, so the similarity search recovers the identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class VariantSpec:
    """One concrete executable variant of a package."""

    variant_id: str
    version: str
    compilers: tuple[str, ...]
    extra_library_keys: tuple[str, ...] = ()
    drop_library_keys: tuple[str, ...] = ()
    patch_level: int = 0          #: number of synthetic source patches applied
    filename: str | None = None   #: override the executable file name
    subdir: str = ""              #: extra directory component under the install root
    text_size: int = 12288
    copy_of: str | None = None    #: variant_id this one is a byte-identical copy of

    def library_keys(self, base: tuple[str, ...]) -> tuple[str, ...]:
        """Effective library keys: base minus drops plus extras (order kept)."""
        kept = [key for key in base if key not in self.drop_library_keys]
        kept.extend(key for key in self.extra_library_keys if key not in kept)
        return tuple(kept)


@dataclass(frozen=True)
class PackageSpec:
    """One software package (a "software label" in the paper's terminology)."""

    name: str                       #: canonical software label (LAMMPS, GROMACS, ...)
    domain: str                     #: scientific domain, for documentation/reports
    install_root: str               #: directory template; ``{user}`` is substituted
    executable_stem: str            #: base file name of the executable
    base_library_keys: tuple[str, ...]
    public_functions: tuple[str, ...]
    public_objects: tuple[str, ...] = ()
    strings: tuple[str, ...] = ()
    source_lines: int = 64
    variants: tuple[VariantSpec, ...] = field(default_factory=tuple)

    def variant(self, variant_id: str) -> VariantSpec:
        """Look up a variant by id."""
        for candidate in self.variants:
            if candidate.variant_id == variant_id:
                return candidate
        raise KeyError(f"{self.name} has no variant {variant_id!r}")


def _functions(stem: str, names: tuple[str, ...], generated: int = 24) -> tuple[str, ...]:
    """Explicit public functions plus a tail of generated kernel symbols."""
    return names + tuple(f"{stem}_kernel_{index:02d}" for index in range(generated))


# --------------------------------------------------------------------------- #
# package definitions
# --------------------------------------------------------------------------- #
_ROCM_STACK = ("rocm", "rocm-blas", "rocsolver-rocm", "rocsparse-rocm",
               "rocm-fft", "rocfft-rocm-fft", "MIOpen-rocm")
_CRAY_BASE = ("cray", "libsci-cray", "quadmath-cray", "fabric-cray", "pmi-cray",
              "pthread", "libc", "libm")

LAMMPS = PackageSpec(
    name="LAMMPS",
    domain="molecular dynamics",
    install_root="/project/{project}/{user}/lammps",
    executable_stem="lmp",
    base_library_keys=_CRAY_BASE + _ROCM_STACK + ("fft-cray", "numa", "drm", "amdgpu-drm"),
    public_functions=_functions("lammps", (
        "lammps_open", "lammps_close", "lammps_command", "lammps_extract_atom",
        "pair_lj_cut_compute", "fix_nve_integrate", "neighbor_build", "verlet_run",
    )),
    public_objects=("lammps_version_string", "lmp_universe"),
    strings=(
        "LAMMPS (%s)", "Large-scale Atomic/Molecular Massively Parallel Simulator",
        "usage: lmp -in <input> [-log <log>]", "Total wall time: %d:%02d:%02d",
    ),
    variants=(
        VariantSpec("gpu-2023", "23Aug2023", ("GCC [SUSE]", "LLD [AMD]"), patch_level=0),
        VariantSpec("gpu-2024", "27Jun2024", ("GCC [SUSE]", "LLD [AMD]"), patch_level=2),
        VariantSpec("kokkos", "27Jun2024", ("LLD [AMD]",), patch_level=4,
                    extra_library_keys=("rocm-torch", "numa-rocm-torch"),
                    drop_library_keys=("numa",)),
        VariantSpec("ml-torch", "27Jun2024", ("GCC [SUSE]", "LLD [AMD]"), patch_level=6,
                    extra_library_keys=("torch-tykky", "numa-torch-tykky"),
                    drop_library_keys=("numa",)),
        VariantSpec("cpu-only", "23Aug2023", ("GCC [SUSE]",), patch_level=8,
                    drop_library_keys=_ROCM_STACK + ("drm", "amdgpu-drm")),
    ),
)

GROMACS = PackageSpec(
    name="GROMACS",
    domain="molecular dynamics",
    install_root="/appl/local/csc/soft/bio/gromacs/2024.1",
    executable_stem="gmx_mpi",
    base_library_keys=_CRAY_BASE + ("rocm", "numa", "drm", "amdgpu-drm", "fortran",
                                    "gromacs", "boost"),
    public_functions=_functions("gmx", (
        "gmx_mdrun", "gmx_grompp", "gmx_energy", "gmx_trjconv",
        "nbnxn_kernel_simd", "pme_spread_and_solve", "do_force_lowlevel",
    )),
    public_objects=("gmx_version", "gmx_build_configuration"),
    strings=(
        "GROMACS - gmx mdrun, 2024.1", ":-) GROMACS - gmx, 2024.1 (-:",
        "Copyright (c) 2001-2024, the GROMACS development team",
    ),
    variants=(
        # A single shared installation used by several users (Table 5: one FILE_H).
        VariantSpec("shared-2024", "2024.1", ("LLD [AMD]",), patch_level=0),
    ),
)

MINICONDA = PackageSpec(
    name="miniconda",
    domain="python distribution",
    install_root="/project/{project}/{user}/miniconda3",
    executable_stem="conda-exec",
    base_library_keys=("pthread", "libc", "libz"),
    public_functions=_functions("conda", (
        "conda_activate", "conda_solve", "repodata_fetch", "package_cache_query",
    ), generated=12),
    strings=("conda 24.1.2", "miniconda3 installer payload", "https://repo.anaconda.com"),
    variants=(
        VariantSpec("py310", "24.1.2", ("GCC [Red Hat]", "GCC [conda]"), patch_level=0,
                    filename="python3.10", subdir="bin"),
        VariantSpec("py311", "24.1.2", ("GCC [Red Hat]", "GCC [conda]"), patch_level=2,
                    filename="python3.11", subdir="bin"),
        VariantSpec("solver", "24.1.2", ("GCC [Red Hat]", "GCC [conda]", "rustc"),
                    patch_level=3, filename="conda-libmamba-solver", subdir="libexec"),
        VariantSpec("pip-tool", "24.1.2", ("GCC [Red Hat]", "GCC [conda]"), patch_level=5,
                    filename="pip-compiled", subdir="bin"),
        VariantSpec("py310-update", "24.3.0", ("GCC [Red Hat]", "GCC [conda]"),
                    patch_level=1, filename="python3.10-new", subdir="bin"),
    ),
)

JANKO = PackageSpec(
    name="janko",
    domain="lattice QCD",
    install_root="/project/{project}/{user}/janko",
    executable_stem="janko",
    base_library_keys=("cray", "libsci-cray", "quadmath-cray", "fabric-cray", "pmi-cray",
                       "pthread", "libc", "libm", "fortran", "spack", "blas-spack",
                       "numa-spack", "rocsolver-spack", "rocsparse-spack", "drm-spack",
                       "amdgpu-drm-spack"),
    public_functions=_functions("janko", (
        "janko_init", "janko_sweep", "dirac_operator_apply", "hmc_trajectory",
    ), generated=16),
    strings=("janko lattice suite v2.3", "plaquette = %0.8f"),
    variants=(
        VariantSpec("prod", "2.3", ("GCC [SUSE]", "GCC [HPE]"), patch_level=0),
        VariantSpec("devel", "2.4-dev", ("GCC [SUSE]", "GCC [HPE]"), patch_level=3),
    ),
)

ICON = PackageSpec(
    name="icon",
    domain="climate and weather simulation",
    install_root="/project/{project}/{user}/icon-model",
    executable_stem="icon",
    base_library_keys=("cray", "libsci-cray", "quadmath-cray", "fabric-cray", "pmi-cray",
                       "pthread", "libc", "libm", "fortran", "craymath-cray",
                       "netcdf-cray", "hdf5-cray", "climatedt", "climatedt-yaml",
                       "rocm", "numa", "drm", "amdgpu-drm", "amdgpu-cray", "openacc-cray"),
    public_functions=_functions("icon", (
        "icon_init_mpi", "icon_run_timeloop", "mo_atmo_nonhydrostatic_run",
        "mo_nh_stepping_integrate", "radiation_ecrad_interface", "ocean_model_step",
        "nudging_apply", "output_nml_write",
    ), generated=32),
    public_objects=("icon_version_tag", "icon_grid_descriptor"),
    strings=(
        "ICON atmosphere model", "Destination Earth Climate Digital Twin workflow",
        "read namelist file icon_master.namelist", "timer report: total integration",
    ),
    source_lines=96,
    variants=(
        VariantSpec("cray-r1", "2024.07", ("GCC [SUSE]", "clang [Cray]"), patch_level=0),
        VariantSpec("cray-r2", "2024.07", ("GCC [SUSE]", "clang [Cray]"), patch_level=1),
        VariantSpec("cray-r3", "2024.10", ("GCC [SUSE]", "clang [Cray]"), patch_level=3),
        VariantSpec("cray-r4", "2024.10", ("GCC [SUSE]", "clang [Cray]"), patch_level=5),
        VariantSpec("gpu-amd-r1", "2024.10", ("GCC [SUSE]", "clang [Cray]", "clang [AMD]"),
                    patch_level=2, drop_library_keys=("netcdf-cray", "hdf5-cray",
                                                      "climatedt-yaml")),
        VariantSpec("gpu-amd-r2", "2024.10", ("GCC [SUSE]", "clang [Cray]", "clang [AMD]"),
                    patch_level=4, drop_library_keys=("netcdf-cray", "hdf5-cray",
                                                      "climatedt-yaml")),
        VariantSpec("ocean-only", "2024.07", ("GCC [SUSE]", "clang [Cray]"), patch_level=7,
                    filename="icon_ocean"),
        VariantSpec("atmo-only", "2024.07", ("GCC [SUSE]", "clang [Cray]"), patch_level=9,
                    filename="icon_atmo"),
        VariantSpec("coupler", "2024.10", ("GCC [SUSE]", "clang [Cray]"), patch_level=11,
                    filename="icon_coupler"),
        VariantSpec("pre-proc", "2024.10", ("GCC [SUSE]", "clang [Cray]"), patch_level=13,
                    filename="icon_gridtools"),
        # The Table 7 UNKNOWN case: a byte-identical copy of cray-r1 placed at a
        # nondescript path with a nondescript name.  A subdir starting with "/"
        # overrides the install root entirely (see CorpusBuilder).
        VariantSpec("unknown-copy", "2024.07", ("GCC [SUSE]", "clang [Cray]"), patch_level=0,
                    filename="a.out", subdir="/scratch/{project}/{user}/run_tmp/exp_042",
                    copy_of="cray-r1"),
        # A second nondescript executable, lightly patched relative to the
        # known releases (its patch level sits between cray-r2 and cray-r3).
        VariantSpec("unknown-patched", "2024.07", ("GCC [SUSE]", "clang [Cray]"),
                    patch_level=2, filename="model.x",
                    subdir="/scratch/{project}/{user}/run_tmp/exp_043"),
    ),
)

AMBER = PackageSpec(
    name="amber",
    domain="biomolecular simulation",
    install_root="/project/{project}/{user}/amber22",
    executable_stem="pmemd.hip",
    base_library_keys=_CRAY_BASE + _ROCM_STACK + ("fft-cray", "numa", "drm", "amdgpu-drm",
                                                  "fortran", "netcdf-cray",
                                                  "netcdf-parallel-cray", "hdf5-parallel-cray",
                                                  "hdf5-fortran-parallel-cray", "amber",
                                                  "cuda-amber"),
    public_functions=_functions("amber", (
        "pmemd_run_md", "sander_energy_minimise", "gb_force_kernel", "pme_recip_force",
    ), generated=20),
    strings=("Amber 22 PMEMD implementation", "| Run on %s at %s"),
    variants=(
        VariantSpec("hip", "22.0", ("GCC [SUSE]", "clang [AMD]"), patch_level=0),
        VariantSpec("hip-patch3", "22.3", ("GCC [SUSE]", "clang [AMD]"), patch_level=2),
    ),
)

GZIP_USER = PackageSpec(
    name="gzip",
    domain="compression utility",
    install_root="/users/{user}/tools/gzip-1.13",
    executable_stem="gzip",
    base_library_keys=("libc",),
    public_functions=_functions("gzip", ("deflate_stream", "inflate_stream", "crc32_update"),
                                generated=6),
    strings=("gzip 1.13", "usage: gzip [-cdfhklLnNrtvV19] [file ...]"),
    variants=(
        VariantSpec("user-build", "1.13", ("LLD [AMD]",), patch_level=0, subdir="bin"),
    ),
)

ALEXANDRIA = PackageSpec(
    name="alexandria",
    domain="force-field development",
    install_root="/project/{project}/{user}/alexandria",
    executable_stem="alexandria",
    base_library_keys=("cray", "quadmath-cray", "fabric-cray", "pmi-cray", "pthread",
                       "libc", "libm", "fortran", "craymath-cray"),
    public_functions=_functions("alexandria", ("alexandria_tune_eem", "alexandria_min_complex"),
                                generated=10),
    strings=("Alexandria Chemistry Toolkit",),
    variants=(
        VariantSpec("v1", "1.0", ("GCC [SUSE]",), patch_level=0),
    ),
)

RADRAD = PackageSpec(
    name="RadRad",
    domain="radiative transfer",
    install_root="/project/{project}/{user}/RadRad",
    executable_stem="RadRad",
    base_library_keys=("cray", "libsci-cray", "quadmath-cray", "pthread", "libc", "libm",
                       "fortran", "craymath-cray", "rocm", "rocm-blas", "rocsolver-rocm",
                       "rocsparse-rocm", "numa", "drm", "amdgpu-drm", "amdgpu-cray",
                       "openacc-cray"),
    public_functions=_functions("radrad", ("radrad_solve_band", "radrad_setup_grid"),
                                generated=12),
    strings=("RadRad radiative transfer solver",),
    variants=(
        VariantSpec("cpu", "0.9", ("GCC [SUSE]", "clang [Cray]"), patch_level=0),
        VariantSpec("gpu", "0.9", ("GCC [SUSE]", "clang [Cray]"), patch_level=2),
    ),
)

#: All packages, in the presentation order of Table 5.
PACKAGES: tuple[PackageSpec, ...] = (
    LAMMPS, GROMACS, MINICONDA, JANKO, ICON, AMBER, GZIP_USER, ALEXANDRIA, RADRAD,
)

PACKAGES_BY_NAME: dict[str, PackageSpec] = {package.name: package for package in PACKAGES}
