"""Synthetic software corpus.

The paper's data comes from real software executed by 12 opt-in LUMI users:
system tools (``bash``, ``srun``, ``mkdir`` ...), scientific applications
(LAMMPS, GROMACS, ICON, Amber, ...), user-installed utilities, Python
interpreters and scripts.  None of that software is available here, so this
subpackage defines a synthetic corpus with the same *structure*:

* :mod:`repro.corpus.toolchains` -- compiler/toolchain definitions and the
  ``.comment`` identification strings they leave in binaries,
* :mod:`repro.corpus.libraries` -- a catalog of shared libraries (Cray PE,
  ROCm, HDF5/NetCDF, spack/tykky stacks, ...) with install paths chosen so
  the paper's substring-derived library tags come out identically,
* :mod:`repro.corpus.system_tools` -- the system-directory executables,
* :mod:`repro.corpus.packages` -- the scientific software packages with their
  per-variant compilers, libraries, public symbols and versions,
* :mod:`repro.corpus.python_env` -- Python interpreters, importable packages
  (with native extension modules that show up in memory maps) and scripts,
* :mod:`repro.corpus.builder` -- the :class:`CorpusBuilder` that materialises
  all of the above as ELF images and scripts inside a virtual filesystem and
  returns a manifest the workload generator consumes.
"""

from repro.corpus.builder import CorpusBuilder, CorpusManifest, InstalledExecutable
from repro.corpus.libraries import LIBRARY_CATALOG, LibrarySpec, derive_library_tag
from repro.corpus.packages import PACKAGES, PackageSpec, VariantSpec
from repro.corpus.python_env import PYTHON_INTERPRETERS, PYTHON_PACKAGES, PythonInterpreterSpec
from repro.corpus.system_tools import SYSTEM_TOOLS, SystemToolSpec
from repro.corpus.toolchains import TOOLCHAINS, Toolchain, provenance_label

__all__ = [
    "CorpusBuilder",
    "CorpusManifest",
    "InstalledExecutable",
    "LIBRARY_CATALOG",
    "LibrarySpec",
    "derive_library_tag",
    "PACKAGES",
    "PackageSpec",
    "VariantSpec",
    "PYTHON_INTERPRETERS",
    "PYTHON_PACKAGES",
    "PythonInterpreterSpec",
    "SYSTEM_TOOLS",
    "SystemToolSpec",
    "TOOLCHAINS",
    "Toolchain",
    "provenance_label",
]
