"""Construct synthetic ELF64 executables and shared objects.

The corpus builder (``repro.corpus``) uses :class:`ELFBuilder` to materialise
each software package variant as an ELF image with:

* a ``.text`` section whose bytes are derived deterministically from the
  package's "source code" description (so recompilations with small source
  changes change a small fraction of the bytes -- the property fuzzy hashing
  exploits),
* a ``.rodata`` section containing the package's printable strings (version
  banners, format strings, embedded paths),
* a ``.comment`` section with compiler identification strings, exactly the way
  GCC/Clang record themselves (one NUL-separated entry per producer),
* ``.dynstr`` + ``.dynamic`` with one ``DT_NEEDED`` entry per required shared
  object,
* ``.dynsym``/``.symtab`` with global function/object symbols (the "public
  interface" SIREN hashes as the symbol fuzzy hash),
* the usual string tables and a section-header string table.

The produced image is a real, parseable ELF file (readable by
:class:`repro.elf.reader.ELFFile` or external tools), but the ``.text``
payload is pseudo-random rather than actual machine code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.elf.constants import (
    DT_NEEDED,
    DT_NULL,
    DT_SONAME,
    DT_STRTAB,
    EHDR_SIZE,
    EM_X86_64,
    ET_DYN,
    ET_EXEC,
    PHDR_SIZE,
    PT_LOAD,
    SHDR_SIZE,
    SHF_ALLOC,
    SHF_EXECINSTR,
    SHF_STRINGS,
    SHN_UNDEF,
    SHT_DYNAMIC,
    SHT_DYNSYM,
    SHT_NULL,
    SHT_PROGBITS,
    SHT_STRTAB,
    SHT_SYMTAB,
    STB_GLOBAL,
    STB_LOCAL,
    STT_FUNC,
    STT_OBJECT,
)
from repro.elf.structures import (
    DynamicEntry,
    ELFHeader,
    ProgramHeader,
    SectionHeader,
    StringTable,
    Symbol,
)
from repro.hashing.xxhash import xxh64
from repro.util.errors import ELFError


@dataclass
class _PendingSection:
    name: str
    sh_type: int
    data: bytes
    flags: int = 0
    link: int = 0
    info: int = 0
    entsize: int = 0
    addralign: int = 8


@dataclass
class ELFBuilder:
    """Incrementally build an ELF64 little-endian image.

    Parameters
    ----------
    file_type:
        ``ET_EXEC`` for executables (default) or ``ET_DYN`` for shared objects.
    machine:
        ELF machine value; defaults to x86-64.
    soname:
        For shared objects, the ``DT_SONAME`` recorded in ``.dynamic``.
    """

    file_type: int = ET_EXEC
    machine: int = EM_X86_64
    soname: str = ""
    _text: bytes = b""
    _rodata_strings: list[str] = field(default_factory=list)
    _comments: list[str] = field(default_factory=list)
    _needed: list[str] = field(default_factory=list)
    _symbols: list[tuple[str, int, int, int]] = field(default_factory=list)
    _extra_sections: list[tuple[str, bytes]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # content population
    # ------------------------------------------------------------------ #
    def set_text(self, code: bytes) -> "ELFBuilder":
        """Set the raw ``.text`` payload."""
        self._text = bytes(code)
        return self

    def set_text_from_source(self, source: str, size: int = 4096, *, seed: int = 0) -> "ELFBuilder":
        """Derive a deterministic ``.text`` payload of ``size`` bytes from ``source``.

        The payload is generated block-wise (256-byte blocks), each block keyed
        by the corresponding "source line", so editing one line of the source
        description only changes the corresponding blocks of the binary --
        mimicking how a recompilation after a small patch perturbs a small,
        localised portion of the machine code.
        """
        if size <= 0:
            raise ELFError("text size must be positive")
        lines = source.splitlines() or [source or "empty"]
        block_size = 256
        block_count = (size + block_size - 1) // block_size
        blocks: list[bytes] = []
        for index in range(block_count):
            line = lines[index % len(lines)]
            key = xxh64(f"{line}|{index}|{seed}".encode("utf-8"))
            rng = np.random.default_rng(key)
            blocks.append(rng.integers(0, 256, size=block_size, dtype=np.uint8).tobytes())
        self._text = b"".join(blocks)[:size]
        return self

    def add_string(self, text: str) -> "ELFBuilder":
        """Add one printable string to ``.rodata``."""
        self._rodata_strings.append(text)
        return self

    def add_strings(self, texts: list[str]) -> "ELFBuilder":
        """Add many printable strings to ``.rodata``."""
        self._rodata_strings.extend(texts)
        return self

    def add_comment(self, producer: str) -> "ELFBuilder":
        """Add one compiler identification string to ``.comment``.

        Real toolchains write entries such as ``GCC: (SUSE Linux) 12.3.0`` or
        ``clang version 17.0.1 (Cray PE)``; pass the full producer string.
        """
        self._comments.append(producer)
        return self

    def add_needed(self, library: str) -> "ELFBuilder":
        """Declare a ``DT_NEEDED`` dependency on ``library`` (an soname)."""
        self._needed.append(library)
        return self

    def add_needed_many(self, libraries: list[str]) -> "ELFBuilder":
        """Declare several ``DT_NEEDED`` dependencies, preserving order."""
        self._needed.extend(libraries)
        return self

    def add_symbol(
        self,
        name: str,
        *,
        binding: int = STB_GLOBAL,
        symbol_type: int = STT_FUNC,
        size: int = 64,
    ) -> "ELFBuilder":
        """Add one symbol to both ``.symtab`` and ``.dynsym``."""
        self._symbols.append((name, binding, symbol_type, size))
        return self

    def add_global_functions(self, names: list[str]) -> "ELFBuilder":
        """Add a batch of global function symbols."""
        for name in names:
            self.add_symbol(name, binding=STB_GLOBAL, symbol_type=STT_FUNC)
        return self

    def add_global_objects(self, names: list[str]) -> "ELFBuilder":
        """Add a batch of global data-object symbols."""
        for name in names:
            self.add_symbol(name, binding=STB_GLOBAL, symbol_type=STT_OBJECT)
        return self

    def add_local_symbols(self, names: list[str]) -> "ELFBuilder":
        """Add local (``static``) symbols; these are *not* part of the public interface."""
        for name in names:
            self.add_symbol(name, binding=STB_LOCAL, symbol_type=STT_FUNC)
        return self

    def add_section(self, name: str, data: bytes) -> "ELFBuilder":
        """Add an arbitrary extra PROGBITS section (e.g. ``.note.gnu.build-id``)."""
        self._extra_sections.append((name, bytes(data)))
        return self

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def build(self) -> bytes:
        """Serialise the image and return its bytes."""
        shstrtab = StringTable()
        sections: list[_PendingSection] = []

        def add(section: _PendingSection) -> int:
            sections.append(section)
            return len(sections)  # +1 for the NULL section at index 0

        # .text --------------------------------------------------------- #
        text = self._text or b"\x90" * 16  # default: a tiny nop sled
        text_index = add(_PendingSection(
            ".text", SHT_PROGBITS, text, flags=SHF_ALLOC | SHF_EXECINSTR, addralign=16,
        ))

        # .rodata --------------------------------------------------------- #
        rodata = b"\x00".join(s.encode("utf-8") for s in self._rodata_strings) + b"\x00" \
            if self._rodata_strings else b"\x00"
        add(_PendingSection(".rodata", SHT_PROGBITS, rodata,
                            flags=SHF_ALLOC | SHF_STRINGS, addralign=1))

        # .comment -------------------------------------------------------- #
        comment = b"\x00".join(c.encode("utf-8") for c in self._comments) + b"\x00" \
            if self._comments else b""
        if comment:
            add(_PendingSection(".comment", SHT_PROGBITS, comment,
                                flags=SHF_STRINGS, addralign=1))

        # extra sections --------------------------------------------------- #
        for name, data in self._extra_sections:
            add(_PendingSection(name, SHT_PROGBITS, data, addralign=1))

        # .dynstr / .dynamic ----------------------------------------------- #
        dynstr = StringTable()
        needed_offsets = [dynstr.add(lib) for lib in self._needed]
        soname_offset = dynstr.add(self.soname) if self.soname else None
        dynamic_needed = self._needed or self.soname
        if dynamic_needed:
            dynstr_index = add(_PendingSection(".dynstr", SHT_STRTAB, dynstr.pack(),
                                               flags=SHF_ALLOC, addralign=1))
            entries = [DynamicEntry(DT_NEEDED, off) for off in needed_offsets]
            if soname_offset is not None:
                entries.append(DynamicEntry(DT_SONAME, soname_offset))
            entries.append(DynamicEntry(DT_STRTAB, 0))
            entries.append(DynamicEntry(DT_NULL, 0))
            dynamic = b"".join(entry.pack() for entry in entries)
            add(_PendingSection(".dynamic", SHT_DYNAMIC, dynamic, flags=SHF_ALLOC,
                                link=dynstr_index, entsize=16))
        else:
            dynstr_index = 0

        # symbol tables ----------------------------------------------------- #
        if self._symbols:
            symstr = StringTable()
            symbols = [Symbol.create(0, STB_LOCAL, 0, 0, 0, SHN_UNDEF)]  # mandatory null symbol
            address = 0x401000
            for name, binding, symbol_type, size in self._symbols:
                offset = symstr.add(name)
                symbols.append(Symbol.create(offset, binding, symbol_type,
                                             address, size, text_index, name=name))
                address += max(16, size)
            symtab_data = b"".join(sym.pack() for sym in symbols)
            strtab_index = add(_PendingSection(".strtab", SHT_STRTAB, symstr.pack(), addralign=1))
            # sh_info for SYMTAB = index of first non-local symbol
            first_global = 1 + sum(
                1 for _, binding, _, _ in self._symbols if binding == STB_LOCAL
            )
            add(_PendingSection(".symtab", SHT_SYMTAB, symtab_data, link=strtab_index,
                                info=first_global, entsize=24))
            add(_PendingSection(".dynsym", SHT_DYNSYM, symtab_data, link=strtab_index,
                                info=first_global, entsize=24, flags=SHF_ALLOC))

        # .shstrtab (must be last so its own name is registered) ------------ #
        for section in sections:
            shstrtab.add(section.name)
        shstrtab.add(".shstrtab")
        shstrtab_pending = _PendingSection(".shstrtab", SHT_STRTAB, shstrtab.pack(), addralign=1)
        sections.append(shstrtab_pending)
        shstrndx = len(sections)  # index accounting for NULL section

        # ---- layout ------------------------------------------------------- #
        phnum = 1
        data_offset = EHDR_SIZE + phnum * PHDR_SIZE
        blobs: list[bytes] = []
        headers: list[SectionHeader] = [SectionHeader(sh_type=SHT_NULL)]
        for section in sections:
            padding = (-data_offset) % section.addralign
            if padding:
                blobs.append(b"\x00" * padding)
                data_offset += padding
            headers.append(SectionHeader(
                sh_name=shstrtab.add(section.name),
                sh_type=section.sh_type,
                sh_flags=section.flags,
                sh_addr=0x400000 + data_offset if section.flags & SHF_ALLOC else 0,
                sh_offset=data_offset,
                sh_size=len(section.data),
                sh_link=section.link,
                sh_info=section.info,
                sh_addralign=section.addralign,
                sh_entsize=section.entsize,
                name=section.name,
            ))
            blobs.append(section.data)
            data_offset += len(section.data)

        shoff = data_offset + ((-data_offset) % 8)
        section_pad = b"\x00" * (shoff - data_offset)

        header = ELFHeader(
            e_type=self.file_type,
            e_machine=self.machine,
            e_entry=0x401000 if self.file_type == ET_EXEC else 0,
            e_phoff=EHDR_SIZE,
            e_shoff=shoff,
            e_phentsize=PHDR_SIZE,
            e_phnum=phnum,
            e_shnum=len(headers),
            e_shstrndx=shstrndx,
        )
        total_size = shoff + len(headers) * SHDR_SIZE
        phdr = ProgramHeader(
            p_type=PT_LOAD, p_flags=5, p_offset=0, p_vaddr=0x400000, p_paddr=0x400000,
            p_filesz=total_size, p_memsz=total_size,
        )
        image = bytearray()
        image += header.pack()
        image += phdr.pack()
        for blob in blobs:
            image += blob
        image += section_pad
        for section_header in headers:
            image += section_header.pack()
        return bytes(image)
