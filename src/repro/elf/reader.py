"""Parse ELF64 little-endian images (the ``libelf`` stand-in).

:class:`ELFFile` exposes exactly the queries SIREN's collector performs:

* ``comment_strings()`` -- compiler identification strings from ``.comment``,
* ``global_symbols()`` -- externally visible symbols (the ``nm``-style public
  interface that SIREN fuzzy-hashes),
* ``needed_libraries()`` -- ``DT_NEEDED`` sonames from ``.dynamic``,
* ``is_dynamically_linked`` -- whether the LD_PRELOAD hook applies at all
  (statically linked binaries never invoke the dynamic linker, a stated
  limitation of SIREN).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.elf.constants import (
    DT_NEEDED,
    DT_NULL,
    DT_SONAME,
    DYN_SIZE,
    ELF_MAGIC,
    SHT_DYNAMIC,
    SHT_DYNSYM,
    SHT_STRTAB,
    SHT_SYMTAB,
    STB_GLOBAL,
    STB_WEAK,
    SYM_SIZE,
)
from repro.elf.structures import DynamicEntry, ELFHeader, SectionHeader, StringTable, Symbol
from repro.util.errors import ELFError


def is_elf(data: bytes) -> bool:
    """True if ``data`` starts with the ELF magic."""
    return len(data) >= 4 and data[:4] == ELF_MAGIC


@dataclass
class ELFFile:
    """A parsed ELF64LE image held fully in memory."""

    data: bytes

    def __post_init__(self) -> None:
        if not is_elf(self.data):
            raise ELFError("not an ELF image")
        self.header = ELFHeader.unpack(self.data)

    # ------------------------------------------------------------------ #
    # sections
    # ------------------------------------------------------------------ #
    @cached_property
    def sections(self) -> list[SectionHeader]:
        """All section headers with resolved names."""
        header = self.header
        if header.e_shoff == 0 or header.e_shnum == 0:
            return []
        raw: list[SectionHeader] = []
        for index in range(header.e_shnum):
            offset = header.e_shoff + index * header.e_shentsize
            raw.append(SectionHeader.unpack(self.data, offset))
        # Resolve names through the section-header string table.
        if header.e_shstrndx < len(raw):
            strtab_header = raw[header.e_shstrndx]
            table = StringTable(self._section_bytes(strtab_header))
            raw = [
                SectionHeader(
                    sh_name=s.sh_name, sh_type=s.sh_type, sh_flags=s.sh_flags,
                    sh_addr=s.sh_addr, sh_offset=s.sh_offset, sh_size=s.sh_size,
                    sh_link=s.sh_link, sh_info=s.sh_info, sh_addralign=s.sh_addralign,
                    sh_entsize=s.sh_entsize, name=table.get(s.sh_name),
                )
                for s in raw
            ]
        return raw

    def _section_bytes(self, section: SectionHeader) -> bytes:
        end = section.sh_offset + section.sh_size
        if end > len(self.data):
            raise ELFError(f"section {section.name or section.sh_name} extends past end of file")
        return self.data[section.sh_offset:end]

    def section_names(self) -> list[str]:
        """Names of all sections (excluding the initial NULL section)."""
        return [s.name for s in self.sections if s.sh_type != 0 or s.name]

    def get_section(self, name: str) -> SectionHeader | None:
        """Find a section header by name, or ``None``."""
        for section in self.sections:
            if section.name == name:
                return section
        return None

    def section_data(self, name: str) -> bytes:
        """Raw bytes of the named section (empty if absent)."""
        section = self.get_section(name)
        if section is None:
            return b""
        return self._section_bytes(section)

    # ------------------------------------------------------------------ #
    # collector queries
    # ------------------------------------------------------------------ #
    def comment_strings(self) -> list[str]:
        """Compiler identification strings recorded in ``.comment``."""
        payload = self.section_data(".comment")
        if not payload:
            return []
        parts = payload.split(b"\x00")
        return [part.decode("utf-8", errors="replace") for part in parts if part]

    def dynamic_entries(self) -> list[DynamicEntry]:
        """All entries of the ``.dynamic`` section (up to ``DT_NULL``)."""
        section = None
        for candidate in self.sections:
            if candidate.sh_type == SHT_DYNAMIC:
                section = candidate
                break
        if section is None:
            return []
        payload = self._section_bytes(section)
        entries: list[DynamicEntry] = []
        for offset in range(0, len(payload) - DYN_SIZE + 1, DYN_SIZE):
            entry = DynamicEntry.unpack(payload, offset)
            if entry.d_tag == DT_NULL:
                break
            entries.append(entry)
        return entries

    def _dynamic_strtab(self) -> StringTable | None:
        for candidate in self.sections:
            if candidate.sh_type == SHT_DYNAMIC:
                link = candidate.sh_link
                if 0 < link < len(self.sections):
                    return StringTable(self._section_bytes(self.sections[link]))
        section = self.get_section(".dynstr")
        if section is not None:
            return StringTable(self._section_bytes(section))
        return None

    def needed_libraries(self) -> list[str]:
        """``DT_NEEDED`` sonames, in declaration order."""
        table = self._dynamic_strtab()
        if table is None:
            return []
        return [table.get(e.d_val) for e in self.dynamic_entries() if e.d_tag == DT_NEEDED]

    def soname(self) -> str | None:
        """``DT_SONAME`` of a shared object, if present."""
        table = self._dynamic_strtab()
        if table is None:
            return None
        for entry in self.dynamic_entries():
            if entry.d_tag == DT_SONAME:
                return table.get(entry.d_val)
        return None

    @property
    def is_dynamically_linked(self) -> bool:
        """True if the image has a ``.dynamic`` section (so ld.so runs for it)."""
        return any(s.sh_type == SHT_DYNAMIC for s in self.sections)

    # ------------------------------------------------------------------ #
    # symbols
    # ------------------------------------------------------------------ #
    def _symbols_from(self, sh_type: int) -> list[Symbol]:
        for section in self.sections:
            if section.sh_type != sh_type:
                continue
            payload = self._section_bytes(section)
            strtab: StringTable | None = None
            if 0 < section.sh_link < len(self.sections):
                strtab = StringTable(self._section_bytes(self.sections[section.sh_link]))
            symbols: list[Symbol] = []
            for offset in range(0, len(payload) - SYM_SIZE + 1, SYM_SIZE):
                symbol = Symbol.unpack(payload, offset)
                name = strtab.get(symbol.st_name) if strtab is not None else ""
                symbols.append(Symbol.unpack(payload, offset, name=name))
            return symbols
        return []

    def symbols(self) -> list[Symbol]:
        """All ``.symtab`` symbols (falling back to ``.dynsym``)."""
        symtab = self._symbols_from(SHT_SYMTAB)
        return symtab if symtab else self._symbols_from(SHT_DYNSYM)

    def global_symbols(self) -> list[Symbol]:
        """Externally visible (global or weak) named symbols.

        These correspond to the "global scope ELF symbols" of the paper:
        functions and variables defined without ``static``, i.e. the public
        interface of the application, which SIREN argues is the most stable
        identifier across recompilations.
        """
        return [
            symbol
            for symbol in self.symbols()
            if symbol.name and symbol.binding in (STB_GLOBAL, STB_WEAK)
        ]

    def global_symbol_names(self) -> list[str]:
        """Sorted names of the global symbols (the ``nm``-style listing)."""
        return sorted({symbol.name for symbol in self.global_symbols()})
