"""Minimal ELF64 substrate: build and parse synthetic executables.

SIREN's collector uses ``libelf`` to pull three things out of every user
executable: the compiler identification strings left in the ``.comment``
section, the externally visible (global-scope) symbols, and the list of
``DT_NEEDED`` shared objects.  It additionally fuzzy-hashes the raw file
content and its printable strings.

The reproduction environment has neither real HPC executables nor
``pyelftools``, so this subpackage provides both halves of that pipeline:

* :class:`~repro.elf.builder.ELFBuilder` produces structurally valid ELF64
  little-endian images with ``.text``, ``.rodata``, ``.comment``, ``.dynstr``,
  ``.dynamic`` (``DT_NEEDED`` entries), ``.dynsym``/``.symtab`` and string
  tables -- enough structure that a generic ELF parser recognises them and
  that fuzzy hashes of file/strings/symbols behave like they do for real
  binaries (small source changes perturb a small part of the image).
* :class:`~repro.elf.reader.ELFFile` parses those images (or any conforming
  ELF64LE image) and exposes the extraction helpers the collector needs.
"""

from repro.elf.builder import ELFBuilder
from repro.elf.constants import (
    EM_X86_64,
    ET_DYN,
    ET_EXEC,
    SHT_DYNAMIC,
    SHT_DYNSYM,
    SHT_PROGBITS,
    SHT_STRTAB,
    SHT_SYMTAB,
    STB_GLOBAL,
    STB_LOCAL,
    STT_FUNC,
    STT_OBJECT,
)
from repro.elf.reader import ELFFile, is_elf
from repro.elf.strings import extract_strings
from repro.elf.structures import ELFHeader, SectionHeader, Symbol

__all__ = [
    "ELFBuilder",
    "ELFFile",
    "ELFHeader",
    "SectionHeader",
    "Symbol",
    "extract_strings",
    "is_elf",
    "ET_EXEC",
    "ET_DYN",
    "EM_X86_64",
    "SHT_PROGBITS",
    "SHT_STRTAB",
    "SHT_SYMTAB",
    "SHT_DYNSYM",
    "SHT_DYNAMIC",
    "STB_GLOBAL",
    "STB_LOCAL",
    "STT_FUNC",
    "STT_OBJECT",
]
