"""Printable-string extraction (the ``strings(1)`` equivalent).

SIREN fuzzy-hashes "the printable strings found in the file (similar to the
output of the strings command)".  :func:`extract_strings` reproduces the
classic behaviour: runs of at least ``min_length`` printable ASCII characters,
terminated by any non-printable byte.

The scan is a compiled regular expression over the raw bytes (one C-level
pass) rather than a per-byte Python loop: a greedy character-class repetition
matches exactly the maximal printable runs the loop used to accumulate, at a
small fraction of the cost -- string extraction feeds every ``STRINGS_H``
digest, so it sits on the collector's hot path next to the hashing engine.
"""

from __future__ import annotations

import re

#: Bytes considered printable by ``strings``: ASCII 0x20-0x7E plus tab.
_PRINTABLE = frozenset(range(0x20, 0x7F)) | {0x09}

#: The printable set as a regex character class (derived, so the two can
#: never drift apart).
_PRINTABLE_CLASS = re.escape(bytes(sorted(_PRINTABLE)))

#: Compiled run patterns, one per ``min_length`` seen (4 in practice).
_RUN_PATTERNS: dict[int, re.Pattern[bytes]] = {}


def _run_pattern(min_length: int) -> re.Pattern[bytes]:
    pattern = _RUN_PATTERNS.get(min_length)
    if pattern is None:
        pattern = re.compile(b"[" + _PRINTABLE_CLASS + b"]{%d,}" % min_length)
        _RUN_PATTERNS[min_length] = pattern
    return pattern


def run_pattern_cache_clear() -> None:
    """Drop the compiled-pattern cache (fork hygiene / test isolation)."""
    _RUN_PATTERNS.clear()


def extract_strings(data: bytes, min_length: int = 4) -> list[str]:
    """Return all printable ASCII runs of at least ``min_length`` characters."""
    if min_length < 1:
        raise ValueError("min_length must be >= 1")
    return [run.decode("ascii") for run in _run_pattern(min_length).findall(data)]


def strings_blob(data: bytes, min_length: int = 4) -> str:
    """Join the extracted strings with newlines (the payload SIREN hashes)."""
    return "\n".join(extract_strings(data, min_length))
