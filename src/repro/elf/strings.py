"""Printable-string extraction (the ``strings(1)`` equivalent).

SIREN fuzzy-hashes "the printable strings found in the file (similar to the
output of the strings command)".  :func:`extract_strings` reproduces the
classic behaviour: runs of at least ``min_length`` printable ASCII characters,
terminated by any non-printable byte.
"""

from __future__ import annotations

#: Bytes considered printable by ``strings``: ASCII 0x20-0x7E plus tab.
_PRINTABLE = frozenset(range(0x20, 0x7F)) | {0x09}


def extract_strings(data: bytes, min_length: int = 4) -> list[str]:
    """Return all printable ASCII runs of at least ``min_length`` characters."""
    if min_length < 1:
        raise ValueError("min_length must be >= 1")
    results: list[str] = []
    current: list[int] = []
    for byte in data:
        if byte in _PRINTABLE:
            current.append(byte)
        else:
            if len(current) >= min_length:
                results.append(bytes(current).decode("ascii"))
            current.clear()
    if len(current) >= min_length:
        results.append(bytes(current).decode("ascii"))
    return results


def strings_blob(data: bytes, min_length: int = 4) -> str:
    """Join the extracted strings with newlines (the payload SIREN hashes)."""
    return "\n".join(extract_strings(data, min_length))
