"""Symbol-listing helpers (the ``nm(1)`` equivalent).

The collector hashes the *global-scope* symbol names of an executable; these
helpers render and normalise those listings so that the fuzzy hash of the
symbol table is stable regardless of symbol ordering inside the file.
"""

from __future__ import annotations

from repro.elf.constants import STT_FUNC, STT_OBJECT
from repro.elf.reader import ELFFile
from repro.elf.structures import Symbol

_NM_CODES = {STT_FUNC: "T", STT_OBJECT: "D"}


def nm_listing(elf: ELFFile) -> str:
    """Render a deterministic ``nm``-style listing of the global symbols.

    Each line is ``<code> <name>`` where the code is ``T`` for functions and
    ``D`` for data objects (``U`` would be undefined symbols, which synthetic
    binaries do not carry).  Lines are sorted by name so that the listing --
    and therefore its fuzzy hash -- does not depend on symbol table order.
    """
    lines = [
        f"{_NM_CODES.get(symbol.symbol_type, 'T')} {symbol.name}"
        for symbol in elf.global_symbols()
    ]
    return "\n".join(sorted(lines))


def symbol_names(symbols: list[Symbol]) -> list[str]:
    """Sorted unique names from a symbol list."""
    return sorted({symbol.name for symbol in symbols if symbol.name})
