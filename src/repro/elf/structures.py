"""Binary structures of the ELF64 little-endian format.

Each structure is a frozen dataclass with ``pack``/``unpack`` methods using
:mod:`struct`.  Only the fields the reproduction needs are modelled, but the
on-disk layout is complete and correct so images round-trip through any
conforming parser.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.elf.constants import (
    DYN_SIZE,
    EHDR_SIZE,
    ELF_MAGIC,
    ELFCLASS64,
    ELFDATA2LSB,
    ELFOSABI_SYSV,
    EM_X86_64,
    ET_EXEC,
    EV_CURRENT,
    SHDR_SIZE,
    SYM_SIZE,
    st_bind,
    st_info,
    st_type,
)
from repro.util.errors import ELFError

_EHDR_FMT = "<16sHHIQQQIHHHHHH"
_SHDR_FMT = "<IIQQQQIIQQ"
_SYM_FMT = "<IBBHQQ"
_DYN_FMT = "<qQ"
_PHDR_FMT = "<IIQQQQQQ"


@dataclass(frozen=True)
class ELFHeader:
    """The ELF file header (``Elf64_Ehdr``)."""

    e_type: int = ET_EXEC
    e_machine: int = EM_X86_64
    e_version: int = EV_CURRENT
    e_entry: int = 0x401000
    e_phoff: int = 0
    e_shoff: int = 0
    e_flags: int = 0
    e_ehsize: int = EHDR_SIZE
    e_phentsize: int = 0
    e_phnum: int = 0
    e_shentsize: int = SHDR_SIZE
    e_shnum: int = 0
    e_shstrndx: int = 0

    def pack(self) -> bytes:
        """Serialise the header to its 64-byte on-disk form."""
        ident = ELF_MAGIC + bytes(
            [ELFCLASS64, ELFDATA2LSB, EV_CURRENT, ELFOSABI_SYSV, 0]
        ) + b"\x00" * 7
        return struct.pack(
            _EHDR_FMT,
            ident,
            self.e_type,
            self.e_machine,
            self.e_version,
            self.e_entry,
            self.e_phoff,
            self.e_shoff,
            self.e_flags,
            self.e_ehsize,
            self.e_phentsize,
            self.e_phnum,
            self.e_shentsize,
            self.e_shnum,
            self.e_shstrndx,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "ELFHeader":
        """Parse the first 64 bytes of an ELF64LE image."""
        if len(data) < EHDR_SIZE:
            raise ELFError("truncated ELF header")
        fields = struct.unpack_from(_EHDR_FMT, data, 0)
        ident = fields[0]
        if ident[:4] != ELF_MAGIC:
            raise ELFError("missing ELF magic")
        if ident[4] != ELFCLASS64 or ident[5] != ELFDATA2LSB:
            raise ELFError("only ELF64 little-endian images are supported")
        return cls(
            e_type=fields[1],
            e_machine=fields[2],
            e_version=fields[3],
            e_entry=fields[4],
            e_phoff=fields[5],
            e_shoff=fields[6],
            e_flags=fields[7],
            e_ehsize=fields[8],
            e_phentsize=fields[9],
            e_phnum=fields[10],
            e_shentsize=fields[11],
            e_shnum=fields[12],
            e_shstrndx=fields[13],
        )


@dataclass(frozen=True)
class SectionHeader:
    """A section header (``Elf64_Shdr``) plus its resolved name."""

    sh_name: int = 0
    sh_type: int = 0
    sh_flags: int = 0
    sh_addr: int = 0
    sh_offset: int = 0
    sh_size: int = 0
    sh_link: int = 0
    sh_info: int = 0
    sh_addralign: int = 1
    sh_entsize: int = 0
    name: str = field(default="", compare=False)

    def pack(self) -> bytes:
        """Serialise to the 64-byte on-disk form."""
        return struct.pack(
            _SHDR_FMT,
            self.sh_name,
            self.sh_type,
            self.sh_flags,
            self.sh_addr,
            self.sh_offset,
            self.sh_size,
            self.sh_link,
            self.sh_info,
            self.sh_addralign,
            self.sh_entsize,
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0, name: str = "") -> "SectionHeader":
        """Parse one section header at ``offset``."""
        if len(data) < offset + SHDR_SIZE:
            raise ELFError("truncated section header")
        fields = struct.unpack_from(_SHDR_FMT, data, offset)
        return cls(*fields, name=name)


@dataclass(frozen=True)
class Symbol:
    """A symbol-table entry (``Elf64_Sym``) plus its resolved name."""

    st_name: int = 0
    st_info: int = 0
    st_other: int = 0
    st_shndx: int = 0
    st_value: int = 0
    st_size: int = 0
    name: str = field(default="", compare=False)

    @property
    def binding(self) -> int:
        """Symbol binding (``STB_*``)."""
        return st_bind(self.st_info)

    @property
    def symbol_type(self) -> int:
        """Symbol type (``STT_*``)."""
        return st_type(self.st_info)

    @classmethod
    def create(
        cls,
        name_offset: int,
        binding: int,
        symbol_type: int,
        value: int,
        size: int,
        shndx: int,
        name: str = "",
    ) -> "Symbol":
        """Build a symbol from semantic fields."""
        return cls(
            st_name=name_offset,
            st_info=st_info(binding, symbol_type),
            st_other=0,
            st_shndx=shndx,
            st_value=value,
            st_size=size,
            name=name,
        )

    def pack(self) -> bytes:
        """Serialise to the 24-byte on-disk form."""
        return struct.pack(
            _SYM_FMT,
            self.st_name,
            self.st_info,
            self.st_other,
            self.st_shndx,
            self.st_value,
            self.st_size,
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0, name: str = "") -> "Symbol":
        """Parse one symbol entry at ``offset``."""
        if len(data) < offset + SYM_SIZE:
            raise ELFError("truncated symbol entry")
        fields = struct.unpack_from(_SYM_FMT, data, offset)
        return cls(*fields, name=name)


@dataclass(frozen=True)
class DynamicEntry:
    """A ``.dynamic`` entry (``Elf64_Dyn``)."""

    d_tag: int
    d_val: int

    def pack(self) -> bytes:
        """Serialise to the 16-byte on-disk form."""
        return struct.pack(_DYN_FMT, self.d_tag, self.d_val)

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "DynamicEntry":
        """Parse one dynamic entry at ``offset``."""
        if len(data) < offset + DYN_SIZE:
            raise ELFError("truncated dynamic entry")
        tag, val = struct.unpack_from(_DYN_FMT, data, offset)
        return cls(d_tag=tag, d_val=val)


@dataclass(frozen=True)
class ProgramHeader:
    """A program header (``Elf64_Phdr``); emitted for realism only."""

    p_type: int
    p_flags: int
    p_offset: int
    p_vaddr: int
    p_paddr: int
    p_filesz: int
    p_memsz: int
    p_align: int = 0x1000

    def pack(self) -> bytes:
        """Serialise to the 56-byte on-disk form."""
        return struct.pack(
            _PHDR_FMT,
            self.p_type,
            self.p_flags,
            self.p_offset,
            self.p_vaddr,
            self.p_paddr,
            self.p_filesz,
            self.p_memsz,
            self.p_align,
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "ProgramHeader":
        """Parse one program header at ``offset``."""
        fields = struct.unpack_from(_PHDR_FMT, data, offset)
        return cls(*fields)


class StringTable:
    """Builder/reader for ELF string-table sections (NUL-separated names)."""

    def __init__(self, data: bytes = b"\x00") -> None:
        if not data or data[0] != 0:
            data = b"\x00" + data
        self._data = bytearray(data)
        self._offsets: dict[str, int] = {}

    def add(self, text: str) -> int:
        """Add a string (if new) and return its offset in the table."""
        if text == "":
            return 0
        existing = self._offsets.get(text)
        if existing is not None:
            return existing
        offset = len(self._data)
        self._data.extend(text.encode("utf-8") + b"\x00")
        self._offsets[text] = offset
        return offset

    def get(self, offset: int) -> str:
        """Return the NUL-terminated string starting at ``offset``."""
        if offset >= len(self._data):
            raise ELFError(f"string table offset {offset} out of range")
        end = self._data.find(b"\x00", offset)
        if end == -1:
            end = len(self._data)
        return self._data[offset:end].decode("utf-8", errors="replace")

    def pack(self) -> bytes:
        """Return the raw table bytes."""
        return bytes(self._data)

    def __len__(self) -> int:
        return len(self._data)
