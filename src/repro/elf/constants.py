"""ELF constants (the subset needed by the builder, reader and collector).

Names and values follow the System V ABI / ``<elf.h>``.
"""

from __future__ import annotations

# --- e_ident ---------------------------------------------------------------
ELF_MAGIC = b"\x7fELF"
ELFCLASS64 = 2
ELFDATA2LSB = 1  # little endian
EV_CURRENT = 1
ELFOSABI_SYSV = 0

# --- e_type ----------------------------------------------------------------
ET_NONE = 0
ET_REL = 1
ET_EXEC = 2
ET_DYN = 3

# --- e_machine -------------------------------------------------------------
EM_X86_64 = 62
EM_AARCH64 = 183

# --- section header types ----------------------------------------------------
SHT_NULL = 0
SHT_PROGBITS = 1
SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_NOTE = 7
SHT_NOBITS = 8
SHT_DYNAMIC = 6
SHT_DYNSYM = 11

# --- section flags -----------------------------------------------------------
SHF_WRITE = 0x1
SHF_ALLOC = 0x2
SHF_EXECINSTR = 0x4
SHF_MERGE = 0x10
SHF_STRINGS = 0x20

# --- symbol binding / type ---------------------------------------------------
STB_LOCAL = 0
STB_GLOBAL = 1
STB_WEAK = 2

STT_NOTYPE = 0
STT_OBJECT = 1
STT_FUNC = 2
STT_SECTION = 3
STT_FILE = 4

SHN_UNDEF = 0

# --- dynamic tags ------------------------------------------------------------
DT_NULL = 0
DT_NEEDED = 1
DT_STRTAB = 5
DT_SYMTAB = 6
DT_SONAME = 14
DT_RPATH = 15
DT_RUNPATH = 29

# --- struct sizes ------------------------------------------------------------
EHDR_SIZE = 64
SHDR_SIZE = 64
PHDR_SIZE = 56
SYM_SIZE = 24
DYN_SIZE = 16

# --- program header types ----------------------------------------------------
PT_NULL = 0
PT_LOAD = 1
PT_DYNAMIC = 2
PT_INTERP = 3


def st_info(binding: int, symbol_type: int) -> int:
    """Pack symbol binding and type into the ``st_info`` byte."""
    return ((binding & 0xF) << 4) | (symbol_type & 0xF)


def st_bind(info: int) -> int:
    """Extract the binding from an ``st_info`` byte."""
    return info >> 4


def st_type(info: int) -> int:
    """Extract the type from an ``st_info`` byte."""
    return info & 0xF
