"""Incremental (streaming) consolidation of SIREN messages.

The batch :class:`~repro.postprocess.consolidate.Consolidator` re-reads and
re-groups the *entire* messages table after a campaign ends.  The
:class:`IncrementalConsolidator` instead consumes messages **as they arrive**:
it keeps one open group per process key, finalizes a record the moment the
process's ``PROCEND`` destructor message confirms that every expected content
type made it through, closes lossy stragglers by an epoch/idle rule, and
flushes finished records to the store in batches through the
first-close-wins insert (:meth:`MessageStore.insert_processes_if_absent`)
-- so a long-running deployment can answer analysis queries mid-campaign
without ever materialising the raw message table.

Equivalence with the batch consolidator
---------------------------------------
Records are assembled by the *same* function
(:func:`repro.postprocess.consolidate.build_process_record`) over the same
message groups, so the only way streaming output could diverge is by closing
a group before all of its messages arrived.  Three properties rule that out
on the transports this repository ships:

* every channel delivers the constructor burst of one process contiguously
  and in order, and ``PROCEND`` is by construction the last message of a key,
  so finalizing on ``PROCEND`` can never cut a burst short;
* the idle rule only closes groups untouched for ``idle_epochs`` whole
  epochs, and an epoch boundary (one receiver flush) can never fall twice
  inside a single contiguous burst;
* :meth:`finalize` closes every still-open group at end of stream -- exactly
  the data the batch pass would have grouped.

``PROCEND`` never contributes content to a record, so a late destructor
arriving after an idle close is dropped harmlessly (counted in
``late_messages``); any other late message would mean a reordering transport
and is counted rather than silently merged.  The closed-key dedup set is
itself evicted on the same epoch clock -- a message so late that its key was
evicted resurrects a content-free group whose flush the first-close-wins
insert ignores, so the real record survives either way.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.collector.records import InfoType, Layer, parse_keyvalues
from repro.db.store import MessageStore, ProcessRecord
from repro.postprocess.consolidate import (
    GroupKey,
    MessageGroup,
    ProcessKey,
    build_process_record,
    expected_types_for,
)
from repro.transport.messages import UDPMessage
from repro.util.errors import TransportError
from repro.util.timing import NULL_TIMER


@dataclass
class _OpenProcess:
    """The still-accumulating message groups of one process key."""

    groups: dict[GroupKey, MessageGroup] = field(default_factory=dict)
    last_epoch: int = 0
    category: str = ""      #: parsed from PROCINFO when it arrives
    ended: bool = False     #: PROCEND seen -- nothing more is coming (ordered transport)


@dataclass
class IncrementalConsolidator:
    """Consolidate messages as they arrive; a drop-in sink for the receiver.

    Parameters
    ----------
    store:
        Destination for finalized records (via the upsert primitive).
    flush_batch_size:
        Finalized records are buffered and upserted in batches of this size.
    idle_epochs:
        An open group untouched for this many whole epochs is closed even
        without a ``PROCEND`` (the destructor datagram was lost).  Epochs are
        advanced by the receiver on every flush, so this is measured in
        receiver batches, not wall time.  Must be at least 2: an epoch
        boundary can fall *inside* a contiguous burst, so a group touched in
        the immediately preceding epoch may still be mid-burst -- only two
        whole untouched epochs prove the burst is over.
    """

    store: MessageStore
    flush_batch_size: int = 64
    idle_epochs: int = 2

    # Stage stopwatch (plain class attribute, not a field: the campaign
    # assigns its shared StageTimer on thread-mode shard instances).
    timer = NULL_TIMER

    # counters (mirroring the batch Consolidator where applicable)
    messages_consumed: int = 0
    records_built: int = 0
    incomplete_records: int = 0
    early_finalized: int = 0    #: closed by PROCEND with all expected types complete
    idle_closed: int = 0        #: closed by the epoch/idle rule (lossy stragglers)
    final_closed: int = 0       #: closed by the end-of-stream finalize
    late_messages: int = 0      #: messages for already-closed keys (dropped, counted)
    peak_open_processes: int = 0

    _epoch: int = 0
    _open: dict[ProcessKey, _OpenProcess] = field(default_factory=dict)
    #: Recently closed keys, for fast late-message detection.  Entries are
    #: evicted ``idle_epochs`` epochs after the close, so memory stays
    #: bounded by recent traffic, not campaign size; a message arriving
    #: even later resurrects a (content-free) group whose flush the store's
    #: first-close-wins insert ignores.
    _closed: set[ProcessKey] = field(default_factory=set)
    _closed_fifo: deque = field(default_factory=deque)  # (close_epoch, key)
    _pending: list[ProcessRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.idle_epochs < 2:
            raise TransportError(
                "idle_epochs must be >= 2: one epoch of silence cannot be told"
                " apart from a burst straddling a receiver batch boundary")

    # ------------------------------------------------------------------ #
    # feeding
    # ------------------------------------------------------------------ #
    def feed(self, message: UDPMessage) -> None:
        """Consume one decoded message."""
        self.messages_consumed += 1
        key: ProcessKey = (message.jobid, message.stepid, message.pid,
                           message.path_hash, message.host, message.time)
        if key in self._closed:
            self.late_messages += 1
            return
        open_process = self._open.get(key)
        if open_process is None:
            open_process = self._open[key] = _OpenProcess(last_epoch=self._epoch)
            self.peak_open_processes = max(self.peak_open_processes, len(self._open))
        open_process.last_epoch = self._epoch

        group_key: GroupKey = (message.layer.value, message.info_type.value)
        group = open_process.groups.setdefault(group_key, MessageGroup())
        group.add(message.chunk_index, message.chunk_total, message.content)

        if message.layer is Layer.SELF and message.info_type is InfoType.PROCINFO:
            open_process.category = parse_keyvalues(message.content).get("category", "")
        elif message.info_type is InfoType.PROCEND:
            open_process.ended = True
            if self._expected_complete(open_process):
                self._close(key, open_process, reason="procend")

    def feed_many(self, messages: list[UDPMessage]) -> None:
        """Consume a batch of decoded messages (the receiver's flush path)."""
        with self.timer.section("ingest.consolidate"):
            for message in messages:
                self.feed(message)

    # ------------------------------------------------------------------ #
    # epoch / close logic
    # ------------------------------------------------------------------ #
    def advance_epoch(self) -> int:
        """Advance the idle clock and close stale groups; returns how many closed.

        Called by the receiver after every flush.  Closes groups that either
        saw their ``PROCEND`` but are missing content (lost datagrams -- one
        epoch of grace covers reordering transports) or have been idle for
        ``idle_epochs`` whole epochs (the ``PROCEND`` itself was lost).
        """
        self._epoch += 1
        while self._closed_fifo and self._epoch - self._closed_fifo[0][0] >= self.idle_epochs:
            _, evicted = self._closed_fifo.popleft()
            self._closed.discard(evicted)
        stale = [
            (key, open_process)
            for key, open_process in self._open.items()
            if (open_process.ended and self._epoch - open_process.last_epoch >= 1)
            or self._epoch - open_process.last_epoch >= self.idle_epochs
        ]
        for key, open_process in stale:
            self._close(key, open_process, reason="idle")
        return len(stale)

    def _expected_complete(self, open_process: _OpenProcess) -> bool:
        """True when every expected content type arrived with all its chunks."""
        groups = open_process.groups
        procinfo = groups.get((Layer.SELF.value, InfoType.PROCINFO.value))
        if procinfo is None:
            return False
        for expected in expected_types_for(open_process.category):
            if (Layer.SELF.value, expected.value) not in groups:
                return False
        return all(group.all_chunks_present for group in groups.values())

    def _close(self, key: ProcessKey, open_process: _OpenProcess, *, reason: str) -> None:
        record = build_process_record(key, open_process.groups)
        self.records_built += 1
        if record.incomplete:
            self.incomplete_records += 1
        if reason == "procend":
            self.early_finalized += 1
        elif reason == "idle":
            self.idle_closed += 1
        else:
            self.final_closed += 1
        self._pending.append(record)
        self._closed.add(key)
        self._closed_fifo.append((self._epoch, key))
        del self._open[key]
        if len(self._pending) >= self.flush_batch_size:
            self.flush()

    # ------------------------------------------------------------------ #
    # flushing / results
    # ------------------------------------------------------------------ #
    @property
    def open_processes(self) -> int:
        """Process groups currently held open."""
        return len(self._open)

    def flush(self) -> int:
        """Write all finalized-but-unwritten records; returns how many.

        First close wins: a key resurrected by a very late message (after
        its dedup entry was evicted) produces a content-free record whose
        insert the store ignores, so the real row is never overwritten.
        """
        if not self._pending:
            return 0
        written = self.store.insert_processes_if_absent(self._pending)
        self._pending.clear()
        return written

    def peek_open(self) -> list[ProcessRecord]:
        """Non-destructive records for every still-open group.

        Built through the same assembly function as finalized records, but
        neither closed nor written -- the groups keep accumulating.
        """
        return [build_process_record(key, open_process.groups)
                for key, open_process in sorted(self._open.items())]

    def close_all(self) -> int:
        """Close every open group and flush; returns how many were closed.

        The sharded front's end-of-stream primitive (it reads the merged
        record set back from the shared store once, after closing all
        shards).
        """
        stale = sorted(self._open)
        for key in stale:
            self._close(key, self._open[key], reason="final")
        self.flush()
        return len(stale)

    def snapshot(self) -> list[ProcessRecord]:
        """Everything consolidated *so far*, without disturbing open groups.

        Flushes pending records, reads the finalized set back from the
        store, and adds a peek at every open group -- the mid-campaign feed
        for live analysis views.  Finalized records live *only* in the store
        (memory stays bounded by the in-flight groups), so this assumes the
        consolidator owns the store's ``processes`` table; sharded setups
        must use :meth:`ShardedIngest.snapshot`, which reads the shared
        table exactly once.  An open group resurrected by a very late
        message never shadows its already-finalized row.
        """
        self.flush()
        records = self.store.load_processes()
        finalized = {(r.jobid, r.stepid, r.pid, r.hash, r.host, r.time) for r in records}
        records.extend(r for r in self.peek_open()
                       if (r.jobid, r.stepid, r.pid, r.hash, r.host, r.time) not in finalized)
        return records

    def finalize(self) -> list[ProcessRecord]:
        """End of stream: close every open group, flush, return all records.

        Like :meth:`snapshot`, the returned records are read back from the
        store (the single-owner assumption applies).
        """
        self.close_all()
        return self.store.load_processes()

    def statistics(self) -> dict[str, int]:
        """Operational counters, for merging and reporting."""
        return {
            "messages_consumed": self.messages_consumed,
            "records_built": self.records_built,
            "incomplete_records": self.incomplete_records,
            "early_finalized": self.early_finalized,
            "idle_closed": self.idle_closed,
            "final_closed": self.final_closed,
            "late_messages": self.late_messages,
            "open_processes": self.open_processes,
            "peak_open_processes": self.peak_open_processes,
        }
