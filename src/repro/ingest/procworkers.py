"""Process-parallel shard workers for the sharded ingest front.

The thread-mode :class:`~repro.ingest.sharded.ShardedIngest` runs all of its
shard consolidators inside one interpreter, so N shards share one GIL and the
"parallel" ingest loses to a single streaming consolidator (the
``BENCH_ingest.json`` sharded-4 regression).  This module supplies the
process-mode backend: each shard is a real OS process owning its *own*
in-memory :class:`~repro.db.store.MessageStore` and
:class:`~repro.ingest.incremental.IncrementalConsolidator`, fed
pre-partitioned batches of **raw datagram bytes** over a bounded queue.  The
front never decodes in this mode (routing reads the raw header slice, see
:func:`~repro.ingest.sharded.shard_of_datagram`), so the per-datagram front
cost is a header scan plus a queue append -- the decode, grouping and record
assembly all run on the workers' cores.

Merge-at-snapshot
-----------------
Workers never touch the shared store.  Finalized records accumulate in each
worker's private store and are shipped back -- exactly once, tracked by a
worker-local rowid cursor -- when the front performs a **sync**: a marker
message is enqueued after all pending batches, and because the feed queue is
FIFO, the worker's reply proves every previously shipped datagram has been
consumed.  The front inserts the returned records into the shared store
through the same first-close-wins insert streaming mode always used, so
``snapshot()`` / ``snapshot_delta()`` / ``finalize()`` keep their exact
thread-mode semantics: finalized records live in the shared ``processes``
table, the rowid delta cursor stays monotonic and exactly-once, and open
groups are non-destructive peeks (returned with each sync reply).

Self-healing supervision
------------------------
A long-lived ingest front cannot treat a crashed worker as a reason to tear
the deployment down.  The pool therefore *supervises* its workers:

* **resend buffer**: every shipped batch is also kept in a per-shard
  ``unacked`` list until a sync reply acknowledges it (the FIFO feed queue
  makes one reply an ack for everything shipped before the marker).  The
  buffer is bounded by ``resend_window`` batches; overflow evicts the oldest
  batch and is *counted*, because it punches a hole in what a restart can
  recover.
* **restart with bounded retries and backoff**: when a worker dies (or
  stalls past ``stall_timeout`` -- it is then killed), the supervisor spawns
  a fresh worker after an exponentially backed-off, jittered delay
  (:class:`~repro.util.retry.RetryPolicy`), replays the unacked batches in
  their original order, and re-issues any outstanding sync marker.  Records
  merged into the shared store before the crash survive by construction
  (re-seeding is implicit: the shared store is the checkpoint, and the
  store's first-close-wins insert makes a replayed re-finalization a no-op).
  Once a shard exhausts ``max_restarts``, the pool tears down and raises
  :class:`~repro.util.errors.WorkerCrashError` -- never a hang.
* **honest loss accounting**: a crash loses exactly (a) the messages of
  groups that were still *open* at the last acked sync (their pre-ack
  datagrams were consumed and are no longer in the resend buffer) and (b)
  any batches evicted from the bounded resend window since that ack.  Both
  are surfaced per shard (``restart_lost_groups`` /
  ``restart_lost_datagrams`` in the merged statistics): when both are zero,
  the replay window covered the crash and the record output is identical to
  an uncrashed run -- the chaos suite pins exactly that.

Counters survive restarts: acked counter totals are folded into a per-shard
base before each respawn, so ``messages_received`` and the consolidator
statistics stay exactly-once across incarnations (replayed datagrams are
counted by exactly one incarnation's acked report).

Deterministic worker faults (:class:`~repro.faults.plan.WorkerFaultProfile`)
ride into the worker at spawn: the worker hard-exits or stalls itself at a
configured batch count, which is how the chaos suite and the degradation
bench kill shards mid-replay reproducibly.

Failure semantics
-----------------
Queues are bounded (``queue_depth`` batches per worker), so a dead worker
cannot make the front buffer unboundedly: every blocking interaction --
feeding a full queue, awaiting a sync reply -- polls worker liveness and
enters the supervision path above instead of hanging.  On final failure the
whole pool is torn down (no orphaned children); records already merged into
the shared store survive, and the loss counters say what did not.  Workers
are daemonic as a last-resort backstop: an abandoned, unfinalized front
cannot keep the interpreter alive.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from dataclasses import dataclass, field
from queue import Empty, Full

from repro.db.store import MessageStore, ProcessRecord
from repro.faults.plan import WorkerFaultProfile
from repro.ingest.incremental import IncrementalConsolidator
from repro.transport.messages import UDPMessage
from repro.transport.receiver import DatagramQuarantine, QuarantinedDatagram
from repro.util.errors import IngestError, TransportError, WorkerCrashError
from repro.util.retry import RetryPolicy

#: Bounded feed-queue depth, in batches: a worker can fall at most this many
#: batches (``queue_depth * batch_size`` datagrams) behind the front before
#: back-pressure blocks the producer.  Bounded memory, and a liveness probe
#: point -- an unbounded queue would let a crashed worker absorb the whole
#: campaign silently.
DEFAULT_QUEUE_DEPTH = 8

#: Bounded resend-buffer depth, in batches, per shard.  Batches older than
#: this (and not yet acked by a sync) are evicted and counted: a restart can
#: no longer replay them, so the equivalence guarantee narrows honestly.
DEFAULT_RESEND_WINDOW = 256

#: Exit code a worker uses when an injected fault hard-kills it; chosen to
#: be recognisable in diagnostics (and distinct from signal exits).
FAULT_EXIT_CODE = 113

#: Default backoff between supervised worker restarts: 2 restarts, 50 ms
#: doubling to a 1 s cap, +-50% jitter so a fleet of shards never restarts
#: in lockstep.
DEFAULT_RESTART_BACKOFF = RetryPolicy(attempts=2, base_delay=0.05,
                                      growth=2.0, max_delay=1.0, jitter=0.5)

#: Seconds a queue interaction waits between worker-liveness probes.
_POLL_INTERVAL = 0.2

#: Seconds to keep draining a reply queue after its worker exited -- the
#: queue feeder thread may still be flushing the final report.
_DRAIN_GRACE = 5.0


@dataclass(frozen=True)
class ShardReport:
    """One worker's reply to a sync/close marker."""

    sync_id: int
    new_records: tuple[ProcessRecord, ...]   #: finalized since the last sync
    open_records: tuple[ProcessRecord, ...]  #: current non-destructive peek
    statistics: dict                         #: the consolidator's counters
    messages_received: int                   #: decoded messages consumed so far
    decode_errors: int                       #: undecodable datagrams so far
    quarantined: tuple[QuarantinedDatagram, ...] = ()  #: captures since last report


def _shard_worker_main(feed, replies, flush_batch_size: int, idle_epochs: int,
                       quarantine_capacity: int = 0,
                       fault: WorkerFaultProfile | None = None) -> None:
    """One shard worker: private store + consolidator over a raw-datagram feed.

    Commands (FIFO): ``("batch", [datagram, ...])`` decodes and consumes one
    receiver batch (one epoch tick, like a receiver flush); ``("sync", id)``
    flushes and reports; ``("close", id)`` closes every open group, reports,
    and exits.  Decode errors are counted here (the front routes raw bytes)
    and shipped back with every report; with ``quarantine_capacity > 0`` the
    raw bytes and failure reason of each corrupt datagram ride back too.

    A :class:`WorkerFaultProfile` makes the worker sabotage itself
    deterministically: ``os._exit`` (indistinguishable from SIGKILL to the
    front) or a stall just *before* consuming the configured batch -- so the
    datagrams of that batch genuinely die with the worker and only the
    front's resend buffer can bring them back.
    """
    store = MessageStore()
    consolidator = IncrementalConsolidator(
        store, flush_batch_size=flush_batch_size, idle_epochs=idle_epochs)
    messages_received = 0
    decode_errors = 0
    cursor = 0
    batches_seen = 0
    stalled_once = False
    pending_quarantine: list[QuarantinedDatagram] = []
    supervisor_pid = os.getppid()
    while True:
        try:
            command, payload = feed.get(timeout=_POLL_INTERVAL)
        except Empty:
            # Orphan backstop: if the supervising front died without sending
            # "close", the worker would block on this queue forever (the
            # feed's feeder thread is non-daemonic).  Re-parenting (getppid
            # changes to init/subreaper) is the death certificate.
            if os.getppid() != supervisor_pid:
                return
            continue
        if command == "batch":
            batches_seen += 1
            if fault is not None:
                if (fault.kill_after_batches is not None
                        and batches_seen >= fault.kill_after_batches):
                    os._exit(FAULT_EXIT_CODE)
                if (fault.stall_after_batches is not None and not stalled_once
                        and batches_seen >= fault.stall_after_batches):
                    stalled_once = True
                    time.sleep(fault.stall_seconds)
            decoded = []
            for datagram in payload:
                try:
                    decoded.append(UDPMessage.decode(datagram))
                except TransportError as error:
                    decode_errors += 1
                    if quarantine_capacity and len(pending_quarantine) < quarantine_capacity:
                        pending_quarantine.append(QuarantinedDatagram(
                            datagram=bytes(datagram), reason=str(error)))
            if decoded:
                # One shipped batch == one receiver flush: feed, then tick
                # the idle-close epoch clock, exactly like thread mode.
                messages_received += len(decoded)
                consolidator.feed_many(decoded)
                consolidator.advance_epoch()
        elif command in ("sync", "close"):
            if command == "close":
                consolidator.close_all()
                open_records: list[ProcessRecord] = []
            else:
                consolidator.flush()
                open_records = consolidator.peek_open()
            new_records, cursor = store.load_processes_since(cursor)
            replies.put(ShardReport(
                sync_id=payload,
                new_records=tuple(new_records),
                open_records=tuple(open_records),
                statistics=consolidator.statistics(),
                messages_received=messages_received,
                decode_errors=decode_errors,
                quarantined=tuple(pending_quarantine),
            ))
            pending_quarantine.clear()
            if command == "close":
                return


def _context():
    """Prefer fork (cheap, no re-import) where available, else spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _merge_counters(base: dict, update: dict) -> dict:
    """Key-wise sum of two counter dicts."""
    merged = dict(base)
    for name, value in update.items():
        merged[name] = merged.get(name, 0) + value
    return merged


@dataclass
class _WorkerHandle:
    """The front's view of one shard worker (across restarts)."""

    index: int
    process: multiprocessing.Process | None = None
    feed: object = None     #: bounded command queue, front -> worker
    replies: object = None  #: report queue, worker -> front
    buffer: list[bytes] = field(default_factory=list)  #: pending raw datagrams
    report: ShardReport | None = None                  #: last acked sync/close report

    # --- supervision state -------------------------------------------- #
    incarnation: int = 0     #: how many processes have served this shard (1-based)
    restarts: int = 0        #: supervised restarts consumed so far
    #: Batches shipped since the last acked sync, in ship order -- what a
    #: restarted worker replays.
    unacked: list = field(default_factory=list)
    outstanding_sync: tuple | None = None  #: (command, sync_id) awaiting a reply
    open_at_ack: int = 0     #: open groups reported by the last acked sync
    replayed_batches: int = 0
    resend_overflow_batches: int = 0
    overflow_datagrams_since_ack: int = 0
    lost_open_groups: int = 0   #: groups whose pre-ack messages died with a worker
    lost_datagrams: int = 0     #: overflowed (unreplayable) datagrams lost to a crash

    # --- exactly-once counters across incarnations -------------------- #
    #: Acked totals of *dead* incarnations (folded in before each respawn).
    base_messages: int = 0
    base_decode: int = 0
    base_stats: dict = field(default_factory=dict)
    #: Merged totals as of the last ack (base + current incarnation).
    total_messages: int = 0
    total_decode: int = 0
    total_stats: dict = field(default_factory=dict)


class ProcessShardPool:
    """N supervised shard-worker processes behind partitioned bounded queues.

    Parameters
    ----------
    shards, batch_size, flush_batch_size, idle_epochs, queue_depth:
        As before: the shard count, the front's ship granularity and the
        workers' consolidator knobs.
    max_restarts:
        Supervised restarts allowed *per shard* before a dead/stalled worker
        becomes :class:`WorkerCrashError` (0 restores fail-fast).
    restart_backoff:
        Delay schedule between restart attempts (exponential, jittered).
    resend_window:
        Resend-buffer bound per shard, in batches; see the module docstring.
    stall_timeout:
        Seconds of zero progress (full feed queue, or a sync reply that
        never comes while the process is alive) before a worker is declared
        stalled, killed and restarted.  ``None`` disables stall detection.
    drain_grace:
        Seconds to keep draining a dead worker's reply queue before
        restarting it -- the final report may still be flushing through the
        queue's feeder thread.  (A too-short grace is safe, just wasteful:
        the unacked replay recomputes whatever the lost report carried.)
    quarantine:
        Optional shared :class:`DatagramQuarantine`: worker-side decode
        failures ship their raw bytes + reason back with each sync report
        and are merged here.
    worker_faults:
        Deterministic sabotage per shard index
        (:class:`~repro.faults.plan.WorkerFaultProfile`); a profile with
        ``repeat=False`` arms only the first incarnation, so the supervisor
        demonstrably heals it.
    """

    def __init__(self, shards: int, *, batch_size: int = 500,
                 flush_batch_size: int = 64, idle_epochs: int = 2,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 max_restarts: int = 2,
                 restart_backoff: RetryPolicy = DEFAULT_RESTART_BACKOFF,
                 resend_window: int = DEFAULT_RESEND_WINDOW,
                 stall_timeout: float | None = 60.0,
                 drain_grace: float = _DRAIN_GRACE,
                 quarantine: DatagramQuarantine | None = None,
                 worker_faults: dict[int, WorkerFaultProfile] | None = None) -> None:
        if max_restarts < 0:
            raise IngestError("max_restarts may not be negative")
        if resend_window < 1:
            raise IngestError("resend_window must be at least 1 batch")
        self.shards = shards
        self.batch_size = batch_size
        self.flush_batch_size = flush_batch_size
        self.idle_epochs = idle_epochs
        self.queue_depth = queue_depth
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff
        self.resend_window = resend_window
        self.stall_timeout = stall_timeout
        self.drain_grace = drain_grace
        self.quarantine = quarantine
        self.worker_faults = dict(worker_faults or {})
        self.closed = False
        #: the terminal supervisor failure, kept so it resurfaces on every
        #: later interaction -- the original raise travels up a channel
        #: delivery callback, and fire-and-forget senders swallow it there.
        self.failure: WorkerCrashError | None = None
        self._sync_id = 0
        self._context = _context()
        self._backoff_rng = random.Random(0xBACC0FF)  # jitter only; not output-visible
        self._workers: list[_WorkerHandle] = []
        for index in range(shards):
            worker = _WorkerHandle(index=index)
            self._spawn(worker)
            self._workers.append(worker)

    # ------------------------------------------------------------------ #
    # spawning / supervision
    # ------------------------------------------------------------------ #
    def _spawn(self, worker: _WorkerHandle) -> None:
        """Start a fresh process (and queues) for ``worker``'s shard."""
        fault = self.worker_faults.get(worker.index)
        if fault is not None and worker.incarnation > 0 and not fault.repeat:
            fault = None  # one-shot faults arm only the first incarnation
        worker.feed = self._context.Queue(maxsize=self.queue_depth)
        worker.replies = self._context.Queue()
        capacity = self.quarantine.capacity if self.quarantine is not None else 0
        worker.incarnation += 1
        worker.process = self._context.Process(
            target=_shard_worker_main,
            args=(worker.feed, worker.replies, self.flush_batch_size,
                  self.idle_epochs, capacity, fault),
            name=f"siren-shard-{worker.index}", daemon=True)
        worker.process.start()

    def _discard_queues(self, worker: _WorkerHandle) -> None:
        """Release a dead incarnation's queues without blocking on them."""
        for queue in (worker.feed, worker.replies):
            if queue is None:
                continue
            queue.cancel_join_thread()
            queue.close()

    def _kill_worker(self, worker: _WorkerHandle) -> None:
        """Forcibly end a stalled worker so the supervisor can respawn it."""
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=10)

    def _revive(self, worker: _WorkerHandle, reason: str) -> None:
        """Restart a dead worker, replaying its unacked batches.

        Loops until a fresh incarnation survives the replay or the restart
        budget is exhausted (then the pool tears down and
        :class:`WorkerCrashError` propagates).  Each pass: account what this
        crash irrecoverably lost, fold the dead incarnation's acked counters
        into the shard's base (idempotent -- totals only move at an ack),
        back off, respawn, replay.
        """
        while True:
            if worker.restarts >= self.max_restarts:
                self._fail(worker, reason)
            # Honest loss accounting: pre-ack messages of groups still open
            # at the last ack died with the worker (they are not in the
            # resend buffer any more), as did any batches the bounded window
            # already evicted.  Zero both => the replay window covers this
            # crash and the healed output is identical to an uncrashed run.
            worker.lost_open_groups += worker.open_at_ack
            worker.lost_datagrams += worker.overflow_datagrams_since_ack
            worker.open_at_ack = 0
            worker.overflow_datagrams_since_ack = 0
            worker.base_messages = worker.total_messages
            worker.base_decode = worker.total_decode
            worker.base_stats = dict(worker.total_stats)
            self._discard_queues(worker)
            delay = self.restart_backoff.delay(worker.restarts, self._backoff_rng)
            if delay > 0:
                time.sleep(delay)
            worker.restarts += 1
            self._spawn(worker)
            replayed, reason = self._replay(worker)
            if replayed:
                return

    def _replay(self, worker: _WorkerHandle) -> tuple[bool, str]:
        """Re-feed a fresh incarnation everything not yet acked.

        Returns ``(False, reason)`` if the new worker also died or stalled
        mid-replay (the caller loops, burning another restart).
        """
        commands = [("batch", batch) for batch in worker.unacked]
        if worker.outstanding_sync is not None:
            commands.append(worker.outstanding_sync)
        for command in commands:
            delivered, reason = self._put_once(worker, command)
            if not delivered:
                return False, reason
        worker.replayed_batches += len(worker.unacked)
        return True, ""

    def _fail(self, worker: _WorkerHandle, reason: str) -> None:
        """Tear the pool down; the shard is beyond its restart budget.

        The failure is remembered on the pool: the raise below may travel up
        a channel delivery callback into a fire-and-forget sender that
        swallows it, so every later interaction (another ``route``, the
        final ``sync``/``close``) re-raises it instead of pretending the
        pool merely closed.
        """
        self.terminate()
        budget = (f"restart budget of {self.max_restarts} exhausted"
                  if self.max_restarts else "supervised restart is disabled"
                  " (max_restarts=0)")
        self.failure = WorkerCrashError(
            f"ingest shard {worker.index} {reason}; {budget} -- datagrams "
            "outstanding on that shard since the last acknowledged sync are "
            f"lost ({worker.lost_open_groups} group(s) already unrecoverable)")
        raise self.failure

    # ------------------------------------------------------------------ #
    # feeding
    # ------------------------------------------------------------------ #
    def route(self, shard: int, datagram: bytes) -> None:
        """Buffer one raw datagram for ``shard``; ship on a full batch."""
        if self.failure is not None:
            raise self.failure
        worker = self._workers[shard]
        worker.buffer.append(datagram)
        if len(worker.buffer) >= self.batch_size:
            self._ship(worker)

    def flush(self) -> int:
        """Ship every partial batch; returns how many datagrams were shipped."""
        shipped = 0
        for worker in self._workers:
            shipped += len(worker.buffer)
            self._ship(worker)
        return shipped

    def _ship(self, worker: _WorkerHandle) -> None:
        if not worker.buffer:
            return
        batch = worker.buffer
        worker.buffer = []
        self._put(worker, ("batch", batch))
        worker.unacked.append(batch)
        if len(worker.unacked) > self.resend_window:
            evicted = worker.unacked.pop(0)
            worker.resend_overflow_batches += 1
            worker.overflow_datagrams_since_ack += len(evicted)

    def _put_once(self, worker: _WorkerHandle, command: tuple) -> tuple[bool, str]:
        """One enqueue attempt loop; reports death/stall instead of healing."""
        waited = 0.0
        while True:
            if not worker.process.is_alive():
                return False, (f"worker died (exit code "
                               f"{worker.process.exitcode})")
            try:
                worker.feed.put(command, timeout=_POLL_INTERVAL)
                return True, ""
            except Full:
                waited += _POLL_INTERVAL
                if self.stall_timeout is not None and waited >= self.stall_timeout:
                    self._kill_worker(worker)
                    return False, (f"worker stalled (no progress on a full "
                                   f"feed queue for {waited:.0f}s; killed)")

    def _put(self, worker: _WorkerHandle, command: tuple) -> None:
        """Enqueue with back-pressure, healing a dead/stalled worker."""
        while True:
            delivered, reason = self._put_once(worker, command)
            if delivered:
                return
            self._revive(worker, reason)

    # ------------------------------------------------------------------ #
    # sync / close
    # ------------------------------------------------------------------ #
    def sync(self) -> list[ProcessRecord]:
        """Flush partial batches, collect every worker's report.

        Returns the newly finalized records of all shards (each record
        exactly once across the pool's lifetime), in shard order.  Open-group
        peeks and counters are cached on the handles for the front to read.
        """
        return self._collect("sync")

    def close(self) -> list[ProcessRecord]:
        """Final sync: close all open groups, stop and join every worker."""
        new_records = self._collect("close")
        for worker in self._workers:
            worker.process.join(timeout=30)
            if worker.process.is_alive():  # pragma: no cover - defensive
                self.terminate()
                raise IngestError(
                    f"ingest shard {worker.index} worker failed to exit on close")
            worker.feed.close()
            worker.replies.close()
        self.closed = True
        return new_records

    def _collect(self, command: str) -> list[ProcessRecord]:
        if self.failure is not None:
            raise self.failure
        if self.closed:
            raise IngestError("the process shard pool is already closed")
        self._sync_id += 1
        for worker in self._workers:
            self._ship(worker)
            self._put(worker, (command, self._sync_id))
            # Registered only after a successful put: if the put itself had
            # to revive the worker, the replay must not re-issue a marker
            # that was never delivered (the loop above still delivers it).
            worker.outstanding_sync = (command, self._sync_id)
        new_records: list[ProcessRecord] = []
        for worker in self._workers:
            report = self._await_report(worker)
            new_records.extend(report.new_records)
        return new_records

    def _await_report(self, worker: _WorkerHandle) -> ShardReport:
        died_at: float | None = None
        stalled_for = 0.0
        while True:
            try:
                report = worker.replies.get(timeout=_POLL_INTERVAL)
            except Empty:
                if not worker.process.is_alive():
                    # The reply may still be in flight from the worker's
                    # queue feeder thread; drain briefly before concluding.
                    now = time.monotonic()
                    if died_at is None:
                        died_at = now
                    elif now - died_at > self.drain_grace:
                        self._revive(worker, (
                            "worker died awaiting a sync reply (exit code "
                            f"{worker.process.exitcode})"))
                        died_at = None
                        stalled_for = 0.0
                else:
                    died_at = None
                    stalled_for += _POLL_INTERVAL
                    if (self.stall_timeout is not None
                            and stalled_for >= self.stall_timeout):
                        self._kill_worker(worker)
                        self._revive(worker, (
                            "worker stalled (no sync reply for "
                            f"{stalled_for:.0f}s; killed)"))
                        stalled_for = 0.0
                continue
            if report.sync_id == self._sync_id:
                self._ack(worker, report)
                return report
            # Stale report from before a restart: ignore and keep waiting.

    def _ack(self, worker: _WorkerHandle, report: ShardReport) -> None:
        """A sync reply arrived: release the resend buffer, fold counters."""
        worker.report = report
        worker.outstanding_sync = None
        worker.unacked.clear()
        worker.overflow_datagrams_since_ack = 0
        worker.open_at_ack = len(report.open_records)
        worker.total_messages = worker.base_messages + report.messages_received
        worker.total_decode = worker.base_decode + report.decode_errors
        worker.total_stats = _merge_counters(worker.base_stats, report.statistics)
        if self.quarantine is not None and report.quarantined:
            self.quarantine.extend(list(report.quarantined))

    def terminate(self) -> None:
        """Kill every worker and release the queues (error/abort path)."""
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.terminate()
        for worker in self._workers:
            worker.process.join(timeout=10)
            self._discard_queues(worker)
        self.closed = True

    # ------------------------------------------------------------------ #
    # merged views of the last sync
    # ------------------------------------------------------------------ #
    @property
    def open_records(self) -> list[ProcessRecord]:
        """Open-group peeks from the last sync, in shard order."""
        return [record for worker in self._workers if worker.report is not None
                for record in worker.report.open_records]

    @property
    def messages_received(self) -> int:
        """Messages decoded across all workers, as of the last sync.

        Exactly-once across restarts: dead incarnations contribute their
        last *acked* totals, the live incarnation re-counts the replay.
        """
        return sum(worker.total_messages for worker in self._workers)

    @property
    def decode_errors(self) -> int:
        """Worker-side decode errors, as of the last sync."""
        return sum(worker.total_decode for worker in self._workers)

    @property
    def worker_restarts(self) -> int:
        """Supervised restarts performed across all shards."""
        return sum(worker.restarts for worker in self._workers)

    def merged_statistics(self) -> dict[str, int]:
        """Summed consolidator counters of all workers, as of the last sync."""
        merged: dict[str, int] = {}
        for worker in self._workers:
            merged = _merge_counters(merged, worker.total_stats)
        return merged

    def stat_sum(self, name: str) -> int:
        """One summed consolidator counter (0 before the first sync)."""
        return sum(worker.total_stats.get(name, 0) for worker in self._workers)

    def restart_statistics(self) -> dict[str, int]:
        """The supervisor's counters, merged across shards."""
        return {
            "worker_restarts": self.worker_restarts,
            "restart_lost_groups": sum(w.lost_open_groups for w in self._workers),
            "restart_lost_datagrams": sum(w.lost_datagrams for w in self._workers),
            "resend_replayed_batches": sum(w.replayed_batches for w in self._workers),
            "resend_overflow_batches": sum(w.resend_overflow_batches
                                           for w in self._workers),
        }

    # ------------------------------------------------------------------ #
    # introspection (tests, diagnostics)
    # ------------------------------------------------------------------ #
    @property
    def processes(self) -> list[multiprocessing.Process]:
        """The (current) worker processes, in shard order."""
        return [worker.process for worker in self._workers]

    def alive_workers(self) -> list[int]:
        """Shard indices whose worker process is still alive."""
        return [worker.index for worker in self._workers
                if worker.process.is_alive()]
