"""Process-parallel shard workers for the sharded ingest front.

The thread-mode :class:`~repro.ingest.sharded.ShardedIngest` runs all of its
shard consolidators inside one interpreter, so N shards share one GIL and the
"parallel" ingest loses to a single streaming consolidator (the
``BENCH_ingest.json`` sharded-4 regression).  This module supplies the
process-mode backend: each shard is a real OS process owning its *own*
in-memory :class:`~repro.db.store.MessageStore` and
:class:`~repro.ingest.incremental.IncrementalConsolidator`, fed
pre-partitioned batches of **raw datagram bytes** over a bounded queue.  The
front never decodes in this mode (routing reads the raw header slice, see
:func:`~repro.ingest.sharded.shard_of_datagram`), so the per-datagram front
cost is a header scan plus a queue append -- the decode, grouping and record
assembly all run on the workers' cores.

Merge-at-snapshot
-----------------
Workers never touch the shared store.  Finalized records accumulate in each
worker's private store and are shipped back -- exactly once, tracked by a
worker-local rowid cursor -- when the front performs a **sync**: a marker
message is enqueued after all pending batches, and because the feed queue is
FIFO, the worker's reply proves every previously shipped datagram has been
consumed.  The front inserts the returned records into the shared store
through the same first-close-wins insert streaming mode always used, so
``snapshot()`` / ``snapshot_delta()`` / ``finalize()`` keep their exact
thread-mode semantics: finalized records live in the shared ``processes``
table, the rowid delta cursor stays monotonic and exactly-once, and open
groups are non-destructive peeks (returned with each sync reply).

Failure semantics
-----------------
Queues are bounded (``queue_depth`` batches per worker), so a dead worker
cannot make the front buffer unboundedly: every blocking interaction --
feeding a full queue, awaiting a sync reply -- polls worker liveness and
raises :class:`~repro.util.errors.TransportError` with the shard index and
exit code instead of hanging.  On such a failure the whole pool is torn down
(no orphaned children); records already merged into the shared store
survive, anything still inside the dead worker is reported lost.  Workers
are daemonic as a last-resort backstop: an abandoned, unfinalized front
cannot keep the interpreter alive.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from queue import Empty, Full

from repro.db.store import MessageStore, ProcessRecord
from repro.ingest.incremental import IncrementalConsolidator
from repro.transport.messages import UDPMessage
from repro.util.errors import TransportError

#: Bounded feed-queue depth, in batches: a worker can fall at most this many
#: batches (``queue_depth * batch_size`` datagrams) behind the front before
#: back-pressure blocks the producer.  Bounded memory, and a liveness probe
#: point -- an unbounded queue would let a crashed worker absorb the whole
#: campaign silently.
DEFAULT_QUEUE_DEPTH = 8

#: Seconds a queue interaction waits between worker-liveness probes.
_POLL_INTERVAL = 0.2

#: Seconds to keep draining a reply queue after its worker exited -- the
#: queue feeder thread may still be flushing the final report.
_DRAIN_GRACE = 5.0


@dataclass(frozen=True)
class ShardReport:
    """One worker's reply to a sync/close marker."""

    sync_id: int
    new_records: tuple[ProcessRecord, ...]   #: finalized since the last sync
    open_records: tuple[ProcessRecord, ...]  #: current non-destructive peek
    statistics: dict                         #: the consolidator's counters
    messages_received: int                   #: decoded messages consumed so far
    decode_errors: int                       #: undecodable datagrams so far


def _shard_worker_main(feed, replies, flush_batch_size: int, idle_epochs: int) -> None:
    """One shard worker: private store + consolidator over a raw-datagram feed.

    Commands (FIFO): ``("batch", [datagram, ...])`` decodes and consumes one
    receiver batch (one epoch tick, like a receiver flush); ``("sync", id)``
    flushes and reports; ``("close", id)`` closes every open group, reports,
    and exits.  Decode errors are counted here (the front routes raw bytes)
    and shipped back with every report.
    """
    store = MessageStore()
    consolidator = IncrementalConsolidator(
        store, flush_batch_size=flush_batch_size, idle_epochs=idle_epochs)
    messages_received = 0
    decode_errors = 0
    cursor = 0
    while True:
        command, payload = feed.get()
        if command == "batch":
            decoded = []
            for datagram in payload:
                try:
                    decoded.append(UDPMessage.decode(datagram))
                except TransportError:
                    decode_errors += 1
            if decoded:
                # One shipped batch == one receiver flush: feed, then tick
                # the idle-close epoch clock, exactly like thread mode.
                messages_received += len(decoded)
                consolidator.feed_many(decoded)
                consolidator.advance_epoch()
        elif command in ("sync", "close"):
            if command == "close":
                consolidator.close_all()
                open_records: list[ProcessRecord] = []
            else:
                consolidator.flush()
                open_records = consolidator.peek_open()
            new_records, cursor = store.load_processes_since(cursor)
            replies.put(ShardReport(
                sync_id=payload,
                new_records=tuple(new_records),
                open_records=tuple(open_records),
                statistics=consolidator.statistics(),
                messages_received=messages_received,
                decode_errors=decode_errors,
            ))
            if command == "close":
                return


def _context():
    """Prefer fork (cheap, no re-import) where available, else spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


@dataclass
class _WorkerHandle:
    """The front's view of one shard worker."""

    index: int
    process: multiprocessing.Process
    feed: object       #: bounded command queue, front -> worker
    replies: object    #: report queue, worker -> front
    buffer: list[bytes] = field(default_factory=list)  #: pending raw datagrams
    report: ShardReport | None = None                  #: last sync/close report


class ProcessShardPool:
    """N shard-worker processes behind partitioned, bounded feed queues."""

    def __init__(self, shards: int, *, batch_size: int = 500,
                 flush_batch_size: int = 64, idle_epochs: int = 2,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH) -> None:
        self.shards = shards
        self.batch_size = batch_size
        self.closed = False
        self._sync_id = 0
        context = _context()
        self._workers: list[_WorkerHandle] = []
        for index in range(shards):
            feed = context.Queue(maxsize=queue_depth)
            replies = context.Queue()
            process = context.Process(
                target=_shard_worker_main,
                args=(feed, replies, flush_batch_size, idle_epochs),
                name=f"siren-shard-{index}", daemon=True)
            process.start()
            self._workers.append(_WorkerHandle(index=index, process=process,
                                               feed=feed, replies=replies))

    # ------------------------------------------------------------------ #
    # feeding
    # ------------------------------------------------------------------ #
    def route(self, shard: int, datagram: bytes) -> None:
        """Buffer one raw datagram for ``shard``; ship on a full batch."""
        worker = self._workers[shard]
        worker.buffer.append(datagram)
        if len(worker.buffer) >= self.batch_size:
            self._ship(worker)

    def flush(self) -> int:
        """Ship every partial batch; returns how many datagrams were shipped."""
        shipped = 0
        for worker in self._workers:
            shipped += len(worker.buffer)
            self._ship(worker)
        return shipped

    def _ship(self, worker: _WorkerHandle) -> None:
        if not worker.buffer:
            return
        self._put(worker, ("batch", worker.buffer))
        worker.buffer = []

    def _put(self, worker: _WorkerHandle, command: tuple) -> None:
        """Enqueue with back-pressure, failing fast if the worker died."""
        while True:
            if not worker.process.is_alive():
                self._fail(worker)
            try:
                worker.feed.put(command, timeout=_POLL_INTERVAL)
                return
            except Full:
                continue

    # ------------------------------------------------------------------ #
    # sync / close
    # ------------------------------------------------------------------ #
    def sync(self) -> list[ProcessRecord]:
        """Flush partial batches, collect every worker's report.

        Returns the newly finalized records of all shards (each record
        exactly once across the pool's lifetime), in shard order.  Open-group
        peeks and counters are cached on the handles for the front to read.
        """
        return self._collect("sync")

    def close(self) -> list[ProcessRecord]:
        """Final sync: close all open groups, stop and join every worker."""
        new_records = self._collect("close")
        for worker in self._workers:
            worker.process.join(timeout=30)
            if worker.process.is_alive():  # pragma: no cover - defensive
                self.terminate()
                raise TransportError(
                    f"ingest shard {worker.index} worker failed to exit on close")
            worker.feed.close()
            worker.replies.close()
        self.closed = True
        return new_records

    def _collect(self, command: str) -> list[ProcessRecord]:
        if self.closed:
            raise TransportError("the process shard pool is already closed")
        self._sync_id += 1
        for worker in self._workers:
            self._ship(worker)
            self._put(worker, (command, self._sync_id))
        new_records: list[ProcessRecord] = []
        for worker in self._workers:
            report = self._await_report(worker)
            worker.report = report
            new_records.extend(report.new_records)
        return new_records

    def _await_report(self, worker: _WorkerHandle) -> ShardReport:
        died_at: float | None = None
        while True:
            try:
                report = worker.replies.get(timeout=_POLL_INTERVAL)
            except Empty:
                if not worker.process.is_alive():
                    # The reply may still be in flight from the worker's
                    # queue feeder thread; drain briefly before concluding.
                    now = time.monotonic()
                    if died_at is None:
                        died_at = now
                    elif now - died_at > _DRAIN_GRACE:
                        self._fail(worker)
                continue
            if report.sync_id == self._sync_id:
                return report

    def _fail(self, worker: _WorkerHandle) -> None:
        """Tear the pool down and surface a diagnostic for a dead worker."""
        exitcode = worker.process.exitcode
        self.terminate()
        raise TransportError(
            f"ingest shard {worker.index} worker died (exit code {exitcode}) "
            "with datagrams outstanding -- records routed to that shard since "
            "the last sync are lost; restart the ingest front")

    def terminate(self) -> None:
        """Kill every worker and release the queues (error/abort path)."""
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.terminate()
        for worker in self._workers:
            worker.process.join(timeout=10)
            worker.feed.close()
            worker.replies.close()
        self.closed = True

    # ------------------------------------------------------------------ #
    # merged views of the last sync
    # ------------------------------------------------------------------ #
    @property
    def open_records(self) -> list[ProcessRecord]:
        """Open-group peeks from the last sync, in shard order."""
        return [record for worker in self._workers if worker.report is not None
                for record in worker.report.open_records]

    @property
    def messages_received(self) -> int:
        """Messages decoded across all workers, as of the last sync."""
        return sum(worker.report.messages_received for worker in self._workers
                   if worker.report is not None)

    @property
    def decode_errors(self) -> int:
        """Worker-side decode errors, as of the last sync."""
        return sum(worker.report.decode_errors for worker in self._workers
                   if worker.report is not None)

    def merged_statistics(self) -> dict[str, int]:
        """Summed consolidator counters of all workers, as of the last sync."""
        merged: dict[str, int] = {}
        for worker in self._workers:
            if worker.report is None:
                continue
            for name, value in worker.report.statistics.items():
                merged[name] = merged.get(name, 0) + value
        return merged

    def stat_sum(self, name: str) -> int:
        """One summed consolidator counter (0 before the first sync)."""
        return sum(worker.report.statistics.get(name, 0)
                   for worker in self._workers if worker.report is not None)

    # ------------------------------------------------------------------ #
    # introspection (tests, diagnostics)
    # ------------------------------------------------------------------ #
    @property
    def processes(self) -> list[multiprocessing.Process]:
        """The worker processes, in shard order."""
        return [worker.process for worker in self._workers]

    def alive_workers(self) -> list[int]:
        """Shard indices whose worker process is still alive."""
        return [worker.index for worker in self._workers
                if worker.process.is_alive()]
