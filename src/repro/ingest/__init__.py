"""Streaming ingest: consolidate SIREN messages as they arrive.

The batch pipeline (receiver persists raw messages, a post-pass
:class:`~repro.postprocess.consolidate.Consolidator` re-reads and re-groups
everything) cannot serve a continuously running collector.  This subpackage
turns ingest into a live system:

* :mod:`repro.ingest.incremental` --
  :class:`~repro.ingest.incremental.IncrementalConsolidator` keeps open
  per-process message groups, finalizes each record the moment its
  ``PROCEND`` confirms the expected content types are complete (with an
  epoch/idle close for lossy stragglers), and flushes finished records in
  batches through the store's first-close-wins insert;
* :mod:`repro.ingest.sharded` --
  :class:`~repro.ingest.sharded.ShardedIngest` partitions the datagram
  stream across N receiver+consolidator shards by a stable FNV hash of the
  process key and merges their counters; its
  :meth:`~repro.ingest.sharded.ShardedIngest.snapshot_delta` serves the
  exactly-once record delta stream (:class:`~repro.ingest.sharded.ProcessDelta`)
  behind the live analysis layer (:mod:`repro.analysis.live`);
* :mod:`repro.ingest.procworkers` --
  :class:`~repro.ingest.procworkers.ProcessShardPool` runs each shard as a
  real OS process with its own store and consolidator
  (``ShardedIngest(workers="process")``), routing raw datagram bytes by
  their header slice and merging finalized records back into the shared
  store at every snapshot/delta/finalize sync -- true multi-core ingest
  with unchanged snapshot semantics.

All paths are pinned record-for-record equivalent to the batch consolidator
(see ``tests/ingest/``); ``ingest_mode="streaming"`` +
``ingest_workers="thread"|"process"`` on
:class:`~repro.workload.campaign.CampaignConfig` /
:class:`~repro.core.config.SirenConfig` select them end to end.
"""

from repro.ingest.incremental import IncrementalConsolidator
from repro.ingest.procworkers import ProcessShardPool, ShardReport
from repro.ingest.sharded import (
    ProcessDelta,
    ShardedIngest,
    shard_of,
    shard_of_datagram,
)

__all__ = [
    "IncrementalConsolidator",
    "ProcessDelta",
    "ProcessShardPool",
    "ShardReport",
    "ShardedIngest",
    "shard_of",
    "shard_of_datagram",
]
