"""Sharded streaming ingest: N receiver + consolidator workers behind one front.

The paper's receiver is a single UDP server; at the traffic the roadmap aims
for, one consolidator becomes the bottleneck long before the network does.
:class:`ShardedIngest` partitions the datagram stream across ``shards``
independent :class:`~repro.transport.receiver.MessageReceiver` +
:class:`~repro.ingest.incremental.IncrementalConsolidator` pairs, keyed by a
stable FNV-1a hash of the process header -- every message of one process
lands on the same shard, so each shard consolidates a disjoint set of
process keys and the shard outputs merely concatenate.

The front decodes each datagram exactly once (counting decode errors
centrally) and routes the decoded message via the receivers' pre-decoded
fast path, so sharding adds routing cost but no second decode.  Shard
assignment is deterministic across runs and processes (FNV, not Python's
randomised ``hash``), keeping campaign results reproducible counter-for-
counter, not just record-for-record.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.store import MessageStore, ProcessRecord
from repro.hashing.fnv import fnv1a_32
from repro.ingest.incremental import IncrementalConsolidator
from repro.transport.channel import Channel
from repro.transport.messages import UDPMessage
from repro.transport.receiver import MessageReceiver
from repro.util.errors import TransportError


def _in_key_order(records: list[ProcessRecord]) -> list[ProcessRecord]:
    """Sort records by the process header key (the batch consolidator's order)."""
    return sorted(records, key=lambda r: (r.jobid, r.stepid, r.pid, r.hash, r.host, r.time))


@dataclass(frozen=True)
class ProcessDelta:
    """One pull of the live record stream: what changed since the last cursor.

    ``new_records`` are the records finalized since the previous cursor, in
    store rowid (finalization) order -- each record appears in exactly one
    delta, so consumers can fold them into accumulators without rescanning.
    ``open_records`` is the *current* non-destructive peek at still-open
    process groups; it is transient (re-peeked on every pull, superseded by
    the next delta) and may include a key that is already finalized when a
    very late message resurrected it -- consumers overlay it on top of their
    committed state, dropping keys they have already seen, exactly as
    :meth:`ShardedIngest.snapshot` does.  ``cursor`` is the new high-water
    mark to pass to the next :meth:`ShardedIngest.snapshot_delta` call.
    """

    new_records: tuple[ProcessRecord, ...]
    open_records: tuple[ProcessRecord, ...]
    cursor: int


def shard_of(message: UDPMessage, shards: int) -> int:
    """Deterministic shard index for a message's process key."""
    key = (f"{message.jobid}\x1f{message.stepid}\x1f{message.pid}\x1f"
           f"{message.path_hash}\x1f{message.host}\x1f{message.time}")
    return fnv1a_32(key.encode("utf-8")) % shards


@dataclass
class ShardedIngest:
    """Partition a datagram stream across independent streaming consolidators.

    With ``shards=1`` this degenerates to a single receiver + consolidator --
    the campaign's plain ``ingest_mode="streaming"`` wiring uses exactly that.
    All shards share one :class:`MessageStore`; their process-key sets are
    disjoint, so the upsert flushes never collide.
    """

    store: MessageStore
    shards: int = 1
    batch_size: int = 500
    flush_batch_size: int = 64
    idle_epochs: int = 2
    persist_raw: bool = False
    decode_errors: int = 0
    receivers: list[MessageReceiver] = field(init=False)
    consolidators: list[IncrementalConsolidator] = field(init=False)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise TransportError("ingest needs at least one shard")
        self.consolidators = [
            IncrementalConsolidator(self.store, flush_batch_size=self.flush_batch_size,
                                    idle_epochs=self.idle_epochs)
            for _ in range(self.shards)
        ]
        self.receivers = [
            MessageReceiver(self.store, batch_size=self.batch_size, sink=consolidator,
                            persist_raw=self.persist_raw)
            for consolidator in self.consolidators
        ]

    # ------------------------------------------------------------------ #
    # datagram path
    # ------------------------------------------------------------------ #
    def attach(self, channel: Channel) -> None:
        """Subscribe the front to a channel."""
        channel.subscribe(self.handle_datagram)

    def handle_datagram(self, datagram: bytes) -> None:
        """Decode once, route to the owning shard."""
        try:
            message = UDPMessage.decode(datagram)
        except TransportError:
            self.decode_errors += 1
            return
        shard = shard_of(message, self.shards) if self.shards > 1 else 0
        self.receivers[shard].handle_message(message)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def flush(self) -> int:
        """Flush every shard's receiver buffer; returns messages delivered."""
        return sum(receiver.flush() for receiver in self.receivers)

    def snapshot(self) -> list[ProcessRecord]:
        """Live view: flush every shard, then read the shared store once.

        Finalized records come back from the ``processes`` table (each shard
        flushes its pending batch first; memory holds only in-flight
        groups); still-open groups are peeked non-destructively.  Returned
        in canonical process-key order -- the order the batch consolidator
        emits -- so downstream analyses see the same sequence regardless of
        shard count.
        """
        self.flush()
        for consolidator in self.consolidators:
            consolidator.flush()
        records = self.store.load_processes()
        finalized = {(r.jobid, r.stepid, r.pid, r.hash, r.host, r.time) for r in records}
        for consolidator in self.consolidators:
            records.extend(r for r in consolidator.peek_open()
                           if (r.jobid, r.stepid, r.pid, r.hash, r.host, r.time)
                           not in finalized)
        return _in_key_order(records)

    def snapshot_delta(self, cursor: int = 0) -> ProcessDelta:
        """Incremental live view: only what changed since ``cursor``.

        Flushes every shard exactly like :meth:`snapshot`, but instead of
        reading the whole ``processes`` table back, reads only rows past the
        rowid high-water mark -- so the cost of a mid-campaign pull is
        proportional to the records finalized since the last pull (plus the
        handful of still-open groups), not to the campaign so far.  Records
        finalized through the first-close-wins insert are immutable, which
        is what makes the rowid cursor a correct delta stream (see
        :meth:`MessageStore.load_processes_since`).
        """
        self.flush()
        for consolidator in self.consolidators:
            consolidator.flush()
        new_records, cursor = self.store.load_processes_since(cursor)
        open_records = [record for consolidator in self.consolidators
                        for record in consolidator.peek_open()]
        return ProcessDelta(new_records=tuple(new_records),
                            open_records=tuple(open_records), cursor=cursor)

    def finalize(self) -> list[ProcessRecord]:
        """End of stream: flush, close every shard, return all records.

        Like :meth:`snapshot`, read back from the shared store and returned
        in canonical process-key order.
        """
        self.flush()
        for consolidator in self.consolidators:
            consolidator.close_all()
        return _in_key_order(self.store.load_processes())

    # ------------------------------------------------------------------ #
    # merged counters
    # ------------------------------------------------------------------ #
    @property
    def messages_received(self) -> int:
        """Messages accepted across all shards."""
        return sum(receiver.messages_received for receiver in self.receivers)

    @property
    def records_built(self) -> int:
        """Records finalized across all shards."""
        return sum(consolidator.records_built for consolidator in self.consolidators)

    @property
    def open_processes(self) -> int:
        """Process groups currently open across all shards."""
        return sum(consolidator.open_processes for consolidator in self.consolidators)

    @property
    def peak_open_processes(self) -> int:
        """Sum of per-shard peaks (an upper bound on the true joint peak)."""
        return sum(consolidator.peak_open_processes for consolidator in self.consolidators)

    def statistics(self) -> dict[str, int]:
        """Merged operational counters of all shards plus the front."""
        merged: dict[str, int] = {"shards": self.shards, "decode_errors": self.decode_errors,
                                  "messages_received": self.messages_received}
        for consolidator in self.consolidators:
            for name, value in consolidator.statistics().items():
                merged[name] = merged.get(name, 0) + value
        merged["peak_open_processes"] = self.peak_open_processes
        return merged
