"""Sharded streaming ingest: N receiver + consolidator workers behind one front.

The paper's receiver is a single UDP server; at the traffic the roadmap aims
for, one consolidator becomes the bottleneck long before the network does.
:class:`ShardedIngest` partitions the datagram stream across ``shards``
independent :class:`~repro.transport.receiver.MessageReceiver` +
:class:`~repro.ingest.incremental.IncrementalConsolidator` pairs, keyed by a
stable FNV-1a hash of the process header -- every message of one process
lands on the same shard, so each shard consolidates a disjoint set of
process keys and the shard outputs merely concatenate.

Two worker backends (``workers=``):

* ``"thread"`` -- all shards live in this interpreter.  The front decodes
  each datagram exactly once (counting decode errors centrally) and routes
  the decoded message via the receivers' pre-decoded fast path, so sharding
  adds routing cost but no second decode.  Cheap and simple, but the shards
  share one GIL: with CPU-bound consolidation this mode cannot beat a single
  streaming consolidator.
* ``"process"`` -- each shard is a real OS process
  (:class:`~repro.ingest.procworkers.ProcessShardPool`) owning its own store
  and consolidator.  The front routes **raw datagram bytes** by hashing the
  header slice directly (:func:`shard_of_datagram` -- no decode at all on
  the fast path) and merges finalized records back into the shared store at
  every sync point, so ``snapshot()`` / ``snapshot_delta()`` / ``finalize()``
  keep their exact thread-mode semantics while decode + consolidation run on
  as many cores as there are shards.

Shard assignment is deterministic across runs and processes (FNV, not
Python's randomised ``hash``), keeping campaign results reproducible
counter-for-counter, not just record-for-record.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.store import MessageStore, ProcessRecord
from repro.faults.plan import FaultPlan
from repro.hashing.fnv import fnv1a_32
from repro.ingest.incremental import IncrementalConsolidator
from repro.ingest.procworkers import DEFAULT_RESEND_WINDOW, ProcessShardPool
from repro.transport.channel import Channel
from repro.transport.messages import UDPMessage
from repro.transport.receiver import DatagramQuarantine, MessageReceiver
from repro.util.errors import TransportError

#: Raw-datagram prefix of a SIREN message (protocol tag + field separator).
_RAW_TAG = b"SIREN1\x1f"
_RAW_SEPARATOR = b"\x1f"


def _in_key_order(records: list[ProcessRecord]) -> list[ProcessRecord]:
    """Sort records by the process header key (the batch consolidator's order)."""
    return sorted(records, key=lambda r: (r.jobid, r.stepid, r.pid, r.hash, r.host, r.time))


@dataclass(frozen=True)
class ProcessDelta:
    """One pull of the live record stream: what changed since the last cursor.

    ``new_records`` are the records finalized since the previous cursor, in
    store rowid (finalization) order -- each record appears in exactly one
    delta, so consumers can fold them into accumulators without rescanning.
    ``open_records`` is the *current* non-destructive peek at still-open
    process groups; it is transient (re-peeked on every pull, superseded by
    the next delta) and may include a key that is already finalized when a
    very late message resurrected it -- consumers overlay it on top of their
    committed state, dropping keys they have already seen, exactly as
    :meth:`ShardedIngest.snapshot` does.  ``cursor`` is the new high-water
    mark to pass to the next :meth:`ShardedIngest.snapshot_delta` call.
    """

    new_records: tuple[ProcessRecord, ...]
    open_records: tuple[ProcessRecord, ...]
    cursor: int


def shard_of(message: UDPMessage, shards: int) -> int:
    """Deterministic shard index for a message's process key."""
    key = (f"{message.jobid}\x1f{message.stepid}\x1f{message.pid}\x1f"
           f"{message.path_hash}\x1f{message.host}\x1f{message.time}")
    return fnv1a_32(key.encode("utf-8")) % shards


def shard_of_datagram(datagram: bytes, shards: int) -> int | None:
    """Shard index straight from raw datagram bytes; ``None`` if malformed.

    The encoded header lays the six process-key fields (``JOBID`` through
    ``TIME``) contiguously between the protocol tag and the seventh field
    separator, so the byte slice covering them *is* the UTF-8 encoding of
    the key string :func:`shard_of` hashes -- for any datagram produced by
    :meth:`~repro.transport.messages.UDPMessage.encode`, this returns the
    same shard without decoding anything.  Datagrams that do not even carry
    a plausible SIREN header are screened out here (``None``) and counted by
    the front; deeper malformations surface at the worker's real decode.
    """
    if not datagram.startswith(_RAW_TAG):
        return None
    start = len(_RAW_TAG)
    end = start
    for _ in range(6):
        end = datagram.find(_RAW_SEPARATOR, end)
        if end < 0:
            return None
        end += 1
    return fnv1a_32(datagram[start:end - 1]) % shards


@dataclass
class ShardedIngest:
    """Partition a datagram stream across independent streaming consolidators.

    With ``shards=1`` this degenerates to a single receiver + consolidator --
    the campaign's plain ``ingest_mode="streaming"`` wiring uses exactly that.
    In thread mode all shards share one :class:`MessageStore`; their
    process-key sets are disjoint, so the upsert flushes never collide.  In
    process mode (``workers="process"``) each shard owns a private store and
    finalized records are merged into the shared store at every
    snapshot/delta/finalize sync -- identical table contents, identical
    delta-cursor semantics, true multi-core decode and consolidation.

    Process-mode caveats: operational counters (``messages_received``,
    ``records_built``, ``statistics()``...) reflect the *last sync*, not the
    instant they are read; and with ``persist_raw=True`` the front must
    decode datagrams itself to persist them, giving up most of the routing
    cheapness (pure streaming -- ``persist_raw=False`` -- is the fast path).
    A dead worker is detected at the next queue interaction or sync and
    *healed*: the pool restarts it up to ``max_restarts`` times with
    exponential backoff, replaying every batch not yet acknowledged by a
    sync (a per-shard resend buffer of ``resend_window`` batches).  When the
    replay window covers the crash, the record output is identical to an
    uncrashed run; losses beyond it surface honestly in :meth:`statistics`
    (``restart_lost_groups`` / ``restart_lost_datagrams``).  Past the
    restart budget the crash surfaces as
    :class:`~repro.util.errors.WorkerCrashError` instead of a hang
    (``max_restarts=0`` restores fail-fast).

    ``quarantine_capacity`` keeps the raw bytes and decode-failure reason of
    the most recent undecodable datagrams in a bounded ring
    (:class:`~repro.transport.receiver.DatagramQuarantine`) for forensics --
    both front-screened and worker-side failures land there.  A
    :class:`~repro.faults.plan.FaultPlan` arms deterministic worker faults
    (kill/stall) in process mode; its channel and store profiles are applied
    by the campaign layer, not here.
    """

    store: MessageStore
    shards: int = 1
    batch_size: int = 500
    flush_batch_size: int = 64
    idle_epochs: int = 2
    persist_raw: bool = False
    workers: str = "thread"
    max_restarts: int = 2
    resend_window: int = DEFAULT_RESEND_WINDOW
    stall_timeout: float | None = 60.0
    quarantine_capacity: int = 256
    fault_plan: FaultPlan | None = None
    receivers: list[MessageReceiver] = field(init=False, default_factory=list)
    consolidators: list[IncrementalConsolidator] = field(init=False, default_factory=list)
    quarantine: DatagramQuarantine | None = field(init=False, default=None)
    _front_decode_errors: int = field(init=False, default=0)
    _pool: ProcessShardPool | None = field(init=False, default=None)
    _raw_buffer: list[UDPMessage] = field(init=False, default_factory=list)
    _finalized: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise TransportError("ingest needs at least one shard")
        if self.workers not in ("thread", "process"):
            raise TransportError(
                f"unknown ingest workers {self.workers!r} "
                "(expected 'thread' or 'process')")
        if self.quarantine_capacity < 0:
            raise TransportError("quarantine_capacity may not be negative")
        if self.quarantine_capacity:
            self.quarantine = DatagramQuarantine(capacity=self.quarantine_capacity)
        if self.workers == "process":
            worker_faults = None
            if self.fault_plan is not None and self.fault_plan.workers:
                worker_faults = {profile.shard: profile
                                 for profile in self.fault_plan.workers}
            self._pool = ProcessShardPool(
                self.shards, batch_size=self.batch_size,
                flush_batch_size=self.flush_batch_size,
                idle_epochs=self.idle_epochs,
                max_restarts=self.max_restarts,
                resend_window=self.resend_window,
                stall_timeout=self.stall_timeout,
                quarantine=self.quarantine,
                worker_faults=worker_faults)
            return
        self.consolidators = [
            IncrementalConsolidator(self.store, flush_batch_size=self.flush_batch_size,
                                    idle_epochs=self.idle_epochs)
            for _ in range(self.shards)
        ]
        self.receivers = [
            MessageReceiver(self.store, batch_size=self.batch_size, sink=consolidator,
                            persist_raw=self.persist_raw, quarantine=self.quarantine)
            for consolidator in self.consolidators
        ]

    # ------------------------------------------------------------------ #
    # datagram path
    # ------------------------------------------------------------------ #
    def attach(self, channel: Channel) -> None:
        """Subscribe the front to a channel."""
        channel.subscribe(self.handle_datagram)

    def handle_datagram(self, datagram: bytes) -> None:
        """Route one datagram to the owning shard.

        Thread mode decodes here (once, centrally); process mode routes the
        raw bytes by their header slice and lets the owning worker decode.
        """
        if self._pool is not None:
            shard = shard_of_datagram(datagram, self.shards)
            if shard is None:
                self._front_decode_errors += 1
                if self.quarantine is not None:
                    self.quarantine.capture(
                        datagram, "datagram does not carry a SIREN header")
                return
            if self.persist_raw:
                try:
                    message = UDPMessage.decode(datagram)
                except TransportError as error:
                    self._front_decode_errors += 1
                    if self.quarantine is not None:
                        self.quarantine.capture(datagram, str(error))
                    return
                self._raw_buffer.append(message)
                if len(self._raw_buffer) >= self.batch_size:
                    self._flush_raw()
            self._pool.route(shard, datagram)
            return
        try:
            message = UDPMessage.decode(datagram)
        except TransportError as error:
            self._front_decode_errors += 1
            if self.quarantine is not None:
                self.quarantine.capture(datagram, str(error))
            return
        shard = shard_of(message, self.shards) if self.shards > 1 else 0
        self.receivers[shard].handle_message(message)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _flush_raw(self) -> None:
        """Persist the front's raw-message buffer (process mode + persist_raw)."""
        if self._raw_buffer:
            self.store.insert_many(self._raw_buffer)
            self._raw_buffer.clear()

    def flush(self) -> int:
        """Flush every shard's buffer; returns messages delivered/shipped."""
        if self._pool is not None:
            self._flush_raw()
            return self._pool.flush()
        return sum(receiver.flush() for receiver in self.receivers)

    def _sync_pool(self) -> None:
        """Ship pending batches, merge newly finalized records into the store."""
        assert self._pool is not None
        self._flush_raw()
        new_records = self._pool.sync()
        if new_records:
            self.store.insert_processes_if_absent(new_records)

    def snapshot(self) -> list[ProcessRecord]:
        """Live view: flush every shard, then read the shared store once.

        Finalized records come back from the ``processes`` table (each shard
        flushes its pending batch first; memory holds only in-flight
        groups); still-open groups are peeked non-destructively.  Returned
        in canonical process-key order -- the order the batch consolidator
        emits -- so downstream analyses see the same sequence regardless of
        shard count or worker backend.
        """
        if self._pool is not None:
            if not self._finalized:
                self._sync_pool()
            open_peeks = self._pool.open_records
        else:
            self.flush()
            for consolidator in self.consolidators:
                consolidator.flush()
            open_peeks = [record for consolidator in self.consolidators
                          for record in consolidator.peek_open()]
        records = self.store.load_processes()
        finalized = {(r.jobid, r.stepid, r.pid, r.hash, r.host, r.time) for r in records}
        records.extend(r for r in open_peeks
                       if (r.jobid, r.stepid, r.pid, r.hash, r.host, r.time)
                       not in finalized)
        return _in_key_order(records)

    def snapshot_delta(self, cursor: int = 0) -> ProcessDelta:
        """Incremental live view: only what changed since ``cursor``.

        Flushes every shard exactly like :meth:`snapshot`, but instead of
        reading the whole ``processes`` table back, reads only rows past the
        rowid high-water mark -- so the cost of a mid-campaign pull is
        proportional to the records finalized since the last pull (plus the
        handful of still-open groups), not to the campaign so far.  Records
        finalized through the first-close-wins insert are immutable, which
        is what makes the rowid cursor a correct delta stream (see
        :meth:`MessageStore.load_processes_since`); in process mode the
        records are merged into the shared store during this call's sync,
        *before* the cursor read, so the exactly-once contract is unchanged.
        """
        if self._pool is not None:
            if not self._finalized:
                self._sync_pool()
            open_records = self._pool.open_records
        else:
            self.flush()
            for consolidator in self.consolidators:
                consolidator.flush()
            open_records = [record for consolidator in self.consolidators
                            for record in consolidator.peek_open()]
        new_records, cursor = self.store.load_processes_since(cursor)
        return ProcessDelta(new_records=tuple(new_records),
                            open_records=tuple(open_records), cursor=cursor)

    def finalize(self) -> list[ProcessRecord]:
        """End of stream: flush, close every shard, return all records.

        Like :meth:`snapshot`, read back from the shared store and returned
        in canonical process-key order.  In process mode this also joins
        every worker process (a worker that died instead surfaces as
        :class:`TransportError`); calling it again is harmless and simply
        re-reads the store.
        """
        if self._pool is not None:
            if not self._finalized:
                self._flush_raw()
                new_records = self._pool.close()
                if new_records:
                    self.store.insert_processes_if_absent(new_records)
                self._finalized = True
            return _in_key_order(self.store.load_processes())
        self.flush()
        for consolidator in self.consolidators:
            consolidator.close_all()
        return _in_key_order(self.store.load_processes())

    def close(self) -> None:
        """Abort path: stop process workers without a final merge.

        Records not yet synced to the shared store are discarded -- use
        :meth:`finalize` for a clean end of stream.  A no-op in thread mode
        and after :meth:`finalize`.
        """
        if self._pool is not None and not self._finalized:
            self._pool.terminate()
            self._finalized = True

    # ------------------------------------------------------------------ #
    # merged counters
    # ------------------------------------------------------------------ #
    @property
    def decode_errors(self) -> int:
        """Undecodable datagrams (front screening plus, in process mode,
        worker-side decode failures as of the last sync)."""
        if self._pool is not None:
            return self._front_decode_errors + self._pool.decode_errors
        return self._front_decode_errors

    @property
    def messages_received(self) -> int:
        """Messages accepted across all shards (last sync, in process mode)."""
        if self._pool is not None:
            return self._pool.messages_received
        return sum(receiver.messages_received for receiver in self.receivers)

    @property
    def records_built(self) -> int:
        """Records finalized across all shards (last sync, in process mode)."""
        if self._pool is not None:
            return self._pool.stat_sum("records_built")
        return sum(consolidator.records_built for consolidator in self.consolidators)

    @property
    def open_processes(self) -> int:
        """Process groups currently open across all shards."""
        if self._pool is not None:
            return self._pool.stat_sum("open_processes")
        return sum(consolidator.open_processes for consolidator in self.consolidators)

    @property
    def peak_open_processes(self) -> int:
        """Sum of per-shard peaks (an upper bound on the true joint peak)."""
        if self._pool is not None:
            return self._pool.stat_sum("peak_open_processes")
        return sum(consolidator.peak_open_processes for consolidator in self.consolidators)

    @property
    def quarantined(self) -> int:
        """Undecodable datagrams captured in the quarantine ring (0 when off)."""
        return len(self.quarantine) if self.quarantine is not None else 0

    @property
    def worker_restarts(self) -> int:
        """Supervised worker restarts so far (always 0 in thread mode)."""
        return self._pool.worker_restarts if self._pool is not None else 0

    def statistics(self) -> dict[str, int]:
        """Merged operational counters of all shards plus the front.

        Counter-for-counter identical between worker backends after a sync
        point (the shard partition is the same FNV function either way); in
        process mode the values are as of the last sync.  The resilience
        counters (``worker_restarts``, ``restart_lost_groups``,
        ``restart_lost_datagrams``, ``resend_replayed_batches``,
        ``resend_overflow_batches``) are structurally zero in thread mode --
        present so the two backends stay key-for-key comparable.
        """
        merged: dict[str, int] = {"shards": self.shards, "decode_errors": self.decode_errors,
                                  "messages_received": self.messages_received,
                                  "quarantined": self.quarantined}
        if self._pool is not None:
            for name, value in self._pool.merged_statistics().items():
                merged[name] = merged.get(name, 0) + value
            merged.update(self._pool.restart_statistics())
        else:
            for consolidator in self.consolidators:
                for name, value in consolidator.statistics().items():
                    merged[name] = merged.get(name, 0) + value
            merged.update({"worker_restarts": 0, "restart_lost_groups": 0,
                           "restart_lost_datagrams": 0, "resend_replayed_batches": 0,
                           "resend_overflow_batches": 0})
        merged["peak_open_processes"] = self.peak_open_processes
        return merged
