"""The SIREN UDP message format.

Every datagram carries a header identifying the originating process plus the
payload.  The header fields follow Section 3.1 of the paper:

``JOBID, STEPID, PID, HASH, HOST, TIME, LAYER, TYPE, CONTENT``

where ``HASH`` is the (128-bit) xxHash of the executable path -- its only
purpose is to distinguish different executables that reuse the same PID within
the same one-second timestamp (``exec()`` replacing the process image).  Two
extra fields, ``CHUNK`` and ``CHUNKS``, implement chunking of long contents.

Datagrams are serialised as UTF-8 text with unit-separator (0x1F) delimited
fields, preceded by a short protocol tag, and must fit in
:data:`MAX_DATAGRAM_SIZE` bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.collector.records import InfoType, Layer
from repro.util.errors import TransportError

#: Conservative safe UDP payload size (bytes) used when chunking content.
MAX_DATAGRAM_SIZE = 1400

_PROTOCOL_TAG = "SIREN1"
_SEPARATOR = "\x1f"
_FIELD_COUNT = 12


@dataclass(frozen=True)
class UDPMessage:
    """One SIREN datagram (or one chunk of a chunked message)."""

    jobid: str
    stepid: str
    pid: int
    path_hash: str
    host: str
    time: int
    layer: Layer
    info_type: InfoType
    content: str
    chunk_index: int = 0
    chunk_total: int = 1

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def encode(self) -> bytes:
        """Serialise to datagram bytes."""
        if _SEPARATOR in self.content:
            raise TransportError("message content may not contain the field separator")
        fields = [
            _PROTOCOL_TAG,
            self.jobid,
            self.stepid,
            str(self.pid),
            self.path_hash,
            self.host,
            str(self.time),
            self.layer.value,
            self.info_type.value,
            str(self.chunk_index),
            str(self.chunk_total),
            self.content,
        ]
        return _SEPARATOR.join(fields).encode("utf-8")

    @classmethod
    def decode(cls, datagram: bytes) -> "UDPMessage":
        """Parse datagram bytes back into a message."""
        try:
            text = datagram.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TransportError("datagram is not valid UTF-8") from exc
        fields = text.split(_SEPARATOR, _FIELD_COUNT - 1)
        if len(fields) != _FIELD_COUNT or fields[0] != _PROTOCOL_TAG:
            raise TransportError("datagram does not carry a SIREN message")
        try:
            return cls(
                jobid=fields[1],
                stepid=fields[2],
                pid=int(fields[3]),
                path_hash=fields[4],
                host=fields[5],
                time=int(fields[6]),
                layer=Layer(fields[7]),
                info_type=InfoType(fields[8]),
                chunk_index=int(fields[9]),
                chunk_total=int(fields[10]),
                content=fields[11],
            )
        except ValueError as exc:
            raise TransportError(f"malformed SIREN datagram: {exc}") from exc

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @property
    def process_key(self) -> tuple[str, str, int, str, str]:
        """Key identifying the originating process (job, step, pid, path hash, host)."""
        return (self.jobid, self.stepid, self.pid, self.path_hash, self.host)

    def with_chunk(self, content: str, index: int, total: int) -> "UDPMessage":
        """Copy of this message carrying one chunk of a longer content."""
        if (content == self.content and index == self.chunk_index
                and total == self.chunk_total):
            return self
        return replace(self, content=content, chunk_index=index, chunk_total=total)

    def header_prefix(self) -> str:
        """The constant-per-message field prefix (everything before CHUNK)."""
        return _SEPARATOR.join((
            _PROTOCOL_TAG,
            self.jobid,
            self.stepid,
            str(self.pid),
            self.path_hash,
            self.host,
            str(self.time),
            self.layer.value,
            self.info_type.value,
        ))

    def header_overhead(self) -> int:
        """Encoded size of the message with empty content (bytes).

        Computed arithmetically from the header prefix -- no dataclass copy,
        no second :meth:`encode` -- but pinned byte-equal to
        ``len(replace(self, content="").encode())`` by the transport tests.
        """
        return (len(self.header_prefix().encode("utf-8"))
                + len(str(self.chunk_index)) + len(str(self.chunk_total)) + 3)

    def chunk_datagrams(self, chunks: list[str]) -> list[bytes]:
        """Encode one datagram per chunk of this message's content.

        Byte-identical to ``[self.with_chunk(c, i, len(chunks)).encode() for
        i, c in enumerate(chunks)]`` but encodes the shared header prefix
        once instead of re-serialising all twelve fields per chunk.  The
        separator check runs once against the full content; chunks produced
        by :func:`~repro.transport.chunking.split_content` cannot introduce
        bytes that were not already present.
        """
        if _SEPARATOR in self.content:
            raise TransportError("message content may not contain the field separator")
        prefix = self.header_prefix()
        total = len(chunks)
        return [
            f"{prefix}{_SEPARATOR}{index}{_SEPARATOR}{total}{_SEPARATOR}{chunk}"
            .encode("utf-8")
            for index, chunk in enumerate(chunks)
        ]
