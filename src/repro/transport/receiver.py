"""The message receiver (the paper's Go UDP server, in Python).

The receiver decodes incoming datagrams and hands them to its sinks.
Malformed datagrams are counted and dropped -- a receiver on a busy cluster
cannot afford to crash because one packet was garbled.

Two sinks are supported, independently switchable:

* **raw persistence** (``persist_raw=True``, the classic batch-ingest path):
  decoded messages are batch-inserted into the SQLite ``messages`` table, to
  be consolidated by a post-pass;
* **a streaming sink** (``sink=...``): every flushed batch is fed to an
  incremental consolidator, which builds process records *while the campaign
  runs*.  Each flush also advances the sink's idle epoch, so the sink's
  straggler-closing clock ticks in receiver batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.db.store import MessageStore
from repro.transport.channel import Channel
from repro.transport.messages import UDPMessage
from repro.util.errors import TransportError


class MessageSink(Protocol):
    """Anything that can consume decoded messages incrementally."""

    def feed_many(self, messages: list[UDPMessage]) -> None:
        """Consume one flushed batch of decoded messages."""
        ...

    def advance_epoch(self) -> int:
        """One batch boundary passed (the sink's idle/straggler clock)."""
        ...


@dataclass
class MessageReceiver:
    """Decode datagrams and deliver them to the raw store and/or a streaming sink."""

    store: MessageStore
    messages_received: int = 0
    decode_errors: int = 0
    _buffer: list[UDPMessage] = field(default_factory=list)
    batch_size: int = 500
    sink: MessageSink | None = None
    persist_raw: bool = True

    def attach(self, channel: Channel) -> None:
        """Subscribe to a channel so every delivered datagram reaches the sinks."""
        channel.subscribe(self.handle_datagram)

    def handle_datagram(self, datagram: bytes) -> None:
        """Decode one datagram and buffer it for delivery."""
        try:
            message = UDPMessage.decode(datagram)
        except TransportError:
            self.decode_errors += 1
            return
        self.handle_message(message)

    def handle_message(self, message: UDPMessage) -> None:
        """Buffer one already-decoded message (the sharded front's fast path)."""
        self._buffer.append(message)
        self.messages_received += 1
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def flush(self) -> int:
        """Deliver all buffered messages to the sinks; returns how many."""
        if not self._buffer:
            return 0
        delivered = len(self._buffer)
        if self.persist_raw:
            self.store.insert_many(self._buffer)
        if self.sink is not None:
            self.sink.feed_many(self._buffer)
            self.sink.advance_epoch()
        self._buffer.clear()
        return delivered
