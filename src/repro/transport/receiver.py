"""The message receiver (the paper's Go UDP server, in Python).

The receiver decodes incoming datagrams and inserts them into the SQLite
message store.  Malformed datagrams are counted and dropped -- a receiver on a
busy cluster cannot afford to crash because one packet was garbled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.store import MessageStore
from repro.transport.channel import Channel
from repro.transport.messages import UDPMessage
from repro.util.errors import TransportError


@dataclass
class MessageReceiver:
    """Decode datagrams and persist them."""

    store: MessageStore
    messages_received: int = 0
    decode_errors: int = 0
    _buffer: list[UDPMessage] = field(default_factory=list)
    batch_size: int = 500

    def attach(self, channel: Channel) -> None:
        """Subscribe to a channel so every delivered datagram reaches the store."""
        channel.subscribe(self.handle_datagram)

    def handle_datagram(self, datagram: bytes) -> None:
        """Decode one datagram and buffer it for insertion."""
        try:
            message = UDPMessage.decode(datagram)
        except TransportError:
            self.decode_errors += 1
            return
        self._buffer.append(message)
        self.messages_received += 1
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def flush(self) -> int:
        """Insert all buffered messages into the store; returns how many."""
        if not self._buffer:
            return 0
        inserted = self.store.insert_many(self._buffer)
        self._buffer.clear()
        return inserted
