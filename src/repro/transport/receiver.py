"""The message receiver (the paper's Go UDP server, in Python).

The receiver decodes incoming datagrams and hands them to its sinks.
Malformed datagrams are counted and dropped -- a receiver on a busy cluster
cannot afford to crash because one packet was garbled.  Optionally they are
also *quarantined*: :class:`DatagramQuarantine` keeps a bounded ring of the
raw bytes plus the decode-failure reason, so corruption on a production link
leaves a forensic trail instead of only a counter.

Two sinks are supported, independently switchable:

* **raw persistence** (``persist_raw=True``, the classic batch-ingest path):
  decoded messages are batch-inserted into the SQLite ``messages`` table, to
  be consolidated by a post-pass;
* **a streaming sink** (``sink=...``): every flushed batch is fed to an
  incremental consolidator, which builds process records *while the campaign
  runs*.  Each flush also advances the sink's idle epoch, so the sink's
  straggler-closing clock ticks in receiver batches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Protocol

from repro.db.store import MessageStore
from repro.transport.channel import Channel
from repro.transport.messages import UDPMessage
from repro.util.errors import TransportError


@dataclass(frozen=True)
class QuarantinedDatagram:
    """One undecodable datagram, kept verbatim for forensics."""

    datagram: bytes  #: the raw bytes exactly as they arrived
    reason: str      #: the decode failure (the TransportError message)


@dataclass
class DatagramQuarantine:
    """A bounded ring of corrupt datagrams and why each failed to decode.

    ``quarantined`` counts every capture ever made; the ring itself holds at
    most ``capacity`` entries (oldest evicted first, counted in ``evicted``),
    so a sustained corruption storm cannot grow memory without bound while
    the most recent evidence is always available.  One quarantine instance
    may be shared by several receivers/shards -- captures are merely appends.
    """

    capacity: int = 256
    quarantined: int = 0
    evicted: int = 0
    _entries: deque = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise TransportError("quarantine capacity must be at least 1")
        self._entries = deque(maxlen=self.capacity)

    def capture(self, datagram: bytes, reason: str) -> None:
        """Keep one corrupt datagram (evicting the oldest beyond capacity)."""
        self.quarantined += 1
        if len(self._entries) == self.capacity:
            self.evicted += 1
        self._entries.append(QuarantinedDatagram(datagram=bytes(datagram),
                                                 reason=reason))

    def extend(self, entries: "list[QuarantinedDatagram]") -> None:
        """Merge captures shipped back from a remote worker (process shards)."""
        for entry in entries:
            self.capture(entry.datagram, entry.reason)

    def entries(self) -> "list[QuarantinedDatagram]":
        """The retained datagrams, oldest first."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


class MessageSink(Protocol):
    """Anything that can consume decoded messages incrementally."""

    def feed_many(self, messages: list[UDPMessage]) -> None:
        """Consume one flushed batch of decoded messages."""
        ...

    def advance_epoch(self) -> int:
        """One batch boundary passed (the sink's idle/straggler clock)."""
        ...


@dataclass
class MessageReceiver:
    """Decode datagrams and deliver them to the raw store and/or a streaming sink."""

    store: MessageStore
    messages_received: int = 0
    decode_errors: int = 0
    _buffer: list[UDPMessage] = field(default_factory=list)
    batch_size: int = 500
    sink: MessageSink | None = None
    persist_raw: bool = True
    quarantine: DatagramQuarantine | None = None

    def attach(self, channel: Channel) -> None:
        """Subscribe to a channel so every delivered datagram reaches the sinks."""
        channel.subscribe(self.handle_datagram)

    def handle_datagram(self, datagram: bytes) -> None:
        """Decode one datagram and buffer it for delivery.

        Undecodable datagrams are counted (and, with a quarantine attached,
        captured with their raw bytes and the failure reason) -- never raised.
        """
        try:
            message = UDPMessage.decode(datagram)
        except TransportError as error:
            self.decode_errors += 1
            if self.quarantine is not None:
                self.quarantine.capture(datagram, str(error))
            return
        self.handle_message(message)

    def handle_message(self, message: UDPMessage) -> None:
        """Buffer one already-decoded message (the sharded front's fast path)."""
        self._buffer.append(message)
        self.messages_received += 1
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def flush(self) -> int:
        """Deliver all buffered messages to the sinks; returns how many."""
        if not self._buffer:
            return 0
        delivered = len(self._buffer)
        if self.persist_raw:
            self.store.insert_many(self._buffer)
        if self.sink is not None:
            self.sink.feed_many(self._buffer)
            self.sink.advance_epoch()
        self._buffer.clear()
        return delivered
