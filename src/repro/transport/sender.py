"""The UDP message sender embedded in the collector.

The sender is "fire and forget": it chunks long contents, encodes each chunk
as a datagram and hands it to the channel.  Any error raised by the channel is
swallowed (and counted) -- the one thing the sender must never do is disturb
the hooked user process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.transport.channel import Channel
from repro.transport.chunking import split_content
from repro.transport.messages import MAX_DATAGRAM_SIZE, UDPMessage


@dataclass
class UDPSender:
    """Chunk, encode and transmit SIREN messages over a channel."""

    channel: Channel
    max_datagram_size: int = MAX_DATAGRAM_SIZE
    messages_sent: int = 0
    datagrams_sent: int = 0
    send_errors: int = 0

    def send(self, message: UDPMessage) -> int:
        """Send one logical message; returns the number of datagrams emitted."""
        overhead = message.header_overhead() + 16  # margin for chunk counters
        budget = max(self.max_datagram_size - overhead, 64)
        chunks = split_content(message.content, budget)
        total = len(chunks)
        emitted = 0
        for index, chunk in enumerate(chunks):
            datagram = message.with_chunk(chunk, index, total).encode()
            try:
                self.channel.send(datagram)
            except Exception:  # noqa: BLE001 - fire and forget, never propagate
                self.send_errors += 1
            else:
                emitted += 1
        self.messages_sent += 1
        self.datagrams_sent += emitted
        return emitted

    def send_all(self, messages: list[UDPMessage]) -> int:
        """Send a batch of messages; returns the total datagrams emitted."""
        return sum(self.send(message) for message in messages)
