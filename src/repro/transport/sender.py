"""The UDP message sender embedded in the collector.

The sender is "fire and forget": it chunks long contents, encodes each chunk
as a datagram and hands it to the channel.  Any error raised by the channel is
swallowed (and counted) -- the one thing the sender must never do is disturb
the hooked user process.

Profiling the campaign driver showed encoding, not channel delivery, as the
sender's dominant cost: the historical path serialised every message twice
(once inside ``header_overhead`` and once per chunk) through a dataclass
copy.  The default fast path now encodes the header prefix once per message
and reuses it across chunks -- byte-identical datagrams, pinned by the
transport tests.  ``fast_encode=False`` keeps the reference path alive for
A/B measurement in ``benchmarks/bench_campaign_profile.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.transport.channel import Channel
from repro.transport.chunking import split_content
from repro.transport.messages import MAX_DATAGRAM_SIZE, UDPMessage
from repro.util.timing import NULL_TIMER, StageTimer


@dataclass
class UDPSender:
    """Chunk, encode and transmit SIREN messages over a channel."""

    channel: Channel
    max_datagram_size: int = MAX_DATAGRAM_SIZE
    fast_encode: bool = True
    timer: StageTimer = field(default=NULL_TIMER, repr=False)
    messages_sent: int = 0
    datagrams_sent: int = 0
    send_errors: int = 0

    def send(self, message: UDPMessage) -> int:
        """Send one logical message; returns the number of datagrams emitted."""
        with self.timer.section("transport.encode"):
            if self.fast_encode:
                overhead = message.header_overhead() + 16  # chunk-counter margin
            else:
                # Faithful reference: the seed probed the overhead by encoding
                # a content-less copy of the message (a second full encode).
                overhead = len(replace(message, content="").encode()) + 16
            budget = max(self.max_datagram_size - overhead, 64)
            chunks = split_content(message.content, budget)
            if self.fast_encode:
                datagrams = message.chunk_datagrams(chunks)
            else:
                total = len(chunks)
                datagrams = [message.with_chunk(chunk, index, total).encode()
                             for index, chunk in enumerate(chunks)]
        emitted = 0
        with self.timer.section("transport.send"):
            for datagram in datagrams:
                try:
                    self.channel.send(datagram)
                except Exception:  # noqa: BLE001 - fire and forget, never propagate
                    self.send_errors += 1
                else:
                    emitted += 1
        self.messages_sent += 1
        self.datagrams_sent += emitted
        return emitted

    def send_all(self, messages: list[UDPMessage]) -> int:
        """Send a batch of messages; returns the total datagrams emitted."""
        return sum(self.send(message) for message in messages)
