"""Datagram channels: perfect, lossy, and real-socket loopback.

A channel accepts encoded datagrams from the sender and delivers them to
subscribed callbacks (the receiver).  The abstraction lets the same collector
and receiver code run over

* an in-memory queue (fast, deterministic -- the default for campaigns),
* a lossy in-memory queue (drops a configurable fraction of datagrams, with a
  deterministic RNG, reproducing UDP loss), or
* genuine UDP sockets on the loopback interface.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.util.errors import TransportError
from repro.util.rng import SeededRNG

DatagramCallback = Callable[[bytes], None]


class Channel(Protocol):
    """Anything that can carry datagrams from senders to subscribers."""

    def send(self, datagram: bytes) -> bool:
        """Submit one datagram; returns True if it was delivered (or queued)."""
        ...

    def subscribe(self, callback: DatagramCallback) -> None:
        """Register a delivery callback."""
        ...


@dataclass
class InMemoryChannel:
    """Perfect, synchronous delivery to all subscribers."""

    datagrams_sent: int = 0
    bytes_sent: int = 0
    _subscribers: list[DatagramCallback] = field(default_factory=list)

    def subscribe(self, callback: DatagramCallback) -> None:
        """Register a delivery callback."""
        self._subscribers.append(callback)

    def send(self, datagram: bytes) -> bool:
        """Deliver the datagram to every subscriber immediately."""
        self.datagrams_sent += 1
        self.bytes_sent += len(datagram)
        for callback in self._subscribers:
            callback(datagram)
        return True


@dataclass
class LossyChannel:
    """In-memory delivery that independently drops each datagram with ``loss_rate``."""

    loss_rate: float = 0.0002
    rng: SeededRNG = field(default_factory=lambda: SeededRNG(7))
    datagrams_sent: int = 0
    datagrams_dropped: int = 0
    bytes_sent: int = 0
    _subscribers: list[DatagramCallback] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise TransportError("loss_rate must be in [0, 1]")

    def subscribe(self, callback: DatagramCallback) -> None:
        """Register a delivery callback."""
        self._subscribers.append(callback)

    def send(self, datagram: bytes) -> bool:
        """Deliver the datagram unless the loss draw drops it."""
        self.datagrams_sent += 1
        self.bytes_sent += len(datagram)
        if self.rng.random() < self.loss_rate:
            self.datagrams_dropped += 1
            return False
        for callback in self._subscribers:
            callback(datagram)
        return True

    @property
    def observed_loss_rate(self) -> float:
        """Fraction of datagrams actually dropped so far."""
        if self.datagrams_sent == 0:
            return 0.0
        return self.datagrams_dropped / self.datagrams_sent


class SocketChannel:
    """Real UDP datagrams over the loopback interface.

    ``send`` transmits a datagram to the bound receiver socket; ``drain``
    pulls everything currently queued in the kernel buffer and hands it to the
    subscribers.  This channel exists to prove the message format survives a
    real socket round trip; campaigns default to the in-memory channels.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 recv_buffer_bytes: int = 4 * 1024 * 1024) -> None:
        self._receiver_socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            # Campaigns drain between jobs, so a whole job's datagram burst
            # must fit in the kernel queue; the default rcvbuf is too small.
            self._receiver_socket.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF,
                                             recv_buffer_bytes)
        except OSError:  # the OS may cap or refuse it; drain more often then
            pass
        self._receiver_socket.bind((host, port))
        self._receiver_socket.setblocking(False)
        self._address = self._receiver_socket.getsockname()
        self._sender_socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._subscribers: list[DatagramCallback] = []
        self.datagrams_sent = 0
        self.bytes_sent = 0

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the receiver socket is bound to."""
        return self._address

    def subscribe(self, callback: DatagramCallback) -> None:
        """Register a delivery callback (invoked from :meth:`drain`)."""
        self._subscribers.append(callback)

    def send(self, datagram: bytes) -> bool:
        """Transmit one datagram over the socket."""
        self._sender_socket.sendto(datagram, self._address)
        self.datagrams_sent += 1
        self.bytes_sent += len(datagram)
        return True

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has released the sockets."""
        return self._receiver_socket.fileno() == -1

    def drain(self, max_datagrams: int = 100_000) -> int:
        """Read queued datagrams from the socket and deliver them; returns the count.

        A no-op once the channel is closed, so late observers (a snapshot or
        live-analysis view after the deployment ended) read whatever was
        drained before the close instead of crashing on a dead socket.
        """
        if self.closed:
            return 0
        delivered = 0
        for _ in range(max_datagrams):
            try:
                datagram, _addr = self._receiver_socket.recvfrom(65_535)
            except BlockingIOError:
                break
            for callback in self._subscribers:
                callback(datagram)
            delivered += 1
        return delivered

    def close(self) -> None:
        """Close both sockets (idempotent; anything still queued is dropped)."""
        self._receiver_socket.close()
        self._sender_socket.close()

    def __enter__(self) -> "SocketChannel":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()
