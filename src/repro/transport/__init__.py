"""UDP-style transport: messages, chunking, channels, sender and receiver.

SIREN deliberately uses connectionless, fire-and-forget UDP messaging so that
data collection can never block or crash a user process: every collected item
becomes one (or, for long lists, several chunked) datagrams sent to a central
receiver, and losses are tolerated -- the receiver simply ends up with fewer
rows, and the per-list fuzzy hashes keep partially lost lists analysable.

The transport here mirrors that design with three interchangeable channels:

* :class:`~repro.transport.channel.InMemoryChannel` -- perfect delivery,
* :class:`~repro.transport.channel.LossyChannel` -- drops a configurable
  fraction of datagrams (used to reproduce the ~0.02 % field loss reported in
  Section 3.1 and for the loss-sweep ablation bench),
* :class:`~repro.transport.channel.SocketChannel` -- real UDP datagrams over
  the loopback interface, for end-to-end realism.
"""

from repro.transport.channel import Channel, InMemoryChannel, LossyChannel, SocketChannel
from repro.transport.chunking import reassemble_chunks, split_content
from repro.transport.messages import MAX_DATAGRAM_SIZE, UDPMessage
from repro.transport.receiver import (
    DatagramQuarantine,
    MessageReceiver,
    QuarantinedDatagram,
)
from repro.transport.sender import UDPSender

__all__ = [
    "Channel",
    "InMemoryChannel",
    "LossyChannel",
    "SocketChannel",
    "DatagramQuarantine",
    "MessageReceiver",
    "QuarantinedDatagram",
    "UDPSender",
    "UDPMessage",
    "MAX_DATAGRAM_SIZE",
    "split_content",
    "reassemble_chunks",
]
