"""Chunking of long message contents.

UDP datagrams are size-limited, but module lists, shared-object lists and
memory maps routinely exceed one datagram.  The sender splits such contents
into chunks that each fit in a datagram; the post-processing step reassembles
them.  Because chunks travel as independent datagrams, any of them can be
lost -- reassembly therefore returns whatever arrived, in order, and reports
whether the message is complete.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import TransportError


def split_content(content: str, max_chunk_bytes: int) -> list[str]:
    """Split ``content`` into chunks of at most ``max_chunk_bytes`` UTF-8 bytes."""
    if max_chunk_bytes < 8:
        raise TransportError("max_chunk_bytes is unreasonably small")
    if not content:
        return [""]
    encoded = content.encode("utf-8")
    if len(encoded) <= max_chunk_bytes:
        return [content]
    chunks: list[str] = []
    start = 0
    while start < len(encoded):
        end = min(start + max_chunk_bytes, len(encoded))
        # Avoid splitting inside a multi-byte UTF-8 sequence.
        while end > start and end < len(encoded) and (encoded[end] & 0xC0) == 0x80:
            end -= 1
        if end == start:  # pathological: a single character larger than the budget
            end = min(start + max_chunk_bytes, len(encoded))
        chunks.append(encoded[start:end].decode("utf-8", errors="ignore"))
        start = end
    return chunks


@dataclass(frozen=True)
class ReassembledContent:
    """Result of reassembling the chunks that actually arrived."""

    content: str
    received_chunks: int
    expected_chunks: int

    @property
    def complete(self) -> bool:
        """True if every chunk arrived."""
        return self.received_chunks == self.expected_chunks


def reassemble_chunks(chunks: dict[int, str], expected_total: int) -> ReassembledContent:
    """Reassemble ``{chunk_index: content}`` into a single string.

    Missing chunks are simply skipped (their data was lost on the wire); the
    caller can detect incompleteness via :attr:`ReassembledContent.complete`.
    """
    if expected_total < 1:
        raise TransportError("expected_total must be >= 1")
    ordered = [chunks[index] for index in sorted(chunks) if 0 <= index < expected_total]
    return ReassembledContent(
        content="".join(ordered),
        received_chunks=len(ordered),
        expected_chunks=expected_total,
    )
