"""Exception hierarchy for the SIREN reproduction.

A single root exception (:class:`ReproError`) makes it easy for callers to
catch "anything this library raised" without also swallowing programming
errors such as ``TypeError``.  Each subsystem gets its own subclass so tests
can assert on the precise failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Raised by the HPC simulator (filesystem, linker, scheduler, cluster)."""


class CorpusError(ReproError):
    """Raised when building or querying the synthetic software corpus."""


class CollectionError(ReproError):
    """Raised by the SIREN collector.

    Note that the collector itself is designed to *fail gracefully*: errors
    during hooked collection are caught and turned into missing data rather
    than propagated into the "user process".  ``CollectionError`` is used for
    programming/configuration mistakes (e.g. registering a hook twice), not
    for per-process collection failures.
    """


class TransportError(ReproError):
    """Raised by the UDP-style transport layer for configuration errors."""


class AnalysisError(ReproError):
    """Raised by the analysis layer (e.g. similarity search on empty data)."""


class ELFError(ReproError):
    """Raised when parsing or building an ELF image fails."""
