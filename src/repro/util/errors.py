"""Exception hierarchy for the SIREN reproduction.

A single root exception (:class:`ReproError`) makes it easy for callers to
catch "anything this library raised" without also swallowing programming
errors such as ``TypeError``.  Each subsystem gets its own subclass so tests
can assert on the precise failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Raised by the HPC simulator (filesystem, linker, scheduler, cluster)."""


class CorpusError(ReproError):
    """Raised when building or querying the synthetic software corpus."""


class CollectionError(ReproError):
    """Raised by the SIREN collector.

    Note that the collector itself is designed to *fail gracefully*: errors
    during hooked collection are caught and turned into missing data rather
    than propagated into the "user process".  ``CollectionError`` is used for
    programming/configuration mistakes (e.g. registering a hook twice), not
    for per-process collection failures.
    """


class TransportError(ReproError):
    """Raised by the UDP-style transport and ingest layers.

    Covers both configuration mistakes (bad loss rates, unknown worker
    backends) and undecodable datagrams.  Runtime ingest failures -- a shard
    worker crashing, a retry budget exhausting -- raise the more specific
    :class:`IngestError` / :class:`WorkerCrashError` subclasses below, so
    ``except TransportError`` keeps catching everything while callers that
    care can tell a garbled datagram from a dead worker.
    """


class IngestError(TransportError):
    """A runtime failure of the streaming-ingest machinery.

    Subclasses :class:`TransportError` so existing ``except TransportError``
    clauses keep working; raised when the ingest pipeline itself (not a
    single datagram) fails at runtime -- e.g. a store retry budget
    exhausting or the shard pool being used after close.
    """


class WorkerCrashError(IngestError):
    """A shard worker process died (or stalled) beyond the restart budget.

    Raised by the :class:`~repro.ingest.procworkers.ProcessShardPool`
    supervisor once a crashed or stalled worker has exhausted its bounded
    restart retries; carries the shard index and exit code in the message.
    """


class StoreError(ReproError):
    """Raised by the tiered record store (:mod:`repro.db.tiered`).

    Covers backend misconfiguration (unknown ``store_backend`` name, a
    shard-count mismatch on reopen), content-digest collisions in the
    blob dedup tier, and querying an ambiguous multi-campaign store
    without naming a campaign.
    """


class AnalysisError(ReproError):
    """Raised by the analysis layer (e.g. similarity search on empty data)."""


class ELFError(ReproError):
    """Raised when parsing or building an ELF image fails."""
