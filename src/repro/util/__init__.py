"""Shared utilities: deterministic RNG, text tables, and error types.

These helpers are deliberately small and dependency-free so that every other
subpackage (hashing, ELF, simulator, analysis) can rely on them without
introducing import cycles.
"""

from repro.util.errors import (
    CollectionError,
    CorpusError,
    IngestError,
    ReproError,
    SimulationError,
    TransportError,
    WorkerCrashError,
)
from repro.util.rng import SeededRNG
from repro.util.tables import TextTable, format_count

__all__ = [
    "CollectionError",
    "CorpusError",
    "IngestError",
    "ReproError",
    "SimulationError",
    "TransportError",
    "WorkerCrashError",
    "SeededRNG",
    "TextTable",
    "format_count",
]
