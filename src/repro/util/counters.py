"""The central registry of operational counter/statistics keys.

Counters are surfaced from half a dozen places --
:meth:`~repro.ingest.incremental.IncrementalConsolidator.statistics`,
:meth:`~repro.ingest.sharded.ShardedIngest.statistics`,
:meth:`~repro.ingest.procworkers.ProcessShardPool.restart_statistics`,
:meth:`~repro.workload.campaign.CampaignResult.statistics`,
:meth:`~repro.core.framework.SirenFramework.statistics`,
:meth:`~repro.analysis.live.LiveAnalysis.statistics` and
:meth:`~repro.faults.channel.FaultyChannel.fault_counters` -- and the
parallel drivers *fold* them key-wise across workers and incarnations.  A
key that exists in one emitter but not another silently drops out of the
fold, and a renamed key quietly breaks every cross-mode "counter-for-counter
identical" pin.  Declaring every key here, once, turns that drift into a
lint failure: the ``counters`` rule family of :mod:`repro.devtools.lint`
cross-checks each emitter's literal keys against this registry in both
directions.

Keys produced dynamically with a namespace prefix (``ingest_<key>``,
``fault_<key>``) are covered by :data:`COUNTER_PREFIXES`: the base key under
the prefix is itself registered, so only the prefix needs declaring.
"""

from __future__ import annotations

#: Every statistics/counter key any emitter may surface, with its meaning.
COUNTERS: dict[str, str] = {
    # --- consolidation (IncrementalConsolidator.statistics) ------------ #
    "messages_consumed": "decoded messages fed into a consolidator",
    "records_built": "process records finalized",
    "incomplete_records": "records flagged incomplete (datagram loss)",
    "early_finalized": "groups closed by PROCEND with all sections present",
    "idle_closed": "groups closed by the epoch/idle straggler rule",
    "final_closed": "groups force-closed at end of stream",
    "late_messages": "messages that arrived after their group closed",
    "open_processes": "process groups currently open",
    "peak_open_processes": "high-water mark of simultaneously open groups",
    # --- ingest front (ShardedIngest.statistics) ------------------------ #
    "shards": "receiver+consolidator workers in the ingest front",
    "messages_received": "messages accepted across all shards",
    "decode_errors": "undecodable datagrams dropped by the ingest path",
    "quarantined": "undecodable datagrams captured in the forensic ring",
    # --- self-healing supervision (ProcessShardPool.restart_statistics) - #
    "worker_restarts": "supervised shard-worker restarts",
    "restart_lost_groups": "open groups whose messages died with a worker",
    "restart_lost_datagrams": "resend-window overflow datagrams lost to a crash",
    "resend_replayed_batches": "batches replayed into restarted workers",
    "resend_overflow_batches": "batches evicted from the bounded resend window",
    # --- campaign results (CampaignResult.statistics) ------------------- #
    "campaign_workers": "OS driver processes that ran the job loop",
    "jobs_run": "jobs submitted through the scheduler",
    "processes_run": "processes launched by those jobs",
    "records": "consolidated records in the campaign result",
    "incomplete_fraction": "fraction of records flagged incomplete",
    "processes_collected": "processes the SIREN hook collected",
    "processes_skipped": "processes the collection policy skipped",
    "section_errors": "collection sections that failed and were skipped",
    "hashes_computed": "CTPH digests computed by the collector",
    "hash_cache_hits": "path-cache hits in the artifact hasher",
    "hash_content_cache_hits": "content-addressed digest cache hits",
    "hash_cache_hit_rate": "hits / lookups across both hash caches",
    "compare_cache_hits": "signature-compare LRU hits",
    "compare_cache_misses": "signature-compare LRU misses",
    "messages_sent": "logical messages the sender emitted",
    "datagrams_sent": "datagrams the sender handed to the channel",
    "send_errors": "channel errors swallowed by the fire-and-forget sender",
    "datagrams_dropped": "datagrams dropped by the lossy channel",
    # --- framework deployments (SirenFramework.statistics) -------------- #
    "store_write_retries": "store write transactions retried on lock/busy",
    "observed_loss_rate": "dropped / sent on the lossy channel",
    # --- live analysis (LiveAnalysis.statistics) ------------------------ #
    "records_committed": "records folded into the live accumulators",
    "open_records": "transient open-group records in the current overlay",
    "instances": "similarity instances grown so far",
    "syncs": "delta pulls performed",
    "cursor": "current delta-stream high-water mark",
    "comparisons": "digest alignments performed",
    # --- tiered record store (TieredStore.statistics) -------------------- #
    "silver_records": "live (latest-version) records in the silver tier",
    "silver_rows": "physical silver row versions across all shards",
    "silver_shards": "hash partitions the silver tier is split into",
    "blob_entries": "distinct content-addressed blobs stored",
    "blob_dedup_hits": "payload writes satisfied by an existing blob",
    "rollup_campaigns": "campaign labels present in the silver tier",
    "rollup_syncs": "record-delta batches folded into the tiers",
    "rollup_records_applied": "record versions folded incrementally into gold",
    "rollup_dedup_skips": "re-delivered unchanged records skipped by dedup",
    "rollup_rebuilds": "full gold rebuilds from the silver tier",
    "rollup_query_hits": "gold queries answered from clean rollups",
    "rollup_query_misses": "gold queries that first rebuilt dirty rollups",
    "compactions": "compaction passes over the silver shards",
    "compaction_dropped": "superseded row versions dropped by compaction",
    "blobs_collected": "unreferenced blobs garbage-collected",
    "retention_dropped": "record versions dropped by campaign retention",
    # --- injected channel faults (FaultyChannel.fault_counters) --------- #
    "dropped": "datagrams the fault pipeline dropped",
    "duplicated": "datagrams the fault pipeline duplicated",
    "corrupted": "datagrams the fault pipeline bit-flipped",
    "truncated": "datagrams the fault pipeline truncated",
    "reordered": "datagrams delivered out of order",
    "jitter_bursts": "holdback bursts the fault pipeline injected",
}

#: Dynamic key namespaces: ``<prefix><base-key>`` where the base key is
#: itself registered above (the campaign/framework results nest the ingest
#: and fault counter sets under these prefixes).
COUNTER_PREFIXES: dict[str, str] = {
    "ingest_": "ShardedIngest.statistics() folded into a result view",
    "fault_": "FaultyChannel.fault_counters() folded into framework statistics",
}


def is_registered_counter(key: str) -> bool:
    """Whether ``key`` is a declared counter (directly or via a prefix)."""
    if key in COUNTERS:
        return True
    return any(key.startswith(prefix) and key[len(prefix):] in COUNTERS
               for prefix in COUNTER_PREFIXES)


def assert_registered_counters(stats: dict[str, object], *, context: str) -> None:
    """Raise ``AssertionError`` naming every unregistered key in ``stats``.

    A runtime companion to the static ``counters`` lint rules, for tests
    that exercise real emitters end to end.
    """
    unknown = sorted(key for key in stats if not is_registered_counter(key))
    if unknown:
        raise AssertionError(
            f"{context} surfaced unregistered counter keys {unknown}; declare "
            "them in repro.util.counters.COUNTERS")
