"""Deterministic random-number utilities.

Every stochastic component of the reproduction (corpus builder, workload
campaign, lossy UDP channel) draws from a :class:`SeededRNG`.  The class wraps
both :class:`random.Random` (for convenient discrete choices) and
:class:`numpy.random.Generator` (for vectorised draws) seeded from the same
integer, and supports cheap forking so that independent subsystems get
decorrelated, reproducible streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence, TypeVar

import numpy as np

T = TypeVar("T")

#: Mixing constant (64-bit golden-ratio) used when deriving child seeds.
_GOLDEN64 = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _splitmix64(state: int) -> int:
    """One step of the splitmix64 sequence; used to derive fork seeds."""
    state = (state + _GOLDEN64) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def derive_seed(seed: int, *tags: str) -> int:
    """Derive a child seed from ``seed`` and a sequence of string tags.

    The derivation is order-sensitive and stable across processes and Python
    versions (it does not use :func:`hash`, which is salted).
    """
    state = seed & _MASK64
    for tag in tags:
        for byte in tag.encode("utf-8"):
            state = _splitmix64(state ^ byte)
    return _splitmix64(state)


@dataclass
class SeededRNG:
    """A reproducible random source shared by the simulator and workloads.

    Parameters
    ----------
    seed:
        Master seed.  Two ``SeededRNG`` instances built with the same seed
        produce identical streams.
    """

    seed: int = 0
    _py: random.Random = field(init=False, repr=False)
    _np: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._py = random.Random(self.seed)
        self._np = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------ #
    # forking
    # ------------------------------------------------------------------ #
    def fork(self, *tags: str) -> "SeededRNG":
        """Return a new, independent RNG derived from this one.

        ``tags`` name the consumer (e.g. ``rng.fork("corpus", "lammps")``) so
        that adding a new consumer elsewhere does not perturb existing
        streams.
        """
        return SeededRNG(derive_seed(self.seed, *tags))

    # ------------------------------------------------------------------ #
    # scalar draws
    # ------------------------------------------------------------------ #
    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        return self._py.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._py.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high)``."""
        return self._py.uniform(low, high)

    def choice(self, items: Sequence[T]) -> T:
        """Pick one element uniformly."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._py.choice(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one element with the given relative weights."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        return self._py.choices(items, weights=weights, k=1)[0]

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct elements (k may not exceed ``len(items)``)."""
        return self._py.sample(list(items), k)

    def shuffle(self, items: list[T]) -> list[T]:
        """Return a shuffled copy of ``items``."""
        out = list(items)
        self._py.shuffle(out)
        return out

    def bytes(self, n: int) -> bytes:
        """Return ``n`` pseudo-random bytes."""
        return self._np.integers(0, 256, size=n, dtype=np.uint8).tobytes()

    def poisson(self, lam: float) -> int:
        """Poisson draw (used for per-job process counts)."""
        return int(self._np.poisson(lam))

    def lognormal_int(self, mean: float, sigma: float, minimum: int = 1) -> int:
        """Integer draw from a lognormal distribution, clipped below."""
        return max(minimum, int(round(float(self._np.lognormal(mean, sigma)))))

    def numpy(self) -> np.random.Generator:
        """Expose the underlying numpy generator for vectorised draws."""
        return self._np

    # ------------------------------------------------------------------ #
    # convenience generators
    # ------------------------------------------------------------------ #
    def identifier(self, prefix: str, width: int = 6) -> str:
        """Generate a readable pseudo-random identifier like ``job_48210``."""
        return f"{prefix}_{self.randint(0, 10 ** width - 1):0{width}d}"

    def pick_subset(self, items: Iterable[T], probability: float) -> list[T]:
        """Independently keep each item with the given probability."""
        return [item for item in items if self.random() < probability]
