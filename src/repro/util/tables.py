"""Plain-text table rendering used by benchmarks, examples and reports.

The paper presents its evaluation as a set of tables (Tables 2-8) and
matrix/figure summaries (Figures 2-5).  ``TextTable`` renders the same rows as
monospace tables so the benchmark harness can print output directly comparable
with the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


def format_count(value: int | float) -> str:
    """Format a count with thousands separators, as the paper does (13,448)."""
    if isinstance(value, float):
        return f"{value:,.1f}"
    return f"{value:,d}"


@dataclass
class TextTable:
    """A small monospace table builder.

    Example
    -------
    >>> t = TextTable(["User", "Jobs"], title="Table 2")
    >>> t.add_row(["user_1", 11782])
    >>> print(t.render())  # doctest: +SKIP
    """

    headers: Sequence[str]
    title: str = ""
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, values: Iterable[object]) -> None:
        """Append one row; values are formatted with :func:`format_count` when numeric."""
        formatted: list[str] = []
        for value in values:
            if isinstance(value, bool):
                formatted.append("yes" if value else "no")
            elif isinstance(value, (int, float)):
                formatted.append(format_count(value))
            elif value is None:
                formatted.append("-")
            else:
                formatted.append(str(value))
        if len(formatted) != len(self.headers):
            raise ValueError(
                f"row has {len(formatted)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(formatted)

    def add_rows(self, rows: Iterable[Iterable[object]]) -> None:
        """Append many rows."""
        for row in rows:
            self.add_row(row)

    def render(self) -> str:
        """Render the table as a string with a header rule and aligned columns."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def render_row(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(render_row(list(self.headers)))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(render_row(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.render()


def render_matrix(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    matrix: Sequence[Sequence[int]],
    title: str = "",
) -> str:
    """Render a 0/1 usage matrix the way Figures 4 and 5 present them."""
    table = TextTable(["label", *col_labels], title=title)
    for label, row in zip(row_labels, matrix):
        table.add_row([label, *row])
    return table.render()
