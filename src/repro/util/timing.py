"""Lightweight stage timing for profiling the collection pipeline.

The campaign driver, cluster simulator, collector hooks, sender and ingest
spine all want to answer one question -- *where does the wall-clock go?* --
without dragging in a real profiler (10-50x slowdown) or littering call
sites with ``time.perf_counter()`` bookkeeping.  :class:`StageTimer` is the
shared stopwatch: named stages, monotonic clock, re-entrant nesting, and a
mergeable plain-dict snapshot that survives a trip through a
``multiprocessing`` queue so parallel campaign workers can ship their
timings home.

Semantics
---------
- Stage values are *inclusive* wall seconds: a stage's total includes any
  differently-named stages entered while it is open.  The campaign's stage
  names form a known nesting (``campaign.jobs`` contains ``cluster.run_job``
  contains ``collect.*`` contains ``transport.*``), so exclusive times are
  derived by subtraction where needed -- the timer itself stays dumb.
- Re-entering a stage that is already open on the same timer does not
  double-count: only the outermost section records elapsed time (the call
  count still increments), which keeps recursive or self-nesting call sites
  honest.
- :data:`NULL_TIMER` is a process-wide disabled singleton whose sections
  compile down to two attribute checks and a no-op context manager; hot
  paths keep an unconditional ``with timer.section(...)`` and pay nothing
  measurable when profiling is off.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, Mapping, Tuple


class _NullSection:
    """Shared no-op context manager handed out by disabled timers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SECTION = _NullSection()


class _Section:
    """One open stage; records on exit only when it is the outermost entry."""

    __slots__ = ("_timer", "_name", "_start")

    def __init__(self, timer: "StageTimer", name: str) -> None:
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        timer = self._timer
        depth = timer._depth.get(self._name, 0)
        timer._depth[self._name] = depth + 1
        if depth == 0:
            self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        timer = self._timer
        name = self._name
        depth = timer._depth[name] - 1
        timer._depth[name] = depth
        if depth == 0:
            elapsed = perf_counter() - self._start
        else:
            elapsed = 0.0
        seconds, calls = timer._stages.get(name, (0.0, 0))
        timer._stages[name] = (seconds + elapsed, calls + 1)


class StageTimer:
    """Accumulates wall seconds and call counts per named stage.

    A timer is cheap enough to leave permanently wired: the enabled-path
    cost is one dict update per section entry/exit plus two
    ``perf_counter()`` calls, well under a microsecond.  Construct with
    ``enabled=False`` (or use :data:`NULL_TIMER`) to reduce every section
    to a shared no-op.
    """

    __slots__ = ("enabled", "_stages", "_depth")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        # name -> (inclusive seconds, call count)
        self._stages: Dict[str, Tuple[float, int]] = {}
        # name -> currently-open nesting depth
        self._depth: Dict[str, int] = {}

    def section(self, name: str):
        """Context manager timing one entry of stage ``name``."""
        if not self.enabled:
            return _NULL_SECTION
        return _Section(self, name)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold externally measured time into a stage (merge primitive)."""
        if not self.enabled:
            return
        total, count = self._stages.get(name, (0.0, 0))
        self._stages[name] = (total + seconds, count + calls)

    def merge(self, other: "StageTimer | Mapping[str, Mapping[str, float]]") -> None:
        """Fold another timer (or an :meth:`as_dict` snapshot) into this one.

        Used by the parallel campaign driver to sum per-worker timings:
        merged values are therefore aggregate CPU-seconds across workers
        and may exceed the parent's wall-clock.
        """
        if isinstance(other, StageTimer):
            items: Iterable[Tuple[str, Tuple[float, int]]] = other._stages.items()
            for name, (seconds, calls) in items:
                self.add(name, seconds, calls)
            return
        for name, stat in other.items():
            self.add(name, float(stat["seconds"]), int(stat["calls"]))

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict snapshot: ``{stage: {"seconds": s, "calls": n}}``.

        The result is picklable and JSON-serialisable; stages are sorted by
        descending inclusive time so profiles read top-cost-first.
        """
        ordered = sorted(self._stages.items(), key=lambda kv: -kv[1][0])
        return {name: {"seconds": seconds, "calls": calls}
                for name, (seconds, calls) in ordered}

    def seconds(self, name: str) -> float:
        """Inclusive seconds recorded for ``name`` (0.0 if never entered)."""
        return self._stages.get(name, (0.0, 0))[0]

    def calls(self, name: str) -> int:
        """Completed section count for ``name`` (0 if never entered)."""
        return self._stages.get(name, (0.0, 0))[1]

    def clear(self) -> None:
        """Drop all recorded stages (open sections keep their start times)."""
        self._stages.clear()


NULL_TIMER = StageTimer(enabled=False)
"""Process-wide disabled timer for call sites that default to 'off'."""
