"""Bounded retry with exponential backoff and deterministic jitter.

The long-lived parts of the pipeline (the store's write paths, the shard
supervisor's worker restarts) must survive *transient* faults -- a WAL lock
held by a concurrent reader, a worker that died and is being respawned --
without either hammering the contended resource in a tight loop or sleeping
a fleet of shards in lockstep.  :class:`RetryPolicy` captures the standard
answer: exponentially growing delays, capped, with a jitter fraction drawn
from a seeded RNG so chaos runs stay reproducible.

The policy is pure configuration plus delay arithmetic; callers own the
actual loop (what counts as retryable differs per subsystem) and the sleep
function stays injectable so tests never wait on a real clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.util.errors import ReproError


@dataclass(frozen=True)
class RetryPolicy:
    """How often, and how patiently, to retry a transient failure.

    Parameters
    ----------
    attempts:
        Retries *after* the first try (0 disables retrying entirely: the
        first failure propagates).
    base_delay:
        Seconds slept before the first retry.
    growth:
        Multiplier applied to the delay after every retry (exponential
        backoff).
    max_delay:
        Upper bound on any single sleep, jitter included.
    jitter:
        Fraction of the nominal delay added/subtracted uniformly at random
        (0.5 means the actual sleep lands in ``[0.5d, 1.5d]``), decorrelating
        retry storms across shards.
    """

    attempts: int = 4
    base_delay: float = 0.005
    growth: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 0:
            raise ReproError("retry attempts may not be negative")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError("retry delays may not be negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError("retry jitter must be a fraction in [0, 1]")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Seconds to sleep before retry number ``attempt`` (0-based)."""
        nominal = min(self.max_delay, self.base_delay * self.growth ** attempt)
        if rng is not None and self.jitter > 0:
            nominal *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return min(self.max_delay, nominal)


#: Retrying is off: the first failure propagates immediately.
NO_RETRY = RetryPolicy(attempts=0)
