"""Workload generation: the opt-in deployment campaign.

The paper's evaluation data comes from 12 opt-in users running 13,448 jobs
with 2.3 million processes on LUMI over three months.  This subpackage
generates a synthetic campaign with the same *structure*:

* :mod:`repro.workload.profiles` -- per-user behaviour profiles (how many
  jobs, which mix of system tools, which scientific packages and variants,
  which Python interpreters and scripts), calibrated to Table 2,
* :mod:`repro.workload.scenarios` -- builders turning profile entries into
  concrete :class:`~repro.hpcsim.slurm.JobScript` objects,
* :mod:`repro.workload.campaign` -- the campaign runner that stands up a
  cluster, installs the corpus, deploys SIREN, executes every job and
  consolidates the collected data.

Absolute counts are scale-parameterised (``scale=1.0`` reproduces the paper's
magnitudes; the default benchmark scale is much smaller) while relative
structure -- who runs what, which executables dominate, how many variants of
each package exist -- is scale-independent.
"""

from repro.workload.campaign import CampaignConfig, CampaignResult, DeploymentCampaign
from repro.workload.profiles import DEFAULT_PROFILES, JobTemplate, UserProfile
from repro.workload.scenarios import ScenarioBuilder

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "DeploymentCampaign",
    "DEFAULT_PROFILES",
    "JobTemplate",
    "UserProfile",
    "ScenarioBuilder",
]
