"""The opt-in deployment campaign runner.

:class:`DeploymentCampaign` stands up the whole reproduction in one call:

1. build a cluster and install the corpus (libraries, system tools, Python,
   ``siren.so``, per-user scientific packages),
2. deploy SIREN (message store, channel, ingest path, sender, collector hook),
3. execute the scaled campaign: every user profile submits its jobs through
   the Slurm-like scheduler, each process is hooked and collected,
4. consolidate the UDP messages into per-process records -- in a post-pass
   (``ingest_mode="batch"``) or live while the jobs run
   (``ingest_mode="streaming"``, optionally sharded across
   ``ingest_shards`` receiver+consolidator workers, each either an
   in-interpreter shard or a real OS process per ``ingest_workers``).

The result object carries everything the analysis layer and the benchmark
harness need: the records, the store, the anonymised user mapping, the corpus
manifest, and the transport/collection counters.  Streaming campaigns can
additionally be observed mid-run through :meth:`DeploymentCampaign.snapshot`
(e.g. from the ``on_job`` callback), which feeds the live record set straight
into :class:`~repro.core.pipeline.AnalysisPipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.live import LiveAnalysis
from repro.collector.hooks import SirenCollector
from repro.collector.policy import DEFAULT_POLICY, CollectionPolicy
from repro.corpus.builder import CorpusBuilder, CorpusManifest
from repro.corpus.packages import PACKAGES_BY_NAME
from repro.db.store import MessageStore, ProcessRecord
from repro.db.tiered import TieredStore, build_tiered_store
from repro.faults.channel import FaultyChannel
from repro.faults.plan import FaultPlan
from repro.faults.store import StoreFaultInjector
from repro.hpcsim.cluster import Cluster
from repro.ingest.sharded import ProcessDelta, ShardedIngest
from repro.postprocess.consolidate import Consolidator
from repro.transport.channel import InMemoryChannel, LossyChannel, SocketChannel
from repro.transport.receiver import DatagramQuarantine, MessageReceiver
from repro.transport.sender import UDPSender
from repro.util.errors import CollectionError
from repro.util.retry import RetryPolicy
from repro.util.rng import SeededRNG
from repro.util.timing import StageTimer
from repro.workload.profiles import (
    BASH_ENVIRONMENT_QUIRKS,
    DEFAULT_PROFILES,
    UserProfile,
    packages_used_by,
)
from repro.workload.scenarios import ScenarioBuilder

CampaignChannel = LossyChannel | InMemoryChannel | SocketChannel | FaultyChannel


def _no_drain() -> None:
    """Per-job drain bound for non-socket transports (nothing queues)."""


def iter_profile_jobs(config: CampaignConfig, profile: UserProfile,
                      job_rng: SeededRNG):
    """Yield ``(job_index, template, quirk_module)`` for one profile's jobs.

    This generator *is* the job plan: the serial driver, every parallel
    worker and the parallel planner (which must pre-compute how many job ids,
    pids and clock ticks a profile consumes without running it) all iterate
    it, so the template/quirk selection -- and therefore the RNG draw
    sequence -- cannot drift between them.  ``job_rng`` must be the profile's
    ``rng.fork("jobs", username)`` stream.
    """
    job_count = config.jobs_for(profile)
    templates = list(profile.templates)
    weights = profile.template_weights()
    quirk_key = BASH_ENVIRONMENT_QUIRKS.get(profile.username)
    coverage = config.ensure_template_coverage
    quirk_fraction = config.quirk_fraction
    for job_index in range(job_count):
        if coverage and job_index < len(templates):
            # First pass: round-robin so every template runs at least once.
            template = templates[job_index]
        else:
            template = job_rng.weighted_choice(templates, weights)
        quirk = None
        if quirk_key and (job_index == 0
                          or job_rng.random() < quirk_fraction):
            # The first job of a "quirk" user always carries the altered
            # environment so the rare bash variants of Table 4 are
            # present even at very small campaign scales.
            quirk = quirk_key
        yield job_index, template, quirk


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of a campaign run."""

    scale: float = 0.01            #: fraction of the paper's job counts to run
    seed: int = 42
    loss_rate: float = 0.0002      #: UDP datagram loss probability
    store_path: str = ":memory:"
    keep_raw_messages: bool = True
    policy: CollectionPolicy = field(default_factory=lambda: DEFAULT_POLICY)
    quirk_fraction: float = 0.15   #: fraction of a quirk user's jobs with the alt environment
    min_jobs_per_user: int = 1
    hash_engine: bool = True       #: single-pass hashing engine (identical digests)
    hash_content_cache: bool = True  #: content-addressed digest cache in the collector
    hash_concurrency: int = 1      #: process-pool width for per-executable hashing
    #: signature-comparison kernel of campaign-built analyses
    #: (:meth:`DeploymentCampaign.live_analysis`): ``"bitparallel"`` = the
    #: batched bit-parallel engine, ``"reference"`` = the seed scalar path;
    #: scores are byte-identical either way (pattern of ``hash_engine``).
    compare_backend: str = "bitparallel"
    #: ``"batch"`` = persist raw messages, consolidate in a post-pass (the
    #: paper's pipeline); ``"streaming"`` = consolidate live while jobs run
    #: (record-for-record identical output).  With streaming,
    #: ``keep_raw_messages`` decides whether raw messages are *also* persisted.
    ingest_mode: str = "batch"
    ingest_shards: int = 1         #: streaming receiver+consolidator workers
    #: ``"thread"`` = all shards in this interpreter (GIL-bound);
    #: ``"process"`` = one OS process per shard, raw datagrams routed by
    #: header bytes and records merged back at snapshot/finalize -- output
    #: records, ordering and delta cursors are identical either way.
    ingest_workers: str = "thread"
    #: ``"memory"`` = in-memory channel (lossy when ``loss_rate > 0``);
    #: ``"socket"`` = real UDP datagrams over loopback, drained between jobs
    #: (``loss_rate`` is ignored -- losses, if any, come from the kernel).
    transport: str = "memory"
    #: guarantee every job template of every user runs at least once, so the
    #: rare-but-load-bearing cases (the UNKNOWN icon runs, the GROMACS sharing)
    #: are present even at very small scales.
    ensure_template_coverage: bool = True
    #: supervised restarts per process-mode shard worker before a crash
    #: surfaces as :class:`~repro.util.errors.WorkerCrashError` (0 = fail fast)
    ingest_max_restarts: int = 2
    #: store-write retries on transient SQLite errors (locked/busy), with
    #: exponential jittered backoff
    store_retry_attempts: int = 4
    #: bounded forensic ring of the most recent undecodable datagrams
    #: (raw bytes + reason); 0 disables the quarantine
    quarantine_capacity: int = 256
    #: deterministic fault injection (:class:`~repro.faults.plan.FaultPlan`):
    #: channel faults wrap the memory channel, store faults hook the shared
    #: store, worker faults ride into process-mode shard workers
    fault_plan: FaultPlan | None = None
    #: OS processes driving the job loop: 1 = the serial driver; N > 1
    #: partitions user profiles across N workers, each owning a deterministic
    #: cluster slice (disjoint job-id/pid ranges, per-user RNG forks,
    #: per-worker clock offsets) and shipping its datagrams back into this
    #: campaign's ingest path -- merged records are equal to the serial
    #: driver's (see docs/architecture.md for the determinism contract).
    campaign_workers: int = 1
    #: storage substrate of the tiered record store (``rollups=True``):
    #: ``"sqlite"`` persists the silver/blob tables next to ``store_path``,
    #: ``"memory"`` keeps them in plain dicts.
    store_backend: str = "sqlite"
    #: maintain the tiered record store (:mod:`repro.db.tiered`) alongside
    #: the ``processes`` table: silver hash-partitioned record shards with
    #: content-addressed payload dedup plus gold rollups answering the
    #: Table 2/3/4/8 queries in O(answer), pinned byte-identical to the
    #: recompute-from-records reference.
    rollups: bool = False

    def jobs_for(self, profile: UserProfile) -> int:
        """Number of jobs this profile submits at the configured scale."""
        minimum = self.min_jobs_per_user
        if self.ensure_template_coverage:
            minimum = max(minimum, len(profile.templates))
        return max(minimum, round(profile.job_count * self.scale))


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    config: CampaignConfig
    records: list[ProcessRecord]
    store: MessageStore
    user_names: dict[int, str]
    manifest: CorpusManifest
    cluster: Cluster
    collector: SirenCollector
    channel: CampaignChannel
    jobs_run: int
    processes_run: int
    ingest: ShardedIngest | None = None  #: streaming-mode ingest front (counters)
    decode_errors: int = 0     #: undecodable datagrams dropped by the ingest path
    quarantined: int = 0       #: of those, raw bytes captured in the forensic ring
    worker_restarts: int = 0   #: supervised shard-worker restarts (process mode)
    #: what the injected channel faults did (``fault_plan`` runs only)
    fault_counters: dict[str, int] | None = None
    #: the store-fault hook, when the plan armed one (its counters say how
    #: many transient/disk-full errors the retry layer had to absorb)
    store_fault_injector: StoreFaultInjector | None = None
    #: inclusive wall seconds per pipeline stage (``{stage: {"seconds", "calls"}}``,
    #: sorted top-cost-first).  With ``campaign_workers > 1`` the worker
    #: timers are summed in, so totals are aggregate CPU-seconds and can
    #: exceed the parent's wall-clock.
    stage_timings: dict[str, dict[str, float]] = field(default_factory=dict)
    #: the tiered record store (``rollups=True`` runs only): silver record
    #: shards + gold rollups, kept in sync with the ``processes`` table
    tiered: TieredStore | None = None
    #: parent-side feed coalescing counters of the parallel driver
    #: (``campaign_workers > 1`` only): ``batches_received`` worker batches
    #: arrived, merged into ``feed_calls`` ingest calls covering
    #: ``datagrams_fed`` datagrams
    feed_stats: dict[str, int] | None = None

    @property
    def incomplete_fraction(self) -> float:
        """Fraction of consolidated records flagged incomplete (UDP loss effect)."""
        if not self.records:
            return 0.0
        return sum(record.incomplete for record in self.records) / len(self.records)

    def statistics(self) -> dict[str, int | float]:
        """Flat counter view of the run, for profiling and benchmarks.

        Includes the cache-effectiveness counters of the collection-side
        hashing path (:class:`~repro.collector.fuzzy.ArtifactHasher` path and
        content caches, the signature compare LRU) so a profiling run can
        tell "cache working" from "cache bypassed".  With
        ``campaign_workers > 1`` the collector counters are the fold of all
        worker collectors.
        """
        hasher = self.collector.hasher
        compare_info = hasher.hasher.compare_cache_info()
        sender = self.collector.sender
        stats: dict[str, int | float] = {
            "campaign_workers": self.config.campaign_workers,
            "jobs_run": self.jobs_run,
            "processes_run": self.processes_run,
            "records": len(self.records),
            "incomplete_fraction": self.incomplete_fraction,
            "processes_collected": self.collector.processes_collected,
            "processes_skipped": self.collector.processes_skipped,
            "section_errors": self.collector.section_errors,
            "hashes_computed": hasher.hashes_computed,
            "hash_cache_hits": hasher.cache_hits,
            "hash_content_cache_hits": hasher.content_cache_hits,
            "compare_cache_hits": compare_info.hits,
            "compare_cache_misses": compare_info.misses,
            "messages_sent": sender.messages_sent,
            "datagrams_sent": sender.datagrams_sent,
            "send_errors": sender.send_errors,
            "decode_errors": self.decode_errors,
            "quarantined": self.quarantined,
            "worker_restarts": self.worker_restarts,
        }
        hash_lookups = (hasher.hashes_computed + hasher.cache_hits
                        + hasher.content_cache_hits)
        stats["hash_cache_hit_rate"] = (
            (hasher.cache_hits + hasher.content_cache_hits) / hash_lookups
            if hash_lookups else 0.0)
        dropped = getattr(self.channel, "datagrams_dropped", None)
        if dropped is not None:
            stats["datagrams_dropped"] = dropped
        if self.ingest is not None:
            for key, value in self.ingest.statistics().items():
                stats[f"ingest_{key}"] = value
        if self.tiered is not None:
            for key, value in self.tiered.statistics().items():
                stats[key] = value
        return stats


@dataclass
class DeploymentCampaign:
    """Run the synthetic LUMI opt-in campaign."""

    config: CampaignConfig = field(default_factory=CampaignConfig)
    profiles: tuple[UserProfile, ...] = DEFAULT_PROFILES
    #: called after every submitted job with the running job count -- the
    #: hook point for mid-run :meth:`snapshot` calls and progress reporting.
    on_job: Callable[[int], None] | None = None
    #: stage stopwatch; always on (sub-microsecond per section).  Surfaced as
    #: :attr:`CampaignResult.stage_timings`; pass a shared timer to aggregate
    #: across campaigns.
    timer: StageTimer = field(default_factory=StageTimer, repr=False)
    #: collect-only mode (the parallel driver's worker side): when set,
    #: :meth:`prepare` builds no store/ingest/receiver and instead delivers
    #: every channel-surviving datagram to this callable; :meth:`run` is
    #: unavailable -- the owner drives :meth:`_run_profile` directly.
    datagram_sink: Callable[[bytes], None] | None = None
    cluster: Cluster = field(init=False)
    manifest: CorpusManifest = field(init=False)
    collector: SirenCollector = field(init=False)
    store: MessageStore = field(init=False)
    channel: CampaignChannel = field(init=False)
    receiver: MessageReceiver | None = field(init=False, default=None)
    ingest: ShardedIngest | None = field(init=False, default=None)
    tiered: TieredStore | None = field(init=False, default=None)
    feed_stats: dict[str, int] | None = field(init=False, default=None)
    store_fault_injector: StoreFaultInjector | None = field(init=False, default=None)
    scenario_builder: ScenarioBuilder = field(init=False)
    rng: SeededRNG = field(init=False)
    _prepared: bool = False

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #
    def prepare(self) -> None:
        """Build the cluster, corpus and SIREN deployment (idempotent)."""
        if self._prepared:
            return
        if self.config.ingest_mode not in ("batch", "streaming"):
            raise CollectionError(
                f"unknown ingest_mode {self.config.ingest_mode!r} "
                "(expected 'batch' or 'streaming')")
        if self.config.transport not in ("memory", "socket"):
            raise CollectionError(
                f"unknown transport {self.config.transport!r} "
                "(expected 'memory' or 'socket')")
        if self.config.ingest_workers not in ("thread", "process"):
            raise CollectionError(
                f"unknown ingest_workers {self.config.ingest_workers!r} "
                "(expected 'thread' or 'process')")
        if self.config.compare_backend not in ("bitparallel", "reference"):
            raise CollectionError(
                f"unknown compare_backend {self.config.compare_backend!r} "
                "(expected 'bitparallel' or 'reference')")
        if self.config.campaign_workers < 1:
            raise CollectionError(
                f"campaign_workers must be >= 1, got {self.config.campaign_workers}")
        if self.config.store_backend not in ("sqlite", "memory"):
            raise CollectionError(
                f"unknown store_backend {self.config.store_backend!r} "
                "(expected 'sqlite' or 'memory')")
        plan = self.config.fault_plan
        if (self.config.campaign_workers > 1 and plan is not None
                and plan.channel.active):
            raise CollectionError(
                "campaign_workers > 1 cannot merge deterministically with "
                "channel fault injection: reorder/duplicate/holdback faults "
                "are ordered over the global datagram stream, which parallel "
                "workers do not have (store and ingest-worker faults are fine)")
        with self.timer.section("campaign.prepare"):
            self._prepare_deployment(plan)
        self._prepared = True

    def _prepare_deployment(self, plan: FaultPlan | None) -> None:
        self.rng = SeededRNG(self.config.seed)
        self.cluster = Cluster()
        self.cluster.timer = self.timer
        corpus = CorpusBuilder(self.cluster, rng=self.rng.fork("corpus"))
        self.manifest = corpus.install_base_system()

        # Users and their software installs (registration order fixes user_N labels).
        for profile in self.profiles:
            user = self.cluster.add_user(profile.username)
            for package_name in packages_used_by(profile):
                corpus.install_package(PACKAGES_BY_NAME[package_name], user)

        # SIREN deployment: store <- ingest <- channel <- sender <- collector hook.
        sink_only = self.datagram_sink is not None
        if not sink_only:
            self.store = MessageStore(
                self.config.store_path,
                retry=RetryPolicy(attempts=self.config.store_retry_attempts))
            self.store.timer = self.timer
            if plan is not None and plan.store.active:
                self.store_fault_injector = StoreFaultInjector(plan).install(self.store)
            if self.config.rollups:
                # Users are registered above, so the gold user dimension can
                # bake in the anonymised labels; the store's auto-sync keeps
                # the tiers current through every consolidation path.
                self.tiered = build_tiered_store(
                    self.config.store_backend,
                    store_path=self.config.store_path,
                    campaign=f"campaign-seed{self.config.seed}",
                    user_names={user.uid: user.username
                                for user in self.cluster.users.all()})
                self.store.attach_tiered(self.tiered)
        if self.config.transport == "socket" and not sink_only:
            self.channel = SocketChannel()
        elif self.config.loss_rate > 0:
            self.channel = LossyChannel(loss_rate=self.config.loss_rate,
                                        rng=self.rng.fork("udp-loss"))
        else:
            self.channel = InMemoryChannel()
        if plan is not None and plan.channel.active and not sink_only:
            if self.config.transport != "memory":
                raise CollectionError(
                    "channel fault injection requires transport='memory' "
                    "(a socket channel has its own, real faults)")
            # The decorator *becomes* the campaign channel: the sender sends
            # through the fault pipeline, subscriptions delegate to the inner
            # channel, and the loss counters keep their usual shape.
            self.channel = FaultyChannel(plan=plan, inner=self.channel)
        if sink_only:
            # Collect-only worker: datagrams that survive the channel go to
            # the sink; the parent campaign owns store and ingest.
            self.channel.subscribe(self.datagram_sink)
        elif self.config.ingest_mode == "streaming":
            self.ingest = ShardedIngest(self.store, shards=self.config.ingest_shards,
                                        persist_raw=self.config.keep_raw_messages,
                                        workers=self.config.ingest_workers,
                                        max_restarts=self.config.ingest_max_restarts,
                                        quarantine_capacity=self.config.quarantine_capacity,
                                        fault_plan=plan)
            for consolidator in self.ingest.consolidators:
                consolidator.timer = self.timer
            self.ingest.attach(self.channel)
        else:
            quarantine = (DatagramQuarantine(capacity=self.config.quarantine_capacity)
                          if self.config.quarantine_capacity else None)
            self.receiver = MessageReceiver(self.store, quarantine=quarantine)
            self.receiver.attach(self.channel)
        sender = UDPSender(self.channel, timer=self.timer)
        self.collector = SirenCollector(
            filesystem=self.cluster.filesystem,
            sender=sender,
            library_path=self.manifest.siren_library,
            policy=self.config.policy,
            hash_engine=self.config.hash_engine,
            hash_content_cache=self.config.hash_content_cache,
            hash_concurrency=self.config.hash_concurrency,
        )
        self.collector.timer = self.timer
        self.cluster.register_preload_hook(self.collector)
        self.scenario_builder = ScenarioBuilder(self.cluster, self.manifest,
                                                rng=self.rng.fork("scenarios"))
        # Bind the per-job drain once: the isinstance check used to run in
        # the inner job loop for every transport (satellite fix).
        if isinstance(self.channel, SocketChannel):
            self._drain_socket = self.channel.drain
        else:
            self._drain_socket = _no_drain

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self) -> CampaignResult:
        """Execute the campaign and return the consolidated result."""
        if self.datagram_sink is not None:
            raise CollectionError(
                "a collect-only campaign (datagram_sink set) has no ingest "
                "path to run; drive its job loop directly")
        self.prepare()
        try:
            try:
                if self.config.campaign_workers > 1:
                    from repro.workload.parallel import run_parallel_jobs
                    jobs_run = run_parallel_jobs(self)
                else:
                    jobs_run = self._run_jobs()
            finally:
                self.collector.close()  # release hash workers; caches stay warm
            self._drain_socket()
            if isinstance(self.channel, FaultyChannel):
                # End of stream: the injected network finally delivers what
                # reordering/jitter was still holding back.
                self.channel.flush()
            with self.timer.section("campaign.finalize"):
                if self.ingest is not None:
                    records = self.ingest.finalize()
                    if not self.config.keep_raw_messages:
                        self.store.clear_messages()  # raw persistence was off; stays empty
                else:
                    assert self.receiver is not None
                    self.receiver.flush()
                    consolidator = Consolidator(self.store)
                    records = consolidator.run(
                        clear_messages=not self.config.keep_raw_messages)
        except BaseException:
            if self.ingest is not None:
                self.ingest.close()  # stop any process shard workers
            raise
        finally:
            if isinstance(self.channel, SocketChannel):
                self.channel.close()
        # Profiles already carry anonymised names (user_1 ... user_12), so the
        # UID mapping simply reflects the registered usernames.
        user_names = {user.uid: user.username for user in self.cluster.users.all()}
        if self.ingest is not None:
            decode_errors = self.ingest.decode_errors
            quarantined = self.ingest.quarantined
            worker_restarts = self.ingest.worker_restarts
        else:
            assert self.receiver is not None
            decode_errors = self.receiver.decode_errors
            quarantined = (len(self.receiver.quarantine)
                           if self.receiver.quarantine is not None else 0)
            worker_restarts = 0
        fault_counters = (self.channel.fault_counters()
                          if isinstance(self.channel, FaultyChannel) else None)
        return CampaignResult(
            config=self.config,
            records=records,
            store=self.store,
            user_names=user_names,
            manifest=self.manifest,
            cluster=self.cluster,
            collector=self.collector,
            channel=self.channel,
            jobs_run=jobs_run,
            processes_run=self.cluster.processes_run,
            ingest=self.ingest,
            decode_errors=decode_errors,
            quarantined=quarantined,
            worker_restarts=worker_restarts,
            fault_counters=fault_counters,
            store_fault_injector=self.store_fault_injector,
            stage_timings=self.timer.as_dict(),
            tiered=self.tiered,
            feed_stats=self.feed_stats,
        )

    def snapshot(self) -> list[ProcessRecord]:
        """The records consolidated so far, mid-campaign.

        In streaming mode this is the live view (finalized records plus a
        non-destructive peek at still-open process groups); in batch mode it
        flushes the receiver and runs a full consolidation pass.  Call it
        from the :attr:`on_job` hook for live Table-2/Table-7 analyses.
        """
        self._drain_socket()
        if self.ingest is not None:
            return self.ingest.snapshot()
        assert self.receiver is not None
        self.receiver.flush()
        return Consolidator(self.store).run()

    def snapshot_delta(self, cursor: int = 0) -> ProcessDelta:
        """Incremental live view: only the records that changed since ``cursor``.

        Streaming mode only (batch re-consolidation rewrites records, so
        there is no delta stream).  The feed behind :meth:`live_analysis`.
        """
        if self.ingest is None:
            raise CollectionError(
                "snapshot_delta requires ingest_mode='streaming'")
        self._drain_socket()
        return self.ingest.snapshot_delta(cursor)

    def live_analysis(self) -> LiveAnalysis:
        """An incrementally updated analysis bound to this campaign's stream.

        Streaming mode only; prepares the campaign if needed so the user
        mapping exists.  Bind it before :meth:`run` and call its view
        methods from the :attr:`on_job` hook: each call pulls only the
        records finalized since the last one, so mid-run Table 2/3/8 and
        similarity views cost O(new records), byte-identical to a fresh
        :class:`~repro.core.pipeline.AnalysisPipeline` over
        :meth:`snapshot` records.
        """
        self.prepare()
        if self.ingest is None:
            raise CollectionError(
                "live_analysis requires ingest_mode='streaming'; batch mode "
                "can feed LiveAnalysis.observe() with snapshot() output instead")
        user_names = {user.uid: user.username for user in self.cluster.users.all()}
        return LiveAnalysis(user_names=user_names,
                            compare_backend=self.config.compare_backend).bind(self)

    def _drain_socket(self) -> None:
        """Pull queued loopback datagrams into the ingest path (socket transport).

        :meth:`prepare` rebinds this per instance -- straight to
        ``channel.drain`` for socket transport, to a no-op otherwise -- so
        the per-job call never re-checks the transport.
        """
        if isinstance(self.channel, SocketChannel):
            self.channel.drain()

    def _lossy_channel(self) -> LossyChannel | None:
        """The loss-decision channel, unwrapping a fault decorator if present."""
        channel = self.channel
        if isinstance(channel, FaultyChannel):
            channel = channel.inner
        return channel if isinstance(channel, LossyChannel) else None

    def _run_profile(self, profile: UserProfile, *, jobs_before: int = 0) -> int:
        """Run one profile's whole job slice; returns the number of jobs run.

        This is the unit of work the parallel driver assigns to a worker:
        everything inside -- the job RNG, the per-user loss RNG, script
        construction, clock advance -- depends only on the profile, the
        config and the cluster state at entry, never on other profiles.
        """
        user = self.cluster.users.get(profile.username)
        lossy = self._lossy_channel()
        if lossy is not None:
            # Per-user loss streams: drop decisions depend only on this
            # profile, so the serial and parallel drivers lose the *same*
            # datagrams (the determinism contract's loss clause).
            lossy.rng = self.rng.fork("udp-loss", profile.username)
        job_rng = self.rng.fork("jobs", profile.username)
        on_job = self.on_job
        jobs_run = 0
        for job_index, template, quirk in iter_profile_jobs(
                self.config, profile, job_rng):
            script = self.scenario_builder.build_job_script(
                profile, template, user, job_index=job_index, quirk_module=quirk,
            )
            self.cluster.run_job(profile.username, script)
            jobs_run += 1
            self._drain_socket()
            if on_job is not None:
                on_job(jobs_before + jobs_run)
        # Each user's activity spreads over the campaign window.
        self.cluster.filesystem.advance_clock(3600)
        return jobs_run

    def _run_jobs(self) -> int:
        """Submit every profile's jobs through the scheduler; returns the count."""
        jobs_run = 0
        with self.timer.section("campaign.jobs"):
            for profile in self.profiles:
                jobs_run += self._run_profile(profile, jobs_before=jobs_run)
        return jobs_run


def run_campaign(scale: float = 0.01, seed: int = 42, *,
                 loss_rate: float = 0.0002) -> CampaignResult:
    """Convenience wrapper used by examples and benchmarks."""
    config = CampaignConfig(scale=scale, seed=seed, loss_rate=loss_rate)
    return DeploymentCampaign(config=config).run()
