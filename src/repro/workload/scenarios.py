"""Turn profile templates into concrete job scripts.

The :class:`ScenarioBuilder` knows how to translate a
:class:`~repro.workload.profiles.JobTemplate` into a
:class:`~repro.hpcsim.slurm.JobScript`: it resolves system tools and installed
package variants through the corpus manifest, assembles the module list
(the opt-in ``siren`` module, the stacks required by the executables, any
user-environment quirk), creates per-user Python scripts on the filesystem and
wires up the interpreter's imported packages and mapped extension files.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.builder import CorpusManifest
from repro.corpus.python_env import extension_paths
from repro.hpcsim.cluster import Cluster
from repro.hpcsim.slurm import JobScript, ProcessSpec, StepSpec
from repro.hpcsim.users import User
from repro.util.rng import SeededRNG
from repro.workload.profiles import JobTemplate, PythonRun, UserProfile

#: How often a user's Python scripts change content: 1 = a new script every
#: job, N = a new revision every N jobs, 0 = the script never changes.
SCRIPT_VARIATION_PERIOD: dict[str, int] = {
    "user_5": 1,
    "user_12": 1,
    "user_4": 12,
}


@dataclass
class ScenarioBuilder:
    """Build job scripts against an installed corpus."""

    cluster: Cluster
    manifest: CorpusManifest
    rng: SeededRNG = field(default_factory=lambda: SeededRNG(99))
    _script_cache: dict[tuple[str, str, int], str] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # job scripts
    # ------------------------------------------------------------------ #
    def build_job_script(
        self,
        profile: UserProfile,
        template: JobTemplate,
        user: User,
        *,
        job_index: int = 0,
        quirk_module: str | None = None,
    ) -> JobScript:
        """Materialise one job of ``profile`` following ``template``."""
        processes: list[ProcessSpec] = []
        modules: list[str] = []
        if profile.opt_in:
            modules.append(self.manifest.siren_module.split("/")[0])
        modules.extend(template.extra_modules)
        if quirk_module:
            modules.append(quirk_module)

        for tool_name, count in template.system_calls:
            processes.append(ProcessSpec(executable=self.manifest.tool(tool_name), count=count))

        for run in template.app_runs:
            executable = self.manifest.find_executable(run.package, run.variant_id,
                                                       user.username)
            modules.extend(module for module in executable.required_modules
                           if module not in modules)
            processes.append(ProcessSpec(executable=executable.path,
                                         argv=(executable.path, "-input", "run.in"),
                                         ranks=run.ranks, count=run.count))

        for run in template.python_runs:
            processes.append(self._python_process(profile, run, user, job_index))

        return JobScript(
            name=f"{profile.username}-{template.name}",
            modules=tuple(modules),
            steps=(StepSpec(processes=tuple(processes), uses_srun=template.uses_srun),),
        )

    # ------------------------------------------------------------------ #
    # python runs
    # ------------------------------------------------------------------ #
    def _python_process(self, profile: UserProfile, run: PythonRun, user: User,
                        job_index: int) -> ProcessSpec:
        interpreter_path = self.manifest.interpreter(run.interpreter)
        script_path = self.ensure_script(user, run, job_index)
        return ProcessSpec(
            executable=interpreter_path,
            argv=(interpreter_path, script_path),
            count=run.count,
            python_script=script_path,
            imported_packages=run.packages,
            mapped_files=tuple(extension_paths(run.interpreter, list(run.packages))),
        )

    def ensure_script(self, user: User, run: PythonRun, job_index: int) -> str:
        """Create (or reuse) the Python script a run executes and return its path.

        Users in :data:`SCRIPT_VARIATION_PERIOD` produce a new script revision
        every ``period`` jobs, which drives the "unique SCRIPT_H" counts of
        Table 8; other users keep reusing the same script file.
        """
        period = SCRIPT_VARIATION_PERIOD.get(user.username, 0)
        revision = (job_index // period) if period else 0
        key = (user.username, run.script_tag, revision)
        cached = self._script_cache.get(key)
        if cached is not None:
            return cached

        path = f"{user.home}/scripts/{run.script_tag}-r{revision}.py"
        imports = "\n".join(f"import {package}" for package in run.packages)
        body_lines = [
            f"# {run.script_tag} revision {revision} for {user.username}",
            imports,
            "",
            "def main():",
            f"    workload = [{revision} * step for step in range({8 + revision % 5})]",
            "    total = sum(workload)",
            f"    print('{run.script_tag}', total)",
            "",
            "if __name__ == '__main__':",
            "    main()",
            "",
        ]
        self.cluster.filesystem.add_file(path, "\n".join(body_lines).encode("utf-8"),
                                         uid=user.uid, gid=user.gid)
        self._script_cache[key] = path
        return path
