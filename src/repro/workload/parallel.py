"""The process-parallel campaign driver (``campaign_workers > 1``).

The serial :class:`~repro.workload.campaign.DeploymentCampaign` runs every
user profile's job slice in one OS process.  This module partitions the
profiles across N driver workers, each of which rebuilds the *same* cluster
and corpus (``prepare()`` is deterministic in the config seed), runs only its
assigned profiles, and ships the datagrams its collector emitted back to the
parent, which feeds them into the one real ingest path.

Determinism contract (tested in ``tests/workload/test_parallel_campaign.py``,
documented in ``docs/architecture.md``):

* **Job ids** -- every job id the serial driver would allocate is known up
  front: profile ``i`` consumes exactly ``config.jobs_for(profile_i)`` ids,
  so a worker seeks its scheduler to ``first_job_id + prefix_sum`` before
  running a profile.  Keeping ``first_job_id`` itself untouched preserves the
  round-robin node assignment (``job_id - first_job_id``).
* **Pids** -- each job's pid consumption is a pure function of its template
  (one parent pid per process-spec repetition, one per rank), and template
  selection is replayable from the profile's own ``rng.fork("jobs", user)``
  stream via :func:`~repro.workload.campaign.iter_profile_jobs`.  Workers
  seek the runtime pid counter the same way, modulo the kernel-style pid
  wrap.
* **Clock** -- every job script advances the virtual clock by exactly one
  second (single-step scripts) and every profile adds the one-hour
  between-users gap, so the clock at each profile's start is also a prefix
  sum.  Workers *advance* to the target (never rewind); after every profile
  the planner's prediction is asserted against reality, so any drift fails
  loudly instead of producing subtly shifted timestamps.
* **Inodes** -- the only files created during the job loop are the per-user
  Python scripts (one inode per distinct script revision, replayable from
  the same job plan), so the filesystem's inode counter is seek-able
  exactly like the pid counter.
* **Loss** -- drop decisions come from a per-user RNG fork
  (``rng.fork("udp-loss", username)``), re-seeded at the start of every
  profile by serial and parallel drivers alike, so both lose the same
  datagrams.
* **Ordering** -- each process's datagrams travel in order (a profile runs
  entirely inside one worker, and the feed queue is per-producer FIFO), so
  every consolidated record is field-for-field identical to the serial
  run's.  The *arrival interleaving across users* differs, which makes the
  streaming-mode record list a permutation of the serial one; equality is
  therefore pinned on canonically sorted record lists.

One intentional non-equivalence: hashing *cache* counters.  Every worker
starts with a cold :class:`~repro.collector.fuzzy.ArtifactHasher` cache, so a
binary shared between two workers' profiles is hashed once per worker --
``hashes_computed`` may exceed the serial run's and ``hash_cache_hits`` fall
short by the same amount.  The digests (and hence the records) are identical.

Faults: channel fault plans are rejected at ``prepare()`` (their
reorder/holdback pipeline is ordered over the global stream, which no worker
has); store and ingest-worker faults live in the parent and work unchanged.
With ``transport="socket"`` the parent's loopback socket still feeds its own
receiver, but worker datagrams travel over the feed queue, not the wire.

Supervision is fail-fast (unlike the self-healing ingest pool): a crashed or
stalled driver worker raises :class:`~repro.util.errors.CollectionError`
naming the worker -- the job stream is cheap to re-run, and healing it would
require replaying partially-run profiles.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass, replace
from queue import Empty
from typing import TYPE_CHECKING, Callable

from repro.util.errors import CollectionError
from repro.util.rng import SeededRNG
from repro.util.timing import StageTimer
from repro.workload.campaign import iter_profile_jobs
from repro.workload.profiles import JobTemplate, UserProfile
from repro.workload.scenarios import SCRIPT_VARIATION_PERIOD

if TYPE_CHECKING:  # circular at runtime: campaign imports this lazily
    from repro.workload.campaign import CampaignConfig, DeploymentCampaign

#: Datagrams buffered in a worker before a batch ships to the parent.
BATCH_DATAGRAMS = 1024
#: Seconds between liveness checks while the parent waits on the queue.
_POLL_INTERVAL = 0.2
#: Queue messages drained per wake-up when coalescing worker datagram
#: batches into one parent ingest call (bounds "job" callback latency).
_DRAIN_LIMIT = 32
#: The runtime's pid counter starts here and wraps like the kernel's pid_max.
_PID_BASE = 1000
_PID_WRAP = 4_194_304
_PID_PERIOD = _PID_WRAP - _PID_BASE + 1
#: Clock seconds consumed per job (single-step scripts) and per profile gap.
_CLOCK_PER_JOB = 1
_CLOCK_PROFILE_GAP = 3600


# ---------------------------------------------------------------------- #
# planning: how many ids/pids/seconds does each profile consume?
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ProfilePlan:
    """Resource consumption of one profile's job slice, computed up front."""

    username: str
    jobs: int         #: job ids consumed
    pids: int         #: pid allocations consumed
    clock: int        #: virtual-clock seconds consumed (incl. the profile gap)
    inodes: int       #: filesystem inodes consumed (lazily created scripts)
    job_offset: int   #: prefix sums over the profile order: consumption of
    pid_offset: int   #: every profile before this one
    clock_offset: int
    inode_offset: int


def _template_pid_cost(template: JobTemplate) -> int:
    """Pid allocations one job of ``template`` performs.

    Mirrors :meth:`Cluster.run_job`: one parent pid per process-spec
    repetition plus one pid per rank -- system tools and Python runs are
    single-rank specs, app runs carry their MPI rank count.
    """
    pids = 0
    for _tool, count in template.system_calls:
        pids += count * 2
    for run in template.app_runs:
        pids += run.count * (1 + run.ranks)
    for run in template.python_runs:
        pids += run.count * 2
    return pids


def _profile_inode_cost(username: str, job_plan: list[tuple[int, JobTemplate]]) -> int:
    """Inodes one profile's job slice allocates.

    The only files created during the job loop are the per-user Python
    scripts, one per distinct ``(script_tag, revision)`` key (mirrors
    :meth:`ScenarioBuilder.ensure_script`, whose cache is keyed the same
    way); replacements and ``touch_atime`` reuse the existing inode.
    """
    period = SCRIPT_VARIATION_PERIOD.get(username, 0)
    keys = {
        (run.script_tag, (job_index // period) if period else 0)
        for job_index, template in job_plan
        for run in template.python_runs
    }
    return len(keys)


def plan_profiles(config: "CampaignConfig",
                  profiles: tuple[UserProfile, ...]) -> list[ProfilePlan]:
    """Replay every profile's job plan without running it.

    Uses the same :func:`iter_profile_jobs` generator (and the same
    ``fork("jobs", username)`` RNG stream) as the drivers, so the planned
    template sequence -- and with it the pid count -- is exact, not an
    estimate.
    """
    rng = SeededRNG(config.seed)
    plans: list[ProfilePlan] = []
    job_offset = pid_offset = clock_offset = inode_offset = 0
    for profile in profiles:
        job_rng = rng.fork("jobs", profile.username)
        jobs = pids = 0
        job_plan: list[tuple[int, JobTemplate]] = []
        for index, template, _quirk in iter_profile_jobs(config, profile, job_rng):
            jobs += 1
            pids += _template_pid_cost(template)
            job_plan.append((index, template))
        clock = jobs * _CLOCK_PER_JOB + _CLOCK_PROFILE_GAP
        inodes = _profile_inode_cost(profile.username, job_plan)
        plans.append(ProfilePlan(
            username=profile.username, jobs=jobs, pids=pids, clock=clock,
            inodes=inodes, job_offset=job_offset, pid_offset=pid_offset,
            clock_offset=clock_offset, inode_offset=inode_offset))
        job_offset += jobs
        pid_offset += pids
        clock_offset += clock
        inode_offset += inodes
    return plans


def partition_plans(plans: list[ProfilePlan], workers: int) -> list[list[int]]:
    """Assign profile indices to workers, balancing by planned pid count.

    Greedy longest-processing-time: heaviest profile first onto the least
    loaded worker, ties broken by worker id -- fully deterministic.  Each
    worker's assignment is returned in original profile order (the order it
    will run them).
    """
    order = sorted(range(len(plans)), key=lambda i: (-plans[i].pids, i))
    loads = [0] * workers
    assignments: list[list[int]] = [[] for _ in range(workers)]
    for index in order:
        target = min(range(workers), key=lambda w: (loads[w], w))
        loads[target] += plans[index].pids
        assignments[target].append(index)
    for assignment in assignments:
        assignment.sort()
    return [assignment for assignment in assignments if assignment]


# ---------------------------------------------------------------------- #
# worker side
# ---------------------------------------------------------------------- #
def _seek_cluster(campaign: "DeploymentCampaign", plan: ProfilePlan,
                  base_clock: int, base_inode: int) -> None:
    """Position scheduler/runtime/clock/inodes exactly where the serial
    driver would be at this profile's start."""
    scheduler = campaign.cluster.scheduler
    runtime = campaign.cluster.runtime
    filesystem = campaign.cluster.filesystem
    scheduler._next_job_id = scheduler.first_job_id + plan.job_offset
    runtime._next_pid = _PID_BASE + (plan.pid_offset % _PID_PERIOD)
    filesystem._next_inode = base_inode + plan.inode_offset
    target = base_clock + plan.clock_offset
    if filesystem.clock > target:
        raise CollectionError(
            f"campaign worker planning drift: clock {filesystem.clock} is "
            f"already past profile {plan.username}'s start {target}")
    if filesystem.clock < target:
        filesystem.advance_clock(target - filesystem.clock)


def _check_profile_exit(campaign: "DeploymentCampaign", plan: ProfilePlan,
                        base_clock: int, base_inode: int, jobs_run: int) -> None:
    """Assert the profile consumed exactly what the planner predicted."""
    scheduler = campaign.cluster.scheduler
    runtime = campaign.cluster.runtime
    filesystem = campaign.cluster.filesystem
    clock = filesystem.clock
    expected_job = scheduler.first_job_id + plan.job_offset + plan.jobs
    expected_pid = _PID_BASE + ((plan.pid_offset + plan.pids) % _PID_PERIOD)
    expected_clock = base_clock + plan.clock_offset + plan.clock
    expected_inode = base_inode + plan.inode_offset + plan.inodes
    if (jobs_run != plan.jobs or scheduler._next_job_id != expected_job
            or runtime._next_pid != expected_pid or clock != expected_clock
            or filesystem._next_inode != expected_inode):
        raise CollectionError(
            f"campaign worker planning drift after profile {plan.username}: "
            f"jobs {jobs_run}/{plan.jobs}, "
            f"next job id {scheduler._next_job_id}/{expected_job}, "
            f"next pid {runtime._next_pid}/{expected_pid}, "
            f"clock {clock}/{expected_clock}, "
            f"next inode {filesystem._next_inode}/{expected_inode}")


def _worker_summary(campaign: "DeploymentCampaign", jobs_run: int) -> dict:
    """Everything the parent folds back after a worker finishes."""
    collector = campaign.collector
    hasher = collector.hasher
    sender = collector.sender
    channel = campaign.channel
    return {
        "jobs_run": jobs_run,
        "processes_run": campaign.cluster.processes_run,
        "hook_failures": campaign.cluster.runtime.hook_failures,
        "slurm_jobs": list(campaign.cluster.scheduler.jobs),
        "collector": {
            "processes_collected": collector.processes_collected,
            "processes_skipped": collector.processes_skipped,
            "section_errors": collector.section_errors,
        },
        "hasher": {
            "hashes_computed": hasher.hashes_computed,
            "cache_hits": hasher.cache_hits,
            "content_cache_hits": hasher.content_cache_hits,
        },
        "sender": {
            "messages_sent": sender.messages_sent,
            "datagrams_sent": sender.datagrams_sent,
            "send_errors": sender.send_errors,
        },
        "channel": {
            "datagrams_sent": channel.datagrams_sent,
            "bytes_sent": channel.bytes_sent,
            "datagrams_dropped": getattr(channel, "datagrams_dropped", 0),
        },
        "stage_timings": campaign.timer.as_dict(),
    }


def _campaign_worker_main(worker_id: int, config: "CampaignConfig",
                          profiles: tuple[UserProfile, ...],
                          assignment: list[int], plans: list[ProfilePlan],
                          base_clock: int, base_inode: int, out_queue) -> None:
    """One driver worker: rebuild the cluster, run assigned profiles, ship."""
    from repro.workload.campaign import DeploymentCampaign

    try:
        buffer: list[bytes] = []

        def ship(final: bool = False) -> None:
            if buffer and (final or len(buffer) >= BATCH_DATAGRAMS):
                out_queue.put(("data", worker_id, buffer[:]))
                buffer.clear()

        campaign = DeploymentCampaign(config=config, profiles=profiles,
                                      datagram_sink=buffer.append)
        campaign.on_job = lambda _jobs: (
            ship(), out_queue.put(("job", worker_id, 1)))
        campaign.prepare()
        clock = campaign.cluster.filesystem.clock
        inode = campaign.cluster.filesystem._next_inode
        if clock != base_clock or inode != base_inode:
            raise CollectionError(
                f"campaign worker {worker_id}: post-prepare clock/inode "
                f"{clock}/{inode} differ from the parent's "
                f"{base_clock}/{base_inode}; prepare() is no longer "
                "deterministic")
        jobs_total = 0
        try:
            for index in assignment:
                plan = plans[index]
                _seek_cluster(campaign, plan, base_clock, base_inode)
                jobs = campaign._run_profile(profiles[index])
                _check_profile_exit(campaign, plan, base_clock, base_inode, jobs)
                jobs_total += jobs
        finally:
            campaign.collector.close()
        ship(final=True)
        out_queue.put(("done", worker_id, _worker_summary(campaign, jobs_total)))
    except BaseException:  # noqa: BLE001 - ship the traceback, then die
        out_queue.put(("error", worker_id, traceback.format_exc()))


# ---------------------------------------------------------------------- #
# parent side
# ---------------------------------------------------------------------- #
def _context():
    """Fork-preferring multiprocessing context (pattern of the ingest pool)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


def _feeder(campaign: "DeploymentCampaign") -> Callable[[list[bytes]], None]:
    """How worker datagrams enter the parent's ingest path.

    Feeds the receiver/ingest front directly: the loss (and any socket hop)
    already happened inside the worker's channel, so running the parent
    channel again would apply it twice.
    """
    if campaign.ingest is not None:
        handle = campaign.ingest.handle_datagram
    else:
        assert campaign.receiver is not None
        handle = campaign.receiver.handle_datagram

    def feed(datagrams: list[bytes]) -> None:
        for datagram in datagrams:
            handle(datagram)

    return feed


def _fold_summaries(campaign: "DeploymentCampaign",
                    summaries: dict[int, dict]) -> None:
    """Fold worker counters into the parent's objects so CampaignResult
    fields mean the same thing in serial and parallel runs."""
    cluster = campaign.cluster
    collector = campaign.collector
    hasher = collector.hasher
    sender = collector.sender
    channel = campaign.channel
    all_jobs = []
    for summary in summaries.values():
        cluster.processes_run += summary["processes_run"]
        cluster.runtime.hook_failures += summary["hook_failures"]
        all_jobs.extend(summary["slurm_jobs"])
        for name, value in summary["collector"].items():
            setattr(collector, name, getattr(collector, name) + value)
        for name, value in summary["hasher"].items():
            setattr(hasher, name, getattr(hasher, name) + value)
        for name, value in summary["sender"].items():
            setattr(sender, name, getattr(sender, name) + value)
        for name, value in summary["channel"].items():
            if hasattr(channel, name):
                setattr(channel, name, getattr(channel, name) + value)
        campaign.timer.merge(summary["stage_timings"])
    all_jobs.sort(key=lambda job: job.job_id)
    cluster.scheduler.jobs.extend(all_jobs)
    if all_jobs:
        cluster.scheduler._next_job_id = all_jobs[-1].job_id + 1


def _check_liveness(processes: list, done: set[int]) -> None:
    for worker_id, process in enumerate(processes):
        if worker_id not in done and not process.is_alive():
            raise CollectionError(
                f"campaign worker {worker_id} died (exit code "
                f"{process.exitcode}) without reporting a result")


def run_parallel_jobs(campaign: "DeploymentCampaign") -> int:
    """Drive a prepared campaign's job loop across OS worker processes.

    Called by :meth:`DeploymentCampaign.run` when
    ``config.campaign_workers > 1``; returns the total job count, leaving
    the campaign's store/ingest exactly as a serial job loop would (up to
    the documented arrival-order permutation).
    """
    config = campaign.config
    profiles = campaign.profiles
    timer = campaign.timer
    with timer.section("campaign.jobs"):
        plans = plan_profiles(config, profiles)
        workers = max(1, min(config.campaign_workers, len(profiles)))
        assignments = partition_plans(plans, workers)
        # Workers collect only: memory channel into a sink, no store/ingest,
        # no fault plan (store/worker faults live in the parent).  Socket
        # campaigns ignore loss_rate, so their workers must too.  Workers are
        # daemonic and may not fork again, so the hashing pool knob flattens
        # to in-process hashing (digests are identical either way).
        worker_config = replace(
            config, campaign_workers=1, transport="memory",
            store_path=":memory:", fault_plan=None, hash_concurrency=1,
            loss_rate=0.0 if config.transport == "socket" else config.loss_rate)
        base_clock = campaign.cluster.filesystem.clock
        base_inode = campaign.cluster.filesystem._next_inode
        context = _context()
        queue = context.Queue()
        feed = _feeder(campaign)
        processes = []
        for worker_id, assignment in enumerate(assignments):
            process = context.Process(
                target=_campaign_worker_main,
                args=(worker_id, worker_config, profiles, assignment, plans,
                      base_clock, base_inode, queue),
                daemon=True, name=f"campaign-driver-{worker_id}")
            process.start()
            processes.append(process)

        jobs_run = 0
        done: set[int] = set()
        summaries: dict[int, dict] = {}
        feed_stats = {"batches_received": 0, "feed_calls": 0, "datagrams_fed": 0}
        batch: list[bytes] = []

        def flush_feed() -> None:
            # One parent ingest call per coalesced run: `driver.feed` +
            # `store.write` are the driver's remaining serial cost, so the
            # per-call overhead (timer sections, receiver dispatch, write
            # transactions) is paid once per run instead of once per worker
            # batch.
            with timer.section("driver.feed"):
                feed(batch)
            feed_stats["feed_calls"] += 1
            feed_stats["datagrams_fed"] += len(batch)
            batch.clear()

        try:
            while len(done) < len(processes):
                try:
                    item = queue.get(timeout=_POLL_INTERVAL)
                except Empty:
                    _check_liveness(processes, done)
                    continue
                # Coalesce: drain whatever else has already queued, so
                # contiguous worker datagram batches merge before the single
                # parent ingest path.  The cap bounds how long a queued
                # "job" progress callback can be deferred.
                items = [item]
                while len(items) < _DRAIN_LIMIT:
                    try:
                        items.append(queue.get_nowait())
                    except Empty:
                        break
                for kind, worker_id, payload in items:
                    if kind == "data":
                        feed_stats["batches_received"] += 1
                        batch.extend(payload)
                        continue
                    if batch:
                        # Control message: feed what queued before it so the
                        # serial path's feed/on_job relative order survives.
                        flush_feed()
                    if kind == "job":
                        jobs_run += payload
                        if campaign.on_job is not None:
                            campaign.on_job(jobs_run)
                    elif kind == "done":
                        done.add(worker_id)
                        summaries[worker_id] = payload
                    else:  # "error"
                        raise CollectionError(
                            f"campaign worker {worker_id} failed:\n{payload}")
                if batch:
                    flush_feed()
            for process in processes:
                process.join(timeout=10.0)
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join(timeout=5.0)
            queue.close()

        campaign.feed_stats = feed_stats
        _fold_summaries(campaign, summaries)
        total_jobs = sum(summary["jobs_run"] for summary in summaries.values())
        if total_jobs != sum(plan.jobs for plan in plans):
            raise CollectionError(
                f"parallel driver ran {total_jobs} jobs but the plan called "
                f"for {sum(plan.jobs for plan in plans)}")
        # The parent's clock never advanced; land it where the serial driver
        # would so post-run timestamps (store epochs, analyses) line up.
        end_clock = base_clock + sum(plan.clock for plan in plans)
        filesystem = campaign.cluster.filesystem
        if filesystem.clock < end_clock:
            filesystem.advance_clock(end_clock - filesystem.clock)
    return total_jobs


__all__ = [
    "BATCH_DATAGRAMS",
    "ProfilePlan",
    "plan_profiles",
    "partition_plans",
    "run_parallel_jobs",
]
