"""Per-user behaviour profiles of the deployment campaign.

Each :class:`UserProfile` describes one of the 12 opt-in users: how many jobs
they submitted over the campaign (at scale 1.0, the paper's Table 2 counts),
and a set of weighted :class:`JobTemplate` entries describing what a typical
job of theirs does -- which system tools run how many times, which scientific
package variants execute with how many MPI ranks, and which Python
interpreter/scripts they drive.

The calibration targets the *relative* structure of Tables 2, 3, 5 and 8:

* ``user_1`` submits the vast majority of jobs and only ever runs system
  tools, dominated by ``mkdir``/``rm`` loops;
* ``user_4`` runs huge system-tool fan-outs plus Python 3.6/3.11 workloads and
  a conda-based toolchain in its user directory;
* ``user_2``/``user_10`` share LAMMPS, ``user_2``/``user_8`` share GROMACS,
  ``user_8`` owns the many ICON variants (including the nondescript ``a.out``
  copies behind Table 7), and the remaining users map one-to-one onto janko,
  amber, gzip, alexandria and RadRad;
* ``user_6`` never launches anything from a system directory (no ``srun``,
  no ``lua``), matching the paper's observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AppRun:
    """One scientific-application execution inside a job."""

    package: str
    variant_id: str
    ranks: int = 2
    count: int = 1


@dataclass(frozen=True)
class PythonRun:
    """One Python interpreter execution inside a job."""

    interpreter: str
    script_tag: str                       #: per-user script identity (distinct tag = distinct script)
    packages: tuple[str, ...]
    count: int = 1


@dataclass(frozen=True)
class JobTemplate:
    """What one kind of job does."""

    name: str
    weight: float = 1.0
    system_calls: tuple[tuple[str, int], ...] = ()
    app_runs: tuple[AppRun, ...] = ()
    python_runs: tuple[PythonRun, ...] = ()
    extra_modules: tuple[str, ...] = ()
    uses_srun: bool = True
    uses_module_loads: bool = True        #: whether lua (module command) appears


@dataclass(frozen=True)
class UserProfile:
    """One opt-in user."""

    username: str
    job_count: int                         #: jobs at scale 1.0 (Table 2)
    templates: tuple[JobTemplate, ...]
    opt_in: bool = True                    #: loads the siren module in job scripts

    def template_weights(self) -> list[float]:
        """Weights of the job templates."""
        return [template.weight for template in self.templates]


# --------------------------------------------------------------------------- #
# common template fragments
# --------------------------------------------------------------------------- #
_BATCH_PROLOGUE: tuple[tuple[str, int], ...] = (("bash", 2), ("uname", 1), ("cat", 1))
_MODULE_LOAD: tuple[tuple[str, int], ...] = (("lua5.3", 2),)


def _sys(*pairs: tuple[str, int]) -> tuple[tuple[str, int], ...]:
    return tuple(pairs)


DEFAULT_PROFILES: tuple[UserProfile, ...] = (
    # user_1: file-management pipelines, system tools only, no srun/lua in most jobs.
    UserProfile(
        username="user_1", job_count=11_782,
        templates=(
            JobTemplate(
                name="file-churn", weight=0.92, uses_srun=False, uses_module_loads=False,
                system_calls=_sys(("bash", 12), ("mkdir", 45), ("rm", 44), ("cat", 2),
                                  ("uname", 2), ("ls", 1), ("cp", 1)),
            ),
            JobTemplate(
                name="file-churn-with-grep", weight=0.08, uses_srun=False,
                uses_module_loads=False,
                system_calls=_sys(("bash", 12), ("mkdir", 50), ("rm", 50), ("grep", 8),
                                  ("cat", 3), ("ls", 2), ("date", 1)),
            ),
        ),
    ),
    # user_2: LAMMPS + GROMACS production runs.
    UserProfile(
        username="user_2", job_count=930,
        templates=(
            JobTemplate(
                name="lammps-prod", weight=0.25,
                system_calls=_BATCH_PROLOGUE + _MODULE_LOAD + _sys(("srun", 3), ("ls", 2),
                                                                   ("grep", 1), ("cp", 1)),
                app_runs=(AppRun("LAMMPS", "gpu-2023", ranks=4),),
            ),
            JobTemplate(
                name="lammps-ml", weight=0.10,
                system_calls=_BATCH_PROLOGUE + _MODULE_LOAD + _sys(("srun", 3), ("mkdir", 2)),
                app_runs=(AppRun("LAMMPS", "ml-torch", ranks=4),),
            ),
            JobTemplate(
                name="gromacs-prod", weight=0.25,
                system_calls=_BATCH_PROLOGUE + _MODULE_LOAD + _sys(("srun", 2), ("cat", 4),
                                                                   ("cp", 2)),
                app_runs=(AppRun("GROMACS", "shared-2024", ranks=4),),
            ),
            JobTemplate(
                name="pre-post-processing", weight=0.30, uses_srun=False,
                system_calls=_sys(("bash", 8), ("cat", 20), ("grep", 5), ("ls", 4),
                                  ("rm", 6), ("cp", 4), ("uname", 1)),
            ),
            JobTemplate(
                name="workspace-setup", weight=0.10, uses_srun=False,
                system_calls=_sys(("bash", 6), ("mkdir", 8), ("find", 3), ("sort", 2),
                                  ("head", 2), ("tail", 2), ("wc", 2), ("du", 1), ("df", 1),
                                  ("echo", 4), ("hostname", 1), ("id", 1), ("date", 2),
                                  ("tee", 1), ("cut", 2), ("tr", 1), ("xargs", 1),
                                  ("sed", 2), ("gawk", 2), ("tar", 1), ("gzip", 1),
                                  ("md5sum", 1), ("stat", 2), ("readlink", 1), ("ln", 1),
                                  ("touch", 3), ("chmod", 1), ("basename", 1), ("dirname", 1),
                                  ("diff", 1), ("seq", 1), ("env", 1), ("sleep", 1),
                                  ("rsync", 1), ("ssh", 1), ("file", 1), ("numactl", 1)),
            ),
        ),
    ),
    # user_11: janko lattice QCD runs.
    UserProfile(
        username="user_11", job_count=230,
        templates=(
            JobTemplate(
                name="janko-hmc", weight=0.6,
                system_calls=_BATCH_PROLOGUE + _MODULE_LOAD + _sys(("srun", 2), ("ls", 2),
                                                                   ("mkdir", 1)),
                app_runs=(AppRun("janko", "prod", ranks=1),),
            ),
            JobTemplate(
                name="janko-devel", weight=0.15,
                system_calls=_BATCH_PROLOGUE + _MODULE_LOAD + _sys(("srun", 1),),
                app_runs=(AppRun("janko", "devel", ranks=1),),
            ),
            JobTemplate(
                name="bookkeeping", weight=0.25, uses_srun=False,
                system_calls=_sys(("bash", 4), ("cat", 3), ("ls", 2), ("grep", 2)),
            ),
        ),
    ),
    # user_8: the ICON climate user -- many variants, including the a.out copies.
    UserProfile(
        username="user_8", job_count=216,
        templates=(
            JobTemplate(
                name="icon-coupled", weight=0.30,
                system_calls=_BATCH_PROLOGUE + _MODULE_LOAD + _sys(("srun", 3), ("mkdir", 3),
                                                                   ("rm", 2), ("cat", 4)),
                app_runs=(AppRun("icon", "cray-r1", ranks=4), AppRun("icon", "coupler", ranks=1)),
                extra_modules=("cray-netcdf", "cray-hdf5"),
            ),
            JobTemplate(
                name="icon-gpu", weight=0.20,
                system_calls=_BATCH_PROLOGUE + _MODULE_LOAD + _sys(("srun", 2), ("cat", 2)),
                app_runs=(AppRun("icon", "gpu-amd-r1", ranks=4), AppRun("icon", "gpu-amd-r2", ranks=2)),
                extra_modules=("rocm",),
            ),
            JobTemplate(
                name="icon-experiments", weight=0.20,
                system_calls=_BATCH_PROLOGUE + _MODULE_LOAD + _sys(("srun", 2), ("ls", 3)),
                app_runs=(AppRun("icon", "cray-r2", ranks=2), AppRun("icon", "cray-r3", ranks=1),
                          AppRun("icon", "cray-r4", ranks=1), AppRun("icon", "ocean-only", ranks=1),
                          AppRun("icon", "atmo-only", ranks=1), AppRun("icon", "pre-proc", ranks=1)),
                extra_modules=("cray-netcdf", "cray-hdf5"),
            ),
            JobTemplate(
                name="icon-unknown-run", weight=0.15,
                system_calls=_BATCH_PROLOGUE + _MODULE_LOAD + _sys(("srun", 1), ("cat", 1)),
                app_runs=(AppRun("icon", "unknown-copy", ranks=2),
                          AppRun("icon", "unknown-patched", ranks=1)),
                extra_modules=("cray-netcdf", "cray-hdf5"),
            ),
            JobTemplate(
                name="gromacs-side-project", weight=0.15,
                system_calls=_BATCH_PROLOGUE + _MODULE_LOAD + _sys(("srun", 1),),
                app_runs=(AppRun("GROMACS", "shared-2024", ranks=2),),
            ),
        ),
    ),
    # user_4: enormous system fan-out, conda toolchain, Python 3.6 / 3.11 pipelines.
    UserProfile(
        username="user_4", job_count=205,
        templates=(
            JobTemplate(
                name="ensemble-python36", weight=0.55,
                system_calls=_sys(("bash", 40), ("srun", 2), ("rm", 900), ("mkdir", 900),
                                  ("cat", 30), ("uname", 60), ("ls", 10), ("grep", 6),
                                  ("cp", 6), ("sed", 4)),
                python_runs=(PythonRun("python3.6", "ensemble-driver",
                                       ("heapq", "struct", "math", "posixsubprocess", "select",
                                        "blake2", "hashlib", "json", "socket", "random"),
                                       count=36),
                             PythonRun("python3.6", "ensemble-merge",
                                       ("heapq", "struct", "math", "posixsubprocess", "select",
                                        "blake2", "hashlib", "numpy", "mpi4py", "pickle"),
                                       count=36),),
            ),
            JobTemplate(
                name="analysis-python311", weight=0.25,
                system_calls=_sys(("bash", 30), ("srun", 2), ("rm", 700), ("mkdir", 700),
                                  ("cat", 20), ("uname", 40), ("ls", 8)),
                python_runs=(PythonRun("python3.11", "postproc-stats",
                                       ("heapq", "struct", "math", "posixsubprocess", "select",
                                        "blake2", "hashlib", "numpy", "pandas", "scipy",
                                        "datetime", "csv", "json", "zoneinfo"),
                                       count=40),),
            ),
            JobTemplate(
                name="conda-tooling", weight=0.20, uses_srun=False,
                system_calls=_sys(("bash", 20), ("rm", 250), ("mkdir", 250), ("cat", 10),
                                  ("uname", 15), ("tar", 2), ("gzip", 2)),
                app_runs=(AppRun("miniconda", "py310", ranks=1, count=2),
                          AppRun("miniconda", "py311", ranks=1),
                          AppRun("miniconda", "solver", ranks=1),
                          AppRun("miniconda", "pip-tool", ranks=1),
                          AppRun("miniconda", "py310-update", ranks=1)),
            ),
        ),
    ),
    # user_5: small interactive Python 3.10 user.
    UserProfile(
        username="user_5", job_count=47,
        templates=(
            JobTemplate(
                name="python310-notebook", weight=0.6, uses_srun=False,
                system_calls=_sys(("bash", 1), ("uname", 1)),
                python_runs=(PythonRun("python3.10", "notebook-export",
                                       ("heapq", "struct", "math", "posixsubprocess", "select",
                                        "blake2", "hashlib", "numpy", "pandas", "json",
                                        "datetime", "csv", "pickle", "bz2", "lzma", "zlib"),
                                       count=1),),
            ),
            JobTemplate(
                name="python310-mpi", weight=0.4, uses_srun=True,
                system_calls=_sys(("bash", 1), ("srun", 1)),
                python_runs=(PythonRun("python3.10", "mpi-study",
                                       ("heapq", "struct", "math", "posixsubprocess", "select",
                                        "blake2", "hashlib", "mpi4py", "numpy", "scipy",
                                        "multiprocessing", "queue", "socket", "fcntl", "mmap",
                                        "array", "binascii", "bisect", "cmath", "ctypes",
                                        "decimal", "grp", "opcode", "random", "sha512",
                                        "unicodedata", "sha3"),
                                       count=1),),
            ),
        ),
    ),
    # user_10: the amber biomolecular-simulation user.
    UserProfile(
        username="user_10", job_count=28,
        templates=(
            JobTemplate(
                name="amber-md", weight=1.0,
                system_calls=_BATCH_PROLOGUE + _MODULE_LOAD + _sys(("srun", 2), ("mkdir", 40),
                                                                   ("rm", 40), ("cat", 20),
                                                                   ("ls", 6), ("cp", 4)),
                app_runs=(AppRun("amber", "hip", ranks=16), AppRun("amber", "hip-patch3", ranks=16)),
                extra_modules=("rocm", "cray-netcdf"),
            ),
        ),
    ),
    # user_9: tiny user who is the second LAMMPS user (a collaboration account).
    UserProfile(
        username="user_9", job_count=4,
        templates=(
            JobTemplate(
                name="lammps-collab", weight=1.0,
                system_calls=_sys(("bash", 1), ("srun", 1)),
                app_runs=(AppRun("LAMMPS", "gpu-2024", ranks=1),
                          AppRun("LAMMPS", "kokkos", ranks=1),
                          AppRun("LAMMPS", "cpu-only", ranks=1)),
                extra_modules=("rocm",),
            ),
        ),
    ),
    # user_3: alexandria.
    UserProfile(
        username="user_3", job_count=2,
        templates=(
            JobTemplate(
                name="alexandria-fit", weight=1.0, uses_srun=False, uses_module_loads=False,
                system_calls=_sys(("bash", 2), ("cat", 1)),
                app_runs=(AppRun("alexandria", "v1", ranks=2),),
            ),
        ),
    ),
    # user_6: RadRad, launched with no system-directory executables at all.
    UserProfile(
        username="user_6", job_count=2,
        templates=(
            JobTemplate(
                name="radrad-direct", weight=1.0, uses_srun=False, uses_module_loads=False,
                system_calls=(),
                app_runs=(AppRun("RadRad", "cpu", ranks=1), AppRun("RadRad", "gpu", ranks=1)),
            ),
        ),
    ),
    # user_7: one job with a user-installed gzip.
    UserProfile(
        username="user_7", job_count=1,
        templates=(
            JobTemplate(
                name="compress-results", weight=1.0, uses_srun=False, uses_module_loads=False,
                system_calls=_sys(("bash", 4), ("ls", 4), ("cat", 4), ("tar", 2), ("rm", 2),
                                  ("uname", 1)),
                app_runs=(AppRun("gzip", "user-build", ranks=1),),
            ),
        ),
    ),
    # user_12: one Python 3.10 job.
    UserProfile(
        username="user_12", job_count=1,
        templates=(
            JobTemplate(
                name="single-script", weight=1.0, uses_srun=False, uses_module_loads=False,
                system_calls=_sys(("bash", 2),),
                python_runs=(PythonRun("python3.10", "one-off-analysis",
                                       ("heapq", "struct", "math", "posixsubprocess", "select",
                                        "blake2", "hashlib", "numpy", "json"),
                                       count=1),),
            ),
        ),
    ),
)

PROFILES_BY_NAME: dict[str, UserProfile] = {
    profile.username: profile for profile in DEFAULT_PROFILES
}

#: Which packages each user has installed in their directories (derived from templates).
def packages_used_by(profile: UserProfile) -> list[str]:
    """Distinct package names appearing in a profile's templates."""
    seen: dict[str, None] = {}
    for template in profile.templates:
        for run in template.app_runs:
            seen.setdefault(run.package, None)
    return list(seen)


#: Bash-variant environment quirks: users whose login environment prepends an
#: alternative ncurses, producing the Table 4 libtinfo/libm variants of bash.
BASH_ENVIRONMENT_QUIRKS: dict[str, str] = {
    "user_2": "libtinfo-spack",
    "user_10": "libtinfo-sw",
}
