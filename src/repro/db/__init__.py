"""SQLite storage for SIREN messages and consolidated process records."""

from repro.db.schema import MESSAGES_SCHEMA, PROCESSES_SCHEMA
from repro.db.store import MessageStore
from repro.db.tiered import (
    MemoryBackend,
    SqliteBackend,
    StoreBackend,
    TieredStore,
    build_tiered_store,
)

__all__ = [
    "MessageStore",
    "MESSAGES_SCHEMA",
    "PROCESSES_SCHEMA",
    "StoreBackend",
    "SqliteBackend",
    "MemoryBackend",
    "TieredStore",
    "build_tiered_store",
]
