"""SQLite storage for SIREN messages and consolidated process records."""

from repro.db.schema import MESSAGES_SCHEMA, PROCESSES_SCHEMA
from repro.db.store import MessageStore

__all__ = ["MessageStore", "MESSAGES_SCHEMA", "PROCESSES_SCHEMA"]
