"""Tiered record store: bronze datagrams -> silver records -> gold rollups.

The per-campaign ``processes`` table answers every paper-facing question by
re-scanning all records -- O(records) per query, which collapses under the
roadmap's fleet-scale north star.  This module layers the classic
bronze/silver/gold tiering on top of the existing store:

* **bronze** -- the raw datagram/message tier.  Already present: the
  ``messages`` table of the attached :class:`~repro.db.store.MessageStore`
  (kept or cleared per ``keep_raw_messages``); the tiered store does not
  duplicate it.
* **silver** -- consolidated :class:`~repro.db.store.ProcessRecord` rows in
  ``shards`` hash-partitioned shards (the same FNV-1a-32 key hash the
  streaming front uses in :func:`~repro.ingest.sharded.shard_of`, so a
  record's shard is stable across runs and processes).  Heavy payload
  columns (shared-object lists, module lists, memory maps, ...) are
  replaced by FNV-1a-64 content digests referencing a shared blob table --
  the content-addressed scheme of the collector's digest cache -- so two
  campaigns observing the same binaries store each payload once
  (cross-campaign dedup).  Every digest write is verified against the
  stored content; a 64-bit collision raises :class:`StoreError` instead of
  silently corrupting a record.
* **gold** -- incrementally maintained rollup accumulators answering the
  four paper tables (:func:`~repro.analysis.stats.user_activity_table`,
  :func:`~repro.analysis.stats.system_executable_table`,
  :func:`~repro.analysis.stats.shared_object_variant_table`,
  :func:`~repro.analysis.stats.python_interpreter_table`) in O(answer):
  query cost depends on the number of *groups* in the answer, never on the
  record count.  The accumulators fold the same record deltas
  :class:`~repro.analysis.live.LiveAnalysis` consumes (the store's
  ``load_processes_since`` stream) and track per-group minimum/maximum
  process keys, so row order -- including tie order -- is byte-identical
  to the recompute-from-records reference over canonically key-sorted
  records (the repo's standard equivalence pin; see
  ``tests/db/test_tiered.py``).

Idempotence mirrors the store's upsert semantics: re-delivering a record
whose content digest is unchanged is a dedup no-op (the tiered analogue of
``INSERT OR IGNORE``); a *changed* record under a known key (batch
re-consolidation rebuilding a row from more messages, the ``INSERT OR
REPLACE`` path) appends a superseding silver version and marks the
campaign's gold dirty -- the next query rebuilds it from silver, so answers
never go stale.  :meth:`TieredStore.compact` rewrites the shards down to
the latest version per key and garbage-collects unreferenced blobs;
compaction is idempotent and answer-preserving.

The storage substrate sits behind the tiny :class:`StoreBackend` protocol
(:class:`SqliteBackend` for durable/on-disk stores, :class:`MemoryBackend`
for tests and throwaway runs); campaigns and frameworks pick it with the
``store_backend`` knob and opt into the whole tier with ``rollups``.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass, field, fields
from typing import Iterable, Iterator, Protocol

from repro.analysis.stats import (
    PythonInterpreterRow,
    SharedObjectVariantRow,
    SystemExecutableRow,
    UserActivityRow,
    _user_label,
)
from repro.collector.classify import ExecutableCategory
from repro.db.store import ProcessRecord
from repro.hashing.fnv import fnv1a_32, fnv1a_64
from repro.util.errors import StoreError

#: Default silver shard count (matches the default sharded-ingest width).
DEFAULT_SHARDS = 4

#: Heavy payload columns replaced by blob digests in silver rows.  The short
#: digest columns (``*_h``) and scalar header fields stay inline.
DEDUP_FIELDS = ("file_metadata", "modules", "objects", "compilers", "maps",
                "script_meta", "python_packages")

_ALL_FIELDS = tuple(f.name for f in fields(ProcessRecord))
_INLINE_FIELDS = tuple(name for name in _ALL_FIELDS if name not in DEDUP_FIELDS)
_KEY_FIELDS = ("jobid", "stepid", "pid", "hash", "host", "time")


def record_key(record: ProcessRecord) -> str:
    """The canonical process-key string (the sharding + identity key).

    Field-for-field the string :func:`~repro.ingest.sharded.shard_of`
    hashes, so a record lands on the same shard index the streaming front
    would route its messages to.
    """
    return "\x1f".join(str(getattr(record, name)) for name in _KEY_FIELDS)


def record_digest(record: ProcessRecord) -> int:
    """FNV-1a-64 content digest over every field of ``record``.

    Two records with equal digests are treated as identical content; the
    blob layer's collision check makes the same assumption explicit and
    loud for the payload columns.
    """
    joined = "\x1f".join(str(getattr(record, name)) for name in _ALL_FIELDS)
    return fnv1a_64(joined.encode("utf-8"))


def shard_of_key(key: str, shards: int) -> int:
    """Deterministic silver shard index for a process-key string."""
    return fnv1a_32(key.encode("utf-8")) % shards


# --------------------------------------------------------------------------- #
# backend seam
# --------------------------------------------------------------------------- #
class StoreBackend(Protocol):
    """Minimal storage contract behind the tiered store.

    A backend stores three things and understands none of them: silver
    *rows* (append-only ``(key, payload)`` string pairs per shard, rewritten
    wholesale by compaction), content *blobs* keyed by a 64-bit digest, and
    a small *meta* key/value table (shard-count pinning).  All tier
    semantics -- versioning, dedup, rollups, collision checks -- live in
    :class:`TieredStore`, so a new backend (an object store, a client to a
    real database server) only implements this protocol.
    """

    def append_rows(self, shard: int, rows: list[tuple[str, str]]) -> None:
        """Append ``(key, payload)`` rows to ``shard`` in order."""
        ...

    def iter_rows(self, shard: int) -> Iterator[tuple[str, str]]:
        """Yield ``shard``'s rows in append order."""
        ...

    def replace_rows(self, shard: int, rows: list[tuple[str, str]]) -> None:
        """Atomically replace ``shard``'s rows (compaction/retention)."""
        ...

    def row_count(self, shard: int) -> int:
        """Number of rows currently in ``shard``."""
        ...

    def put_blob(self, digest: int, content: str) -> None:
        """Store ``content`` under ``digest`` (no-op if present)."""
        ...

    def get_blob(self, digest: int) -> str | None:
        """The content stored under ``digest``, or ``None``."""
        ...

    def blob_count(self) -> int:
        """Number of distinct blobs stored."""
        ...

    def delete_blobs(self, digests: Iterable[int]) -> None:
        """Drop the named blobs (compaction garbage collection)."""
        ...

    def get_meta(self, name: str) -> str | None:
        """Read one meta value, or ``None``."""
        ...

    def set_meta(self, name: str, value: str) -> None:
        """Write one meta value."""
        ...

    def close(self) -> None:
        """Release backend resources."""
        ...


class MemoryBackend:
    """In-memory :class:`StoreBackend`: plain dicts and lists."""

    def __init__(self) -> None:
        self._shards: dict[int, list[tuple[str, str]]] = {}
        self._blobs: dict[int, str] = {}
        self._meta: dict[str, str] = {}

    def append_rows(self, shard: int, rows: list[tuple[str, str]]) -> None:
        self._shards.setdefault(shard, []).extend(rows)

    def iter_rows(self, shard: int) -> Iterator[tuple[str, str]]:
        yield from self._shards.get(shard, [])

    def replace_rows(self, shard: int, rows: list[tuple[str, str]]) -> None:
        self._shards[shard] = list(rows)

    def row_count(self, shard: int) -> int:
        return len(self._shards.get(shard, []))

    def put_blob(self, digest: int, content: str) -> None:
        self._blobs.setdefault(digest, content)

    def get_blob(self, digest: int) -> str | None:
        return self._blobs.get(digest)

    def blob_count(self) -> int:
        return len(self._blobs)

    def delete_blobs(self, digests: Iterable[int]) -> None:
        for digest in digests:
            self._blobs.pop(digest, None)

    def get_meta(self, name: str) -> str | None:
        return self._meta.get(name)

    def set_meta(self, name: str, value: str) -> None:
        self._meta[name] = value

    def close(self) -> None:
        self._shards.clear()
        self._blobs.clear()


class SqliteBackend:
    """SQLite :class:`StoreBackend`: one shard table per silver partition.

    ``":memory:"`` (the default) keeps everything in RAM with durability
    traded for speed, matching :class:`~repro.db.store.MessageStore`'s
    pragma choices; an on-disk path runs in WAL mode and survives reopen
    (the tiered store rebuilds its in-memory state from the silver scan).
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self.connection = sqlite3.connect(path)
        if path == ":memory:":
            self.connection.execute("PRAGMA synchronous=OFF")
            self.connection.execute("PRAGMA journal_mode=MEMORY")
        else:
            self.connection.execute("PRAGMA journal_mode=WAL")
            self.connection.execute("PRAGMA synchronous=NORMAL")
        with self.connection:
            self.connection.execute(
                "CREATE TABLE IF NOT EXISTS tier_blobs ("
                "digest INTEGER PRIMARY KEY, content TEXT NOT NULL)")
            self.connection.execute(
                "CREATE TABLE IF NOT EXISTS tier_meta ("
                "name TEXT PRIMARY KEY, value TEXT NOT NULL)")
        self._known_shards: set[int] = {
            int(row[0].rsplit("_", 1)[1]) for row in self.connection.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
                " AND name LIKE 'silver_%'")
        }

    def _ensure_shard(self, shard: int) -> str:
        table = f"silver_{shard}"
        if shard not in self._known_shards:
            with self.connection:
                self.connection.execute(
                    f"CREATE TABLE IF NOT EXISTS {table} ("
                    "seq INTEGER PRIMARY KEY AUTOINCREMENT, "
                    "key TEXT NOT NULL, payload TEXT NOT NULL)")
            self._known_shards.add(shard)
        return table

    def append_rows(self, shard: int, rows: list[tuple[str, str]]) -> None:
        table = self._ensure_shard(shard)
        with self.connection:
            self.connection.executemany(
                f"INSERT INTO {table} (key, payload) VALUES (?, ?)", rows)

    def iter_rows(self, shard: int) -> Iterator[tuple[str, str]]:
        table = self._ensure_shard(shard)
        cursor = self.connection.execute(
            f"SELECT key, payload FROM {table} ORDER BY seq")
        while batch := cursor.fetchmany(1024):
            yield from batch

    def replace_rows(self, shard: int, rows: list[tuple[str, str]]) -> None:
        table = self._ensure_shard(shard)
        with self.connection:
            self.connection.execute(f"DELETE FROM {table}")
            self.connection.executemany(
                f"INSERT INTO {table} (key, payload) VALUES (?, ?)", rows)

    def row_count(self, shard: int) -> int:
        table = self._ensure_shard(shard)
        return int(self.connection.execute(
            f"SELECT COUNT(*) FROM {table}").fetchone()[0])

    def put_blob(self, digest: int, content: str) -> None:
        with self.connection:
            self.connection.execute(
                "INSERT OR IGNORE INTO tier_blobs (digest, content)"
                " VALUES (?, ?)", (_signed(digest), content))

    def get_blob(self, digest: int) -> str | None:
        row = self.connection.execute(
            "SELECT content FROM tier_blobs WHERE digest = ?",
            (_signed(digest),)).fetchone()
        return None if row is None else str(row[0])

    def blob_count(self) -> int:
        return int(self.connection.execute(
            "SELECT COUNT(*) FROM tier_blobs").fetchone()[0])

    def delete_blobs(self, digests: Iterable[int]) -> None:
        with self.connection:
            self.connection.executemany(
                "DELETE FROM tier_blobs WHERE digest = ?",
                [(_signed(digest),) for digest in digests])

    def get_meta(self, name: str) -> str | None:
        row = self.connection.execute(
            "SELECT value FROM tier_meta WHERE name = ?", (name,)).fetchone()
        return None if row is None else str(row[0])

    def set_meta(self, name: str, value: str) -> None:
        with self.connection:
            self.connection.execute(
                "INSERT OR REPLACE INTO tier_meta (name, value) VALUES (?, ?)",
                (name, value))

    def close(self) -> None:
        self.connection.close()


def _signed(digest: int) -> int:
    """Map an unsigned 64-bit digest into SQLite's signed INTEGER range."""
    return digest - 0x10000000000000000 if digest >= 0x8000000000000000 else digest


# --------------------------------------------------------------------------- #
# gold accumulators
# --------------------------------------------------------------------------- #
#: The canonical process key tuple (the batch consolidator's record order).
_Key = tuple[str, str, int, str, str, int]


def _key_tuple(record: ProcessRecord) -> _Key:
    return (record.jobid, record.stepid, record.pid, record.hash,
            record.host, record.time)


@dataclass
class _UserRollup:
    """Gold accumulator behind one Table 2 row (min-key tracked for order)."""

    first_key: _Key
    jobs: set[str] = field(default_factory=set)
    counts: dict[str, int] = field(default_factory=dict)


@dataclass
class _GroupRollup:
    """Gold accumulator behind one Table 3/8 row."""

    first_key: _Key
    users: set[str] = field(default_factory=set)
    jobs: set[str] = field(default_factory=set)
    processes: int = 0
    hashes: set[str] = field(default_factory=set)


@dataclass
class _VariantRollup:
    """Gold accumulator behind one Table 4 row (one object set of one exe)."""

    first_key: _Key
    process_count: int = 0


@dataclass
class _ExeNameRollup:
    """Per executable-*name* state Table 4 needs beyond its variants.

    The reference implementation updates ``exe_path`` on every matching
    record, so the reported path belongs to the *last* match in canonical
    key order -- reproduced here by max-key tracking (the mirror image of
    the min-key trick that pins row order).
    """

    last_key: _Key
    executable: str
    variants: dict[tuple[str, ...], _VariantRollup] = field(default_factory=dict)


@dataclass
class _CampaignRollups:
    """All gold accumulators of one campaign."""

    users: dict[str, _UserRollup] = field(default_factory=dict)
    system: dict[str, _GroupRollup] = field(default_factory=dict)
    python: dict[str, _GroupRollup] = field(default_factory=dict)
    by_exe_name: dict[str, _ExeNameRollup] = field(default_factory=dict)

    def fold(self, record: ProcessRecord, user_names: dict[int, str]) -> None:
        """Fold one finalized record into every accumulator (commutative)."""
        key = _key_tuple(record)
        user = _user_label(record, user_names)
        stat = self.users.get(user)
        if stat is None:
            stat = self.users[user] = _UserRollup(first_key=key)
        elif key < stat.first_key:
            stat.first_key = key
        if record.jobid:
            stat.jobs.add(record.jobid)
        stat.counts[record.category] = stat.counts.get(record.category, 0) + 1

        if record.category == ExecutableCategory.SYSTEM.value:
            self._fold_group(self.system, record.executable, key, user,
                             record.jobid, record.objects_h)
        elif record.category == ExecutableCategory.PYTHON.value:
            self._fold_group(self.python, record.executable_name, key, user,
                             record.jobid, record.script_h)

        name = record.executable_name
        exe = self.by_exe_name.get(name)
        if exe is None:
            exe = self.by_exe_name[name] = _ExeNameRollup(
                last_key=key, executable=record.executable)
        elif key > exe.last_key:
            exe.last_key = key
            exe.executable = record.executable
        objects = tuple(record.object_list)
        variant = exe.variants.get(objects)
        if variant is None:
            variant = exe.variants[objects] = _VariantRollup(first_key=key)
        elif key < variant.first_key:
            variant.first_key = key
        variant.process_count += 1

    @staticmethod
    def _fold_group(stats: dict[str, _GroupRollup], group: str, key: _Key,
                    user: str, jobid: str, content_hash: str) -> None:
        stat = stats.get(group)
        if stat is None:
            stat = stats[group] = _GroupRollup(first_key=key)
        elif key < stat.first_key:
            stat.first_key = key
        stat.users.add(user)
        if jobid:
            stat.jobs.add(jobid)
        stat.processes += 1
        if content_hash:
            stat.hashes.add(content_hash)


def _in_first_key_order(stats: dict) -> list:
    """Group names ordered by their minimum process key.

    A recompute over canonically key-sorted records inserts each group at
    its first record, i.e. at the group's minimum key -- so this order *is*
    the reference's pre-sort row order, and the stable table sort on top
    breaks ties identically.
    """
    return sorted(stats, key=lambda group: stats[group].first_key)


# --------------------------------------------------------------------------- #
# the tiered store
# --------------------------------------------------------------------------- #
class TieredStore:
    """Partitioned silver record tier + incrementally maintained gold rollups.

    Parameters
    ----------
    backend:
        The :class:`StoreBackend` substrate (default: a fresh
        :class:`MemoryBackend`).  Reopening a backend that already holds
        silver rows rebuilds the in-memory version map and gold rollups
        from one silver scan (counted in ``rollup_rebuilds``).
    shards:
        Silver partition count.  Pinned in backend meta on first use; a
        mismatched reopen raises :class:`StoreError` (rows would land on
        the wrong partitions).
    campaign:
        Default campaign label of :meth:`ingest_records`.  One backend can
        hold many campaigns; blobs are shared across all of them, silver
        rows and gold rollups are per campaign.
    user_names:
        UID -> anonymised-label mapping baked into the Table 2/3/8 user
        dimensions; must not change after records are ingested.
    """

    def __init__(self, backend: StoreBackend | None = None, *,
                 shards: int = DEFAULT_SHARDS, campaign: str = "campaign",
                 user_names: dict[int, str] | None = None) -> None:
        if shards < 1:
            raise StoreError(f"tiered store needs shards >= 1, got {shards}")
        self.backend: StoreBackend = MemoryBackend() if backend is None else backend
        self.campaign = campaign
        self.user_names = dict(user_names or {})
        pinned = self.backend.get_meta("shards")
        if pinned is None:
            self.backend.set_meta("shards", str(shards))
        elif int(pinned) != shards:
            raise StoreError(
                f"backend was partitioned into {pinned} silver shards; "
                f"reopening it with shards={shards} would misroute records")
        self.shards = shards
        #: Operational counters (every key is declared in
        #: :data:`repro.util.counters.COUNTERS`; the ``rollups`` lint family
        #: checks each increment site below against the registry).
        self.counters: dict[str, int] = {
            "blob_dedup_hits": 0,
            "blobs_collected": 0,
            "compaction_dropped": 0,
            "compactions": 0,
            "retention_dropped": 0,
            "rollup_dedup_skips": 0,
            "rollup_query_hits": 0,
            "rollup_query_misses": 0,
            "rollup_rebuilds": 0,
            "rollup_records_applied": 0,
            "rollup_syncs": 0,
        }
        #: key string -> (content digest, campaign) of the latest version.
        self._versions: dict[str, tuple[int, str]] = {}
        #: live record count per campaign, maintained incrementally so
        #: :meth:`campaigns` / :meth:`record_count` -- and therefore every
        #: default-campaign gold query -- stay O(campaigns), not O(records).
        self._campaign_counts: dict[str, int] = {}
        self._gold: dict[str, _CampaignRollups] = {}
        self._dirty: set[str] = set()
        if any(self.backend.row_count(shard) for shard in range(self.shards)):
            self._rebuild()

    # ------------------------------------------------------------------ #
    # silver ingest
    # ------------------------------------------------------------------ #
    def ingest_records(self, records: Iterable[ProcessRecord], *,
                       campaign: str | None = None) -> int:
        """Fold a batch of finalized records into silver + gold.

        Idempotent per ``(key, content)``: re-delivered unchanged records
        are dedup no-ops; a changed record under a known key appends a
        superseding silver version and marks the owning campaign's gold
        dirty for a lazy rebuild.  Returns how many versions were appended.
        """
        label = self.campaign if campaign is None else campaign
        pending: dict[int, list[tuple[str, str]]] = {}
        applied = 0
        for record in records:
            key = record_key(record)
            digest = record_digest(record)
            previous = self._versions.get(key)
            if previous is not None and previous[0] == digest and previous[1] == label:
                self.counters["rollup_dedup_skips"] += 1
                continue
            payload = self._encode(record, label, digest)
            pending.setdefault(shard_of_key(key, self.shards), []).append(
                (key, payload))
            self._versions[key] = (digest, label)
            applied += 1
            if previous is None or previous[1] != label:
                if previous is not None:
                    self._campaign_counts[previous[1]] -= 1
                self._campaign_counts[label] = \
                    self._campaign_counts.get(label, 0) + 1
            if previous is not None:
                # A superseding version: the old content is already folded
                # into gold, so the rollups must be rebuilt from the latest
                # silver versions before the next query.
                self._dirty.add(label)
                if previous[1] != label:
                    self._dirty.add(previous[1])
            elif label not in self._dirty:
                self._rollups(label).fold(record, self.user_names)
                self.counters["rollup_records_applied"] += 1
        for shard, rows in sorted(pending.items()):
            self.backend.append_rows(shard, rows)
        self.counters["rollup_syncs"] += 1
        return applied

    def _encode(self, record: ProcessRecord, campaign: str, digest: int) -> str:
        """Silver payload JSON for one record (heavy columns as blob refs)."""
        payload: dict[str, object] = {
            "campaign": campaign,
            "digest": str(digest),
            "fields": {name: getattr(record, name) for name in _INLINE_FIELDS},
            "blobs": {name: str(self._put_blob(getattr(record, name)))
                      for name in DEDUP_FIELDS},
        }
        return json.dumps(payload, sort_keys=True)

    def _put_blob(self, content: str) -> int:
        digest = fnv1a_64(content.encode("utf-8"))
        existing = self.backend.get_blob(digest)
        if existing is None:
            self.backend.put_blob(digest, content)
        elif existing != content:
            raise StoreError(
                f"FNV-64 content digest collision on blob {digest:#018x}: "
                "two distinct payloads hash identically; the "
                "content-addressed dedup scheme cannot store both")
        else:
            self.counters["blob_dedup_hits"] += 1
        return digest

    def _decode(self, payload: str) -> tuple[ProcessRecord, str, int]:
        """Rebuild ``(record, campaign, digest)`` from one silver payload."""
        data = json.loads(payload)
        values: dict[str, object] = dict(data["fields"])
        for name, blob_digest in data["blobs"].items():
            content = self.backend.get_blob(int(blob_digest))
            if content is None:
                raise StoreError(
                    f"silver row references missing blob {int(blob_digest):#018x}"
                    f" for field {name!r} (compaction dropped a live blob?)")
            values[name] = content
        return ProcessRecord(**values), str(data["campaign"]), int(data["digest"])

    def _iter_live(self) -> Iterator[tuple[str, str, str]]:
        """Yield ``(key, payload, campaign)`` of every *latest* silver version."""
        for shard in range(self.shards):
            latest: dict[str, tuple[str, str]] = {}
            for key, payload in self.backend.iter_rows(shard):
                digest, campaign = self._current_version(key, payload)
                if digest is not None:
                    latest[key] = (payload, campaign)
            yield from ((key, payload, campaign)
                        for key, (payload, campaign) in latest.items())

    def _current_version(self, key: str, payload: str) -> tuple[str | None, str]:
        """Cheap latest-version check without decoding blobs."""
        data = json.loads(payload)
        digest, campaign = str(data["digest"]), str(data["campaign"])
        current = self._versions.get(key)
        if current is None or str(current[0]) != digest or current[1] != campaign:
            return None, campaign
        return digest, campaign

    # ------------------------------------------------------------------ #
    # record reconstruction
    # ------------------------------------------------------------------ #
    def records(self, campaign: str | None = None) -> list[ProcessRecord]:
        """Reconstruct the live records (latest version per key), key-sorted.

        ``campaign`` filters to one label; ``None`` returns every campaign's
        records.  The A/B seam: feeding the result to the
        :mod:`repro.analysis.stats` reference functions must reproduce every
        gold answer byte-for-byte.
        """
        records = []
        for _key, payload, label in self._iter_live():
            if campaign is not None and label != campaign:
                continue
            records.append(self._decode(payload)[0])
        records.sort(key=_key_tuple)
        return records

    def record_count(self, campaign: str | None = None) -> int:
        """Live (latest-version) record count, optionally per campaign."""
        if campaign is None:
            return len(self._versions)
        return self._campaign_counts.get(campaign, 0)

    def campaigns(self) -> list[str]:
        """Campaign labels present in silver, sorted."""
        return sorted(label for label, count in self._campaign_counts.items()
                      if count > 0)

    # ------------------------------------------------------------------ #
    # gold rollups
    # ------------------------------------------------------------------ #
    def _rollups(self, campaign: str) -> _CampaignRollups:
        rollups = self._gold.get(campaign)
        if rollups is None:
            rollups = self._gold[campaign] = _CampaignRollups()
        return rollups

    def _rebuild(self) -> None:
        """Rebuild the version map and every campaign's gold from silver."""
        self._versions.clear()
        # Pass 1: the latest version per key wins (append order per shard).
        for shard in range(self.shards):
            for key, payload in self.backend.iter_rows(shard):
                data = json.loads(payload)
                self._versions[key] = (int(data["digest"]), str(data["campaign"]))
        self._campaign_counts = {}
        for _digest, label in self._versions.values():
            self._campaign_counts[label] = \
                self._campaign_counts.get(label, 0) + 1
        # Pass 2: fold only the winning versions into fresh rollups.
        self._gold = {}
        for _key, payload, label in self._iter_live():
            record, _campaign, _digest = self._decode(payload)
            self._rollups(label).fold(record, self.user_names)
        self._dirty.clear()
        self.counters["rollup_rebuilds"] += 1

    def _query_rollups(self, campaign: str | None) -> _CampaignRollups:
        if campaign is None:
            labels = self.campaigns() or [self.campaign]
            if len(labels) > 1:
                raise StoreError(
                    f"this tiered store holds {len(labels)} campaigns "
                    f"({', '.join(labels)}); name one to query its rollups")
            campaign = labels[0]
        if self._dirty:
            self.counters["rollup_query_misses"] += 1
            self._rebuild()
        else:
            self.counters["rollup_query_hits"] += 1
        return self._gold.get(campaign) or _CampaignRollups()

    def user_activity(self, campaign: str | None = None) -> list[UserActivityRow]:
        """Table 2 in O(answer), byte-identical to ``user_activity_table``."""
        rollups = self._query_rollups(campaign)
        rows = [
            UserActivityRow(
                user=user,
                job_count=len(stat.jobs),
                system_processes=stat.counts.get(ExecutableCategory.SYSTEM.value, 0),
                user_processes=stat.counts.get(ExecutableCategory.USER.value, 0),
                python_processes=stat.counts.get(ExecutableCategory.PYTHON.value, 0),
            )
            for user in _in_first_key_order(rollups.users)
            for stat in (rollups.users[user],)
        ]
        rows.sort(key=lambda row: (row.job_count, row.system_processes,
                                   row.user_processes, row.python_processes),
                  reverse=True)
        return rows

    def system_executables(self, campaign: str | None = None,
                           top: int | None = 10) -> list[SystemExecutableRow]:
        """Table 3 in O(answer), byte-identical to ``system_executable_table``."""
        rollups = self._query_rollups(campaign)
        rows = [
            SystemExecutableRow(
                executable=path,
                unique_users=len(stat.users),
                job_count=len(stat.jobs),
                process_count=stat.processes,
                unique_objects_h=len(stat.hashes),
            )
            for path in _in_first_key_order(rollups.system)
            for stat in (rollups.system[path],)
        ]
        rows.sort(key=lambda row: (row.unique_users, row.job_count,
                                   row.process_count, row.unique_objects_h),
                  reverse=True)
        return rows[:top] if top is not None else rows

    def shared_object_variants(
        self, executable_name: str, campaign: str | None = None,
        distinguish: tuple[str, ...] = ("libtinfo", "libm"),
    ) -> list[SharedObjectVariantRow]:
        """Table 4 in O(answer), byte-identical to ``shared_object_variant_table``."""
        rollups = self._query_rollups(campaign)
        exe = rollups.by_exe_name.get(executable_name)
        if exe is None:
            return []
        rows = []
        for objects in _in_first_key_order(exe.variants):
            variant = exe.variants[objects]
            distinguishing: dict[str, str] = {}
            for name in distinguish:
                match = next((path for path in objects
                              if name in path.rsplit("/", 1)[-1]), "")
                distinguishing[name] = match
            rows.append(SharedObjectVariantRow(
                executable=exe.executable, process_count=variant.process_count,
                objects=objects, distinguishing=distinguishing))
        rows.sort(key=lambda row: row.process_count, reverse=True)
        return rows

    def python_interpreters(self, campaign: str | None = None,
                            ) -> list[PythonInterpreterRow]:
        """Table 8 in O(answer), byte-identical to ``python_interpreter_table``."""
        rollups = self._query_rollups(campaign)
        rows = [
            PythonInterpreterRow(
                interpreter=name,
                unique_users=len(stat.users),
                job_count=len(stat.jobs),
                process_count=stat.processes,
                unique_script_h=len(stat.hashes),
            )
            for name in _in_first_key_order(rollups.python)
            for stat in (rollups.python[name],)
        ]
        rows.sort(key=lambda row: (row.unique_users, row.job_count,
                                   row.process_count, row.unique_script_h),
                  reverse=True)
        return rows

    # ------------------------------------------------------------------ #
    # compaction and retention
    # ------------------------------------------------------------------ #
    def compact(self) -> int:
        """Drop superseded silver versions and unreferenced blobs.

        Idempotent: a second pass over an already-compacted store drops
        nothing.  Gold is untouched -- rollups only ever reference the
        latest versions, which compaction keeps.  Returns how many
        superseded row versions were dropped.
        """
        dropped = 0
        referenced: set[int] = set()
        for shard in range(self.shards):
            kept: dict[str, tuple[str, str]] = {}
            total = 0
            for key, payload in self.backend.iter_rows(shard):
                total += 1
                digest, _campaign = self._current_version(key, payload)
                if digest is not None:
                    kept[key] = (key, payload)
            if total != len(kept):
                self.backend.replace_rows(shard, list(kept.values()))
                dropped += total - len(kept)
            for _key, payload in kept.values():
                data = json.loads(payload)
                referenced.update(int(d) for d in data["blobs"].values())
        self.counters["compactions"] += 1
        self.counters["compaction_dropped"] += dropped
        self._collect_blobs(referenced)
        return dropped

    def drop_campaign(self, campaign: str) -> int:
        """Retention: drop one campaign's silver rows, blobs and rollups.

        Blobs still referenced by other campaigns survive (the dedup tier
        is shared); returns how many record versions were dropped.
        """
        dropped = 0
        referenced: set[int] = set()
        for shard in range(self.shards):
            kept: list[tuple[str, str]] = []
            for key, payload in self.backend.iter_rows(shard):
                data = json.loads(payload)
                if str(data["campaign"]) == campaign:
                    dropped += 1
                    continue
                kept.append((key, payload))
                referenced.update(int(d) for d in data["blobs"].values())
            if dropped:
                self.backend.replace_rows(shard, kept)
        self._versions = {key: (digest, label)
                          for key, (digest, label) in self._versions.items()
                          if label != campaign}
        self._campaign_counts.pop(campaign, None)
        self._gold.pop(campaign, None)
        self._dirty.discard(campaign)
        self.counters["retention_dropped"] += dropped
        self._collect_blobs(referenced)
        return dropped

    def _collect_blobs(self, referenced: set[int]) -> None:
        """Garbage-collect blobs no live silver row references."""
        stale = [digest for digest in self._backend_blob_digests()
                 if digest not in referenced]
        if stale:
            self.backend.delete_blobs(stale)
            self.counters["blobs_collected"] += len(stale)

    def _backend_blob_digests(self) -> set[int]:
        # The protocol has no digest listing on purpose (keeps the seam
        # tiny); enumerate via the concrete backends we know about.  An
        # unknown backend simply skips garbage collection -- blobs linger,
        # answers stay correct.
        if isinstance(self.backend, MemoryBackend):
            return set(self.backend._blobs)
        if isinstance(self.backend, SqliteBackend):
            return {int(row[0]) & 0xFFFFFFFFFFFFFFFF
                    for row in self.backend.connection.execute(
                        "SELECT digest FROM tier_blobs")}
        return set()

    # ------------------------------------------------------------------ #
    # instrumentation
    # ------------------------------------------------------------------ #
    def statistics(self) -> dict[str, int]:
        """Operational counters of the tiered store (all registry-declared)."""
        counters = self.counters
        return {
            "silver_records": len(self._versions),
            "silver_rows": sum(self.backend.row_count(shard)
                               for shard in range(self.shards)),
            "silver_shards": self.shards,
            "blob_entries": self.backend.blob_count(),
            "rollup_campaigns": len(self.campaigns()),
            "blob_dedup_hits": counters["blob_dedup_hits"],
            "blobs_collected": counters["blobs_collected"],
            "compaction_dropped": counters["compaction_dropped"],
            "compactions": counters["compactions"],
            "retention_dropped": counters["retention_dropped"],
            "rollup_dedup_skips": counters["rollup_dedup_skips"],
            "rollup_query_hits": counters["rollup_query_hits"],
            "rollup_query_misses": counters["rollup_query_misses"],
            "rollup_rebuilds": counters["rollup_rebuilds"],
            "rollup_records_applied": counters["rollup_records_applied"],
            "rollup_syncs": counters["rollup_syncs"],
        }

    def close(self) -> None:
        """Release the backend."""
        self.backend.close()


def build_tiered_store(backend_name: str, *, store_path: str = ":memory:",
                       shards: int = DEFAULT_SHARDS,
                       campaign: str = "campaign",
                       user_names: dict[int, str] | None = None) -> TieredStore:
    """Construct a :class:`TieredStore` from the ``store_backend`` knob.

    ``"sqlite"`` derives the backend path from the campaign's ``store_path``
    (``<store_path>.tiered`` on disk, in-memory alongside an in-memory
    store); ``"memory"`` uses the dict backend regardless of path.
    """
    if backend_name == "memory":
        backend: StoreBackend = MemoryBackend()
    elif backend_name == "sqlite":
        path = ":memory:" if store_path == ":memory:" else f"{store_path}.tiered"
        backend = SqliteBackend(path)
    else:
        raise StoreError(
            f"unknown store_backend {backend_name!r} "
            "(expected 'sqlite' or 'memory')")
    return TieredStore(backend, shards=shards, campaign=campaign,
                       user_names=user_names)
