"""Database schema.

The raw ``messages`` table mirrors the UDP header columns listed in the paper
(JOBID, STEPID, PID, HASH, HOST, TIME, LAYER, TYPE, CONTENT) plus the chunk
counters.  The ``processes`` table holds the post-processed, consolidated
one-row-per-process records the analysis layer works on.
"""

MESSAGES_SCHEMA = """
CREATE TABLE IF NOT EXISTS messages (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    jobid       TEXT NOT NULL,
    stepid      TEXT NOT NULL,
    pid         INTEGER NOT NULL,
    hash        TEXT NOT NULL,
    host        TEXT NOT NULL,
    time        INTEGER NOT NULL,
    layer       TEXT NOT NULL,
    type        TEXT NOT NULL,
    chunk_index INTEGER NOT NULL DEFAULT 0,
    chunk_total INTEGER NOT NULL DEFAULT 1,
    content     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_messages_consolidation_order
    ON messages (jobid, stepid, pid, hash, time, type, chunk_index);
-- Legacy indexes: a near-prefix of the consolidation-order index and an
-- unqueried type index; both only amplified ingest writes.  Dropped so old
-- on-disk stores shed them too.
DROP INDEX IF EXISTS idx_messages_process;
DROP INDEX IF EXISTS idx_messages_type;
"""

PROCESSES_SCHEMA = """
CREATE TABLE IF NOT EXISTS processes (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    jobid         TEXT NOT NULL,
    stepid        TEXT NOT NULL,
    pid           INTEGER NOT NULL,
    hash          TEXT NOT NULL,
    host          TEXT NOT NULL,
    time          INTEGER NOT NULL,
    uid           INTEGER,
    gid           INTEGER,
    ppid          INTEGER,
    executable    TEXT,
    category      TEXT,
    file_metadata TEXT,
    modules       TEXT,
    modules_h     TEXT,
    objects       TEXT,
    objects_h     TEXT,
    compilers     TEXT,
    compilers_h   TEXT,
    maps          TEXT,
    maps_h        TEXT,
    file_h        TEXT,
    strings_h     TEXT,
    symbols_h     TEXT,
    script_path   TEXT,
    script_h      TEXT,
    script_meta   TEXT,
    python_packages TEXT,
    incomplete    INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_processes_job ON processes (jobid);
CREATE INDEX IF NOT EXISTS idx_processes_exe ON processes (executable);
CREATE INDEX IF NOT EXISTS idx_processes_category ON processes (category);
CREATE UNIQUE INDEX IF NOT EXISTS ux_processes_key
    ON processes (jobid, stepid, pid, hash, host, time);
"""
