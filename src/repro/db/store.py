"""SQLite-backed storage for raw messages and consolidated process records.

The store is intentionally close to the paper's description: one table of raw
UDP messages keyed by the header columns, and (after post-processing) one
table with a single consolidated row per process.  An in-memory database is
the default; pass a path to persist to disk.

Write paths retry transient SQLite failures (``database is locked`` /
``database table is locked`` / busy-style :class:`sqlite3.OperationalError`)
with jittered exponential backoff, so a WAL store shared with concurrent
readers survives lock contention instead of aborting consolidation; the
budget is configurable through :class:`~repro.util.retry.RetryPolicy` and
non-transient errors (disk full, corrupt database) still fail fast.  The
``fault_injector`` hook lets the chaos layer (:mod:`repro.faults`) inject
deterministic store faults without patching SQLite itself.
"""

from __future__ import annotations

import random
import sqlite3
import time
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.db.schema import MESSAGES_SCHEMA, PROCESSES_SCHEMA

if TYPE_CHECKING:  # imported lazily: repro.db.tiered imports this module
    from repro.db.tiered import TieredStore
from repro.transport.messages import UDPMessage
from repro.util.retry import RetryPolicy
from repro.util.timing import NULL_TIMER

#: Substrings marking an :class:`sqlite3.OperationalError` as transient --
#: lock/busy contention clears on its own, so a bounded retry is the right
#: response; anything else ("disk is full", "database disk image is
#: malformed", ...) will not heal by waiting and fails fast.
_TRANSIENT_MARKERS = ("locked", "busy")


def is_transient_sqlite_error(error: sqlite3.OperationalError) -> bool:
    """Whether the error is contention that a bounded retry can outwait."""
    message = str(error).lower()
    return any(marker in message for marker in _TRANSIENT_MARKERS)


@dataclass
class ProcessRecord:
    """One consolidated per-process record (the unit of all analyses)."""

    jobid: str
    stepid: str
    pid: int
    hash: str
    host: str
    time: int
    uid: int | None = None
    gid: int | None = None
    ppid: int | None = None
    executable: str = ""
    category: str = ""
    file_metadata: str = ""
    modules: str = ""
    modules_h: str = ""
    objects: str = ""
    objects_h: str = ""
    compilers: str = ""
    compilers_h: str = ""
    maps: str = ""
    maps_h: str = ""
    file_h: str = ""
    strings_h: str = ""
    symbols_h: str = ""
    script_path: str = ""
    script_h: str = ""
    script_meta: str = ""
    python_packages: str = ""
    incomplete: int = 0

    @property
    def object_list(self) -> list[str]:
        """Loaded shared objects as a list."""
        return [item for item in self.objects.split("\n") if item]

    @property
    def compiler_list(self) -> list[str]:
        """Compiler identification strings as a list."""
        return [item for item in self.compilers.split(";") if item]

    @property
    def module_list(self) -> list[str]:
        """Loaded modules as a list."""
        return [item for item in self.modules.split(":") if item]

    @property
    def python_package_list(self) -> list[str]:
        """Imported Python packages as a list."""
        return [item for item in self.python_packages.split(",") if item]

    @property
    def executable_name(self) -> str:
        """Base name of the executable."""
        return self.executable.rsplit("/", 1)[-1]


_PROCESS_FIELDS = [f.name for f in fields(ProcessRecord)]


class MessageStore:
    """SQLite wrapper holding the ``messages`` and ``processes`` tables.

    Parameters
    ----------
    path:
        SQLite path; ``":memory:"`` keeps everything in RAM.
    retry:
        Backoff budget applied to every write path when a *transient*
        :class:`sqlite3.OperationalError` (lock/busy contention) strikes.
        Retries count into :attr:`write_retries`; exhausting the budget (or
        hitting a non-transient error such as disk-full) re-raises the
        original SQLite error.
    """

    def __init__(self, path: str = ":memory:", *,
                 retry: RetryPolicy | None = None) -> None:
        self.path = path
        self.retry = RetryPolicy() if retry is None else retry
        #: Transient write failures retried so far (visible in statistics).
        self.write_retries = 0
        #: Chaos hook (:mod:`repro.faults`): called with the operation name
        #: before every write transaction; an :class:`sqlite3.OperationalError`
        #: it raises goes through exactly the retry path a real one would.
        self.fault_injector: Callable[[str], None] | None = None
        self._sleep = time.sleep          # injectable for tests
        self._retry_rng = random.Random(0xC0FFEE)  # jitter only; not output-visible
        #: Stage stopwatch for write transactions ("store.write"); campaigns
        #: replace it with their shared timer.
        self.timer = NULL_TIMER
        #: Attached tiered store (silver shards + gold rollups), kept in sync
        #: with every consolidated-record write; see :meth:`attach_tiered`.
        self.tiered: TieredStore | None = None
        self._tiered_cursor = 0
        self.connection = sqlite3.connect(path)
        if path == ":memory:":
            # Nothing to make crash-safe: trade all durability for speed.
            self.connection.execute("PRAGMA synchronous=OFF")
            self.connection.execute("PRAGMA journal_mode=MEMORY")
        else:
            # On-disk stores survive a receiver crash: WAL keeps readers and
            # the ingest writer concurrent, NORMAL syncs at checkpoints.
            self.connection.execute("PRAGMA journal_mode=WAL")
            self.connection.execute("PRAGMA synchronous=NORMAL")
        self._migrate_duplicate_processes()
        self.connection.executescript(MESSAGES_SCHEMA)
        self.connection.executescript(PROCESSES_SCHEMA)

    def _migrate_duplicate_processes(self) -> None:
        """Drop duplicate process rows left by pre-upsert versions of the store.

        Older versions used plain ``INSERT`` with no unique key, so repeated
        consolidation of an on-disk store produced duplicate rows; creating
        ``ux_processes_key`` over them would fail.  Keep the newest row per
        process key (the most recent consolidation) before the index exists.
        """
        has_table = self.connection.execute(
            "SELECT 1 FROM sqlite_master WHERE type='table' AND name='processes'"
        ).fetchone()
        has_index = self.connection.execute(
            "SELECT 1 FROM sqlite_master WHERE type='index' AND name='ux_processes_key'"
        ).fetchone()
        if has_table and not has_index:
            with self.connection:
                self.connection.execute(
                    "DELETE FROM processes WHERE id NOT IN (SELECT MAX(id)"
                    " FROM processes GROUP BY jobid, stepid, pid, hash, host, time)"
                )

    # ------------------------------------------------------------------ #
    # fault-tolerant write primitive
    # ------------------------------------------------------------------ #
    def _write(self, operation: str, transaction: Callable[[], None]) -> None:
        """Run one write transaction, retrying transient SQLite failures.

        ``transaction`` executes inside ``with self.connection`` so a failed
        attempt rolls back cleanly before the retry; the sleep between
        attempts grows exponentially with deterministic jitter (see
        :class:`~repro.util.retry.RetryPolicy`).
        """
        attempt = 0
        while True:
            try:
                if self.fault_injector is not None:
                    self.fault_injector(operation)
                with self.timer.section("store.write"):
                    with self.connection:
                        transaction()
                return
            except sqlite3.OperationalError as error:
                if not is_transient_sqlite_error(error) or attempt >= self.retry.attempts:
                    raise
                self.write_retries += 1
                self._sleep(self.retry.delay(attempt, self._retry_rng))
                attempt += 1

    # ------------------------------------------------------------------ #
    # raw messages
    # ------------------------------------------------------------------ #
    def insert(self, message: UDPMessage) -> None:
        """Insert one raw message."""
        self.insert_many([message])

    def insert_many(self, messages: Iterable[UDPMessage]) -> int:
        """Insert a batch of raw messages; returns how many were inserted."""
        rows = [
            (
                message.jobid, message.stepid, message.pid, message.path_hash,
                message.host, message.time, message.layer.value, message.info_type.value,
                message.chunk_index, message.chunk_total, message.content,
            )
            for message in messages
        ]
        self._write("insert_messages", lambda: self.connection.executemany(
            "INSERT INTO messages (jobid, stepid, pid, hash, host, time, layer, type,"
            " chunk_index, chunk_total, content) VALUES (?,?,?,?,?,?,?,?,?,?,?)",
            rows,
        ))
        return len(rows)

    def message_count(self) -> int:
        """Total number of raw messages stored."""
        cursor = self.connection.execute("SELECT COUNT(*) FROM messages")
        return int(cursor.fetchone()[0])

    def iter_messages(self, *, batch_rows: int = 1024) -> Iterator[tuple]:
        """Iterate over raw message rows in process order.

        The ``ORDER BY`` is satisfied by ``idx_messages_consolidation_order``,
        so consolidation streams straight off the index instead of sorting the
        whole table; rows are fetched ``batch_rows`` at a time.
        """
        cursor = self.connection.execute(
            "SELECT jobid, stepid, pid, hash, host, time, layer, type, chunk_index,"
            " chunk_total, content FROM messages"
            " ORDER BY jobid, stepid, pid, hash, time, type, chunk_index"
        )
        while rows := cursor.fetchmany(batch_rows):
            yield from rows

    def clear_messages(self) -> None:
        """Delete all raw messages (used after consolidation to save memory)."""
        self._write("clear_messages",
                    lambda: self.connection.execute("DELETE FROM messages"))

    # ------------------------------------------------------------------ #
    # consolidated processes
    # ------------------------------------------------------------------ #
    def insert_processes(self, records: Iterable[ProcessRecord]) -> int:
        """Insert consolidated per-process records (idempotent per process key).

        Delegates to :meth:`insert_or_replace_processes`: the ``processes``
        table is unique per ``(jobid, stepid, pid, hash, host, time)``, so
        re-consolidating the same store updates rows in place instead of
        accumulating duplicates.
        """
        return self.insert_or_replace_processes(records)

    def insert_or_replace_processes(self, records: Iterable[ProcessRecord]) -> int:
        """Upsert consolidated records, keyed by the unique process header.

        Re-consolidating the same store (e.g. repeated
        :meth:`~repro.core.framework.SirenFramework.consolidate` calls while
        messages keep arriving) rebuilds records from *more* data each time,
        so the newest build replaces the previous row.
        """
        return self._insert_processes("INSERT OR REPLACE", records)

    def insert_processes_if_absent(self, records: Iterable[ProcessRecord]) -> int:
        """Insert consolidated records, keeping any existing row per key.

        The streaming-ingest flush primitive: the *first* close of a process
        group carries all of its data (on an ordered transport, only a
        content-free late ``PROCEND`` can ever resurrect a key), so an
        already-present row must win.  Returns how many rows were actually
        inserted.
        """
        before = self.connection.total_changes
        self._insert_processes("INSERT OR IGNORE", records)
        return self.connection.total_changes - before

    def _insert_processes(self, verb: str, records: Iterable[ProcessRecord]) -> int:
        columns = ", ".join(_PROCESS_FIELDS)
        placeholders = ", ".join("?" for _ in _PROCESS_FIELDS)
        rows = [tuple(getattr(record, name) for name in _PROCESS_FIELDS) for record in records]
        self._write("insert_processes", lambda: self.connection.executemany(
            f"{verb} INTO processes ({columns}) VALUES ({placeholders})", rows
        ))
        if self.tiered is not None and rows:
            self.sync_tiered()
        return len(rows)

    def attach_tiered(self, tiered: "TieredStore") -> None:
        """Keep ``tiered`` in sync with every consolidated-record write.

        Records already in the ``processes`` table are folded in immediately;
        afterwards each write through :meth:`insert_or_replace_processes` /
        :meth:`insert_processes_if_absent` triggers a :meth:`sync_tiered`
        delta pull.  Both record paths -- the batch consolidator and the
        streaming-ingest flush -- go through that chokepoint, so the silver
        and gold tiers never lag the ``processes`` table.
        """
        self.tiered = tiered
        self._tiered_cursor = 0
        self.sync_tiered()

    def sync_tiered(self) -> int:
        """Fold new ``processes`` rows into the attached tiered store.

        Uses the same rowid delta stream :meth:`load_processes_since` gives
        the live analysis layer.  ``INSERT OR REPLACE`` re-consolidation
        assigns new rowids to existing keys, so re-delivered rows reach the
        tiered store again -- its key-idempotent ingest dedups unchanged
        content and supersedes changed content.  Returns how many records
        the delta carried.
        """
        if self.tiered is None:
            return 0
        records, self._tiered_cursor = self.load_processes_since(self._tiered_cursor)
        if records:
            self.tiered.ingest_records(records)
        return len(records)

    def process_count(self) -> int:
        """Total number of consolidated process records."""
        cursor = self.connection.execute("SELECT COUNT(*) FROM processes")
        return int(cursor.fetchone()[0])

    def iter_processes(self) -> Iterator[ProcessRecord]:
        """Iterate over consolidated process records."""
        columns = ", ".join(_PROCESS_FIELDS)
        cursor = self.connection.execute(f"SELECT {columns} FROM processes")
        for row in cursor:
            yield ProcessRecord(**dict(zip(_PROCESS_FIELDS, row)))

    def load_processes(self) -> list[ProcessRecord]:
        """All consolidated process records as a list."""
        return list(self.iter_processes())

    def load_processes_since(self, rowid: int = 0) -> tuple[list[ProcessRecord], int]:
        """Records inserted after ``rowid``, plus the new high-water mark.

        The monotonic record cursor of the live analysis layer: ``rowid`` is
        the ``processes`` rowid high-water mark returned by the previous call
        (0 for "from the beginning"), and the returned mark covers every
        record in this batch.  The contract -- each record is returned by
        exactly one call -- holds for rows written through the streaming
        first-close-wins insert (:meth:`insert_processes_if_absent`), which
        never rewrites an existing row; ``INSERT OR REPLACE``
        re-consolidation assigns *new* rowids to existing process keys, so
        batch-mode callers must diff by process key instead (see
        :meth:`repro.analysis.live.LiveAnalysis.observe`).
        """
        columns = ", ".join(_PROCESS_FIELDS)
        cursor = self.connection.execute(
            f"SELECT id, {columns} FROM processes WHERE id > ? ORDER BY id", (rowid,))
        records: list[ProcessRecord] = []
        high_water = rowid
        for row in cursor:
            high_water = row[0]
            records.append(ProcessRecord(**dict(zip(_PROCESS_FIELDS, row[1:]))))
        return records, high_water

    def close(self) -> None:
        """Close the underlying connection."""
        self.connection.close()

    def __enter__(self) -> "MessageStore":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()
