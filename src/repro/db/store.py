"""SQLite-backed storage for raw messages and consolidated process records.

The store is intentionally close to the paper's description: one table of raw
UDP messages keyed by the header columns, and (after post-processing) one
table with a single consolidated row per process.  An in-memory database is
the default; pass a path to persist to disk.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, fields
from typing import Iterable, Iterator

from repro.db.schema import MESSAGES_SCHEMA, PROCESSES_SCHEMA
from repro.transport.messages import UDPMessage


@dataclass
class ProcessRecord:
    """One consolidated per-process record (the unit of all analyses)."""

    jobid: str
    stepid: str
    pid: int
    hash: str
    host: str
    time: int
    uid: int | None = None
    gid: int | None = None
    ppid: int | None = None
    executable: str = ""
    category: str = ""
    file_metadata: str = ""
    modules: str = ""
    modules_h: str = ""
    objects: str = ""
    objects_h: str = ""
    compilers: str = ""
    compilers_h: str = ""
    maps: str = ""
    maps_h: str = ""
    file_h: str = ""
    strings_h: str = ""
    symbols_h: str = ""
    script_path: str = ""
    script_h: str = ""
    script_meta: str = ""
    python_packages: str = ""
    incomplete: int = 0

    @property
    def object_list(self) -> list[str]:
        """Loaded shared objects as a list."""
        return [item for item in self.objects.split("\n") if item]

    @property
    def compiler_list(self) -> list[str]:
        """Compiler identification strings as a list."""
        return [item for item in self.compilers.split(";") if item]

    @property
    def module_list(self) -> list[str]:
        """Loaded modules as a list."""
        return [item for item in self.modules.split(":") if item]

    @property
    def python_package_list(self) -> list[str]:
        """Imported Python packages as a list."""
        return [item for item in self.python_packages.split(",") if item]

    @property
    def executable_name(self) -> str:
        """Base name of the executable."""
        return self.executable.rsplit("/", 1)[-1]


_PROCESS_FIELDS = [f.name for f in fields(ProcessRecord)]


class MessageStore:
    """SQLite wrapper holding the ``messages`` and ``processes`` tables."""

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self.connection = sqlite3.connect(path)
        self.connection.executescript(MESSAGES_SCHEMA)
        self.connection.executescript(PROCESSES_SCHEMA)
        self.connection.execute("PRAGMA synchronous=OFF")
        self.connection.execute("PRAGMA journal_mode=MEMORY")

    # ------------------------------------------------------------------ #
    # raw messages
    # ------------------------------------------------------------------ #
    def insert(self, message: UDPMessage) -> None:
        """Insert one raw message."""
        self.insert_many([message])

    def insert_many(self, messages: Iterable[UDPMessage]) -> int:
        """Insert a batch of raw messages; returns how many were inserted."""
        rows = [
            (
                message.jobid, message.stepid, message.pid, message.path_hash,
                message.host, message.time, message.layer.value, message.info_type.value,
                message.chunk_index, message.chunk_total, message.content,
            )
            for message in messages
        ]
        with self.connection:
            self.connection.executemany(
                "INSERT INTO messages (jobid, stepid, pid, hash, host, time, layer, type,"
                " chunk_index, chunk_total, content) VALUES (?,?,?,?,?,?,?,?,?,?,?)",
                rows,
            )
        return len(rows)

    def message_count(self) -> int:
        """Total number of raw messages stored."""
        cursor = self.connection.execute("SELECT COUNT(*) FROM messages")
        return int(cursor.fetchone()[0])

    def iter_messages(self) -> Iterator[tuple]:
        """Iterate over raw message rows in process order."""
        cursor = self.connection.execute(
            "SELECT jobid, stepid, pid, hash, host, time, layer, type, chunk_index,"
            " chunk_total, content FROM messages"
            " ORDER BY jobid, stepid, pid, hash, time, type, chunk_index"
        )
        yield from cursor

    def clear_messages(self) -> None:
        """Delete all raw messages (used after consolidation to save memory)."""
        with self.connection:
            self.connection.execute("DELETE FROM messages")

    # ------------------------------------------------------------------ #
    # consolidated processes
    # ------------------------------------------------------------------ #
    def insert_processes(self, records: Iterable[ProcessRecord]) -> int:
        """Insert consolidated per-process records."""
        columns = ", ".join(_PROCESS_FIELDS)
        placeholders = ", ".join("?" for _ in _PROCESS_FIELDS)
        rows = [tuple(getattr(record, name) for name in _PROCESS_FIELDS) for record in records]
        with self.connection:
            self.connection.executemany(
                f"INSERT INTO processes ({columns}) VALUES ({placeholders})", rows
            )
        return len(rows)

    def process_count(self) -> int:
        """Total number of consolidated process records."""
        cursor = self.connection.execute("SELECT COUNT(*) FROM processes")
        return int(cursor.fetchone()[0])

    def iter_processes(self) -> Iterator[ProcessRecord]:
        """Iterate over consolidated process records."""
        columns = ", ".join(_PROCESS_FIELDS)
        cursor = self.connection.execute(f"SELECT {columns} FROM processes")
        for row in cursor:
            yield ProcessRecord(**dict(zip(_PROCESS_FIELDS, row)))

    def load_processes(self) -> list[ProcessRecord]:
        """All consolidated process records as a list."""
        return list(self.iter_processes())

    def close(self) -> None:
        """Close the underlying connection."""
        self.connection.close()

    def __enter__(self) -> "MessageStore":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()
