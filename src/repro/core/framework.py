"""The SIREN framework facade.

One :class:`SirenFramework` instance corresponds to one deployment of SIREN on
a system: it owns the message store, the transport channel, the ingest path
(batch receiver or streaming consolidators) and the collector, can be deployed
onto a simulated cluster (registering the ``LD_PRELOAD`` hook), and
consolidates whatever has been collected so far into per-process records ready
for analysis.

Two ingest modes (``SirenConfig.ingest_mode``):

* ``"batch"`` -- the paper's pipeline: the receiver persists raw messages and
  :meth:`consolidate` runs the batch post-pass;
* ``"streaming"`` -- messages are consolidated as they arrive by
  :class:`~repro.ingest.sharded.ShardedIngest` (``ingest_shards`` shard
  workers, in-interpreter or one OS process each per ``ingest_workers``),
  :meth:`snapshot` / :meth:`consolidate` return the live record set
  without waiting for the deployment to end, and :meth:`live_analysis`
  serves incrementally maintained analysis views over the record delta
  stream (:meth:`snapshot_delta`).

Raw-message persistence (``keep_raw_messages``) and the datagram transport
(``transport="memory"|"socket"``) follow the same semantics as
:class:`~repro.workload.campaign.CampaignConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.live import LiveAnalysis
from repro.analysis.similarity import SimilarityResult
from repro.collector.hooks import SirenCollector
from repro.core.config import SirenConfig
from repro.core.pipeline import AnalysisPipeline
from repro.db.store import MessageStore, ProcessRecord
from repro.db.tiered import TieredStore, build_tiered_store
from repro.faults.channel import FaultyChannel
from repro.faults.store import StoreFaultInjector
from repro.hpcsim.cluster import Cluster
from repro.ingest.sharded import ProcessDelta, ShardedIngest
from repro.postprocess.consolidate import Consolidator
from repro.transport.channel import InMemoryChannel, LossyChannel, SocketChannel
from repro.transport.receiver import DatagramQuarantine, MessageReceiver
from repro.transport.sender import UDPSender
from repro.util.errors import CollectionError
from repro.util.retry import RetryPolicy
from repro.util.rng import SeededRNG


@dataclass
class SirenFramework:
    """Collector + transport + ingest + database, wired together."""

    config: SirenConfig = field(default_factory=SirenConfig)
    store: MessageStore = field(init=False)
    channel: LossyChannel | InMemoryChannel | SocketChannel = field(init=False)
    #: fault-injection decorator around :attr:`channel` when the config's
    #: ``fault_plan`` has active channel faults (memory transport only)
    faulty_channel: FaultyChannel | None = field(init=False, default=None)
    store_fault_injector: StoreFaultInjector | None = field(init=False, default=None)
    receiver: MessageReceiver | None = field(init=False, default=None)
    ingest: ShardedIngest | None = field(init=False, default=None)
    #: the tiered record store (``rollups=True``): silver record shards +
    #: gold rollups, auto-synced with every consolidated-record write
    tiered: TieredStore | None = field(init=False, default=None)
    sender: UDPSender = field(init=False)
    collector: SirenCollector | None = None
    cluster: Cluster | None = None

    def __post_init__(self) -> None:
        if self.config.ingest_mode not in ("batch", "streaming"):
            raise CollectionError(
                f"unknown ingest_mode {self.config.ingest_mode!r} "
                "(expected 'batch' or 'streaming')")
        if self.config.transport not in ("memory", "socket"):
            raise CollectionError(
                f"unknown transport {self.config.transport!r} "
                "(expected 'memory' or 'socket')")
        if self.config.ingest_workers not in ("thread", "process"):
            raise CollectionError(
                f"unknown ingest_workers {self.config.ingest_workers!r} "
                "(expected 'thread' or 'process')")
        if self.config.compare_backend not in ("bitparallel", "reference"):
            raise CollectionError(
                f"unknown compare_backend {self.config.compare_backend!r} "
                "(expected 'bitparallel' or 'reference')")
        if self.config.campaign_workers < 1:
            raise CollectionError(
                f"campaign_workers must be >= 1, got {self.config.campaign_workers}")
        if self.config.store_backend not in ("sqlite", "memory"):
            raise CollectionError(
                f"unknown store_backend {self.config.store_backend!r} "
                "(expected 'sqlite' or 'memory')")
        plan = self.config.fault_plan
        if (self.config.campaign_workers > 1 and plan is not None
                and plan.channel.active):
            raise CollectionError(
                "campaign_workers > 1 cannot merge with channel fault "
                "injection: reorder/duplicate/holdback faults are ordered "
                "over the global datagram stream, which no single driver "
                "worker observes")
        self.store = MessageStore(
            self.config.store_path,
            retry=RetryPolicy(attempts=self.config.store_retry_attempts))
        if plan is not None and plan.store.active:
            self.store_fault_injector = StoreFaultInjector(plan).install(self.store)
        if self.config.rollups:
            # A framework deployment has no user registry at construction
            # time, so gold user labels fall back to ``uid_<n>`` -- identical
            # to recomputing the reference tables with ``user_names=None``.
            self.tiered = build_tiered_store(
                self.config.store_backend,
                store_path=self.config.store_path,
                campaign=f"deployment-seed{self.config.rng_seed}")
            self.store.attach_tiered(self.tiered)
        if self.config.transport == "socket":
            self.channel = SocketChannel()
        elif self.config.loss_rate > 0:
            self.channel = LossyChannel(loss_rate=self.config.loss_rate,
                                        rng=SeededRNG(self.config.rng_seed))
        else:
            self.channel = InMemoryChannel()
        if plan is not None and plan.channel.active:
            if self.config.transport != "memory":
                raise CollectionError(
                    "channel fault injection requires transport='memory' "
                    "(a socket channel has its own, real faults)")
            self.faulty_channel = FaultyChannel(plan=plan, inner=self.channel)
        if self.config.ingest_mode == "streaming":
            self.ingest = ShardedIngest(self.store, shards=self.config.ingest_shards,
                                        persist_raw=self.config.keep_raw_messages,
                                        workers=self.config.ingest_workers,
                                        max_restarts=self.config.ingest_max_restarts,
                                        quarantine_capacity=self.config.quarantine_capacity,
                                        fault_plan=plan)
            self.ingest.attach(self.channel)
        else:
            quarantine = (DatagramQuarantine(capacity=self.config.quarantine_capacity)
                          if self.config.quarantine_capacity else None)
            self.receiver = MessageReceiver(self.store, quarantine=quarantine)
            self.receiver.attach(self.channel)
        self.sender = UDPSender(self.faulty_channel or self.channel,
                                max_datagram_size=self.config.max_datagram_size)

    # ------------------------------------------------------------------ #
    # deployment
    # ------------------------------------------------------------------ #
    def deploy(self, cluster: Cluster, *, siren_library_path: str) -> SirenCollector:
        """Register the collection hook on ``cluster`` and return the collector.

        ``siren_library_path`` must point at the installed ``siren.so`` on the
        cluster's filesystem (the corpus builder installs it and exposes the
        path through its manifest).
        """
        if self.collector is not None:
            raise CollectionError("this framework instance is already deployed")
        self.collector = SirenCollector(
            filesystem=cluster.filesystem,
            sender=self.sender,
            library_path=siren_library_path,
            policy=self.config.policy,
            hash_engine=self.config.hash_engine,
            hash_content_cache=self.config.hash_content_cache,
            hash_concurrency=self.config.hash_concurrency,
        )
        cluster.register_preload_hook(self.collector)
        self.cluster = cluster
        return self.collector

    def close(self) -> None:
        """Release deployment resources.

        Closes the collector's hash worker pool (a later concurrent batch
        simply respawns it) and, with ``transport="socket"``, drains and
        closes the loopback sockets -- call it when the deployment's traffic
        has ended.  Memory-channel collection and analysis keep working
        afterwards.
        """
        if self.collector is not None:
            self.collector.close()
        if isinstance(self.channel, SocketChannel):
            self.channel.drain()
            self.channel.close()

    # ------------------------------------------------------------------ #
    # data access
    # ------------------------------------------------------------------ #
    def _drain_socket(self) -> None:
        """Pull queued loopback datagrams into the ingest path (socket transport)."""
        if isinstance(self.channel, SocketChannel):
            self.channel.drain()

    def consolidate(self, *, clear_messages: bool = False) -> list[ProcessRecord]:
        """Flush the ingest path and consolidate everything collected so far.

        In batch mode this runs the post-pass consolidator over the raw
        messages table; in streaming mode it returns the live snapshot
        (finalized records plus a non-destructive peek at still-open process
        groups) -- record-for-record the same result.
        """
        self._drain_socket()
        if self.ingest is not None:
            records = self.ingest.snapshot()
            if clear_messages:
                self.store.clear_messages()
            return records
        assert self.receiver is not None
        self.receiver.flush()
        return Consolidator(self.store).run(clear_messages=clear_messages)

    def snapshot(self) -> list[ProcessRecord]:
        """The records consolidated so far, mid-deployment.

        Alias of :meth:`consolidate` without side effects on the raw
        messages table; in streaming mode open process groups are peeked,
        not closed, so collection continues undisturbed.
        """
        return self.consolidate()

    def finalize(self) -> list[ProcessRecord]:
        """End the ingest stream: persist every record, including open groups.

        In streaming mode this closes all still-open process groups (e.g.
        processes whose ``PROCEND`` datagram was lost) and flushes them to
        the ``processes`` table, so an on-disk store holds the complete
        record set batch mode would have produced; call it when the
        deployment's traffic has ended.  In batch mode it runs the final
        consolidation pass.  Either way, ``keep_raw_messages=False`` clears
        the raw messages table now that nothing will re-read it (mid-run
        :meth:`consolidate`/:meth:`snapshot` calls never clear, whatever
        the knob says -- a batch post-pass may still need the messages).
        """
        if self.faulty_channel is not None:
            # End of stream: the injected network finally delivers whatever
            # reordering/jitter was still holding back.
            self.faulty_channel.flush()
        if self.ingest is not None:
            self._drain_socket()
            records = self.ingest.finalize()
            if not self.config.keep_raw_messages:
                self.store.clear_messages()  # raw persistence was off; stays empty
            return records
        return self.consolidate(clear_messages=not self.config.keep_raw_messages)

    def snapshot_delta(self, cursor: int = 0) -> ProcessDelta:
        """Incremental live view: only the records that changed since ``cursor``.

        Streaming mode only -- the delta contract rests on finalized records
        being immutable, which batch re-consolidation does not provide.  The
        feed behind :meth:`live_analysis`.
        """
        if self.ingest is None:
            raise CollectionError(
                "snapshot_delta requires ingest_mode='streaming' (batch "
                "re-consolidation rewrites records, so there is no delta stream)")
        self._drain_socket()
        return self.ingest.snapshot_delta(cursor)

    def live_analysis(self, user_names: dict[int, str] | None = None,
                      ) -> LiveAnalysis:
        """An incrementally updated analysis bound to this deployment's stream.

        Streaming mode only.  The returned
        :class:`~repro.analysis.live.LiveAnalysis` pulls record deltas from
        this framework on every view call, so mid-deployment tables and
        similarity queries cost O(new records) rather than O(campaign) --
        and stay byte-identical to :meth:`analysis_pipeline` over
        :meth:`snapshot` records.
        """
        if self.ingest is None:
            raise CollectionError(
                "live_analysis requires ingest_mode='streaming'; batch mode "
                "can feed LiveAnalysis.observe() with consolidate() output instead")
        return LiveAnalysis(user_names=user_names or {},
                            compare_backend=self.config.compare_backend).bind(self)

    def analysis_pipeline(self, user_names: dict[int, str] | None = None,
                          ) -> AnalysisPipeline:
        """Consolidate everything collected so far into an analysis pipeline.

        Convenience for the common deploy -> run jobs -> analyse loop; each
        call re-consolidates (or re-snapshots, in streaming mode), so it
        reflects all messages received up to now.
        """
        return AnalysisPipeline(self.consolidate(), user_names or {},
                                compare_backend=self.config.compare_backend)

    def identify_unknown(self, *, top: int = 10, indexed: bool = True,
                         ) -> dict[str, list[SimilarityResult]]:
        """Run the Table 7 similarity search over everything collected so far.

        ``indexed`` selects between the n-gram candidate index and the
        brute-force all-pairs comparison; results are identical either way.
        """
        return self.analysis_pipeline().table7_similarity_search(top=top, indexed=indexed)

    def statistics(self) -> dict[str, float]:
        """Operational counters of the deployment."""
        stats: dict[str, float] = {
            "datagrams_sent": self.sender.datagrams_sent,
            "send_errors": self.sender.send_errors,
        }
        if self.ingest is not None:
            ingest_stats = self.ingest.statistics()
            stats["messages_received"] = self.ingest.messages_received
            stats["decode_errors"] = self.ingest.decode_errors
            stats["quarantined"] = self.ingest.quarantined
            for name in ("records_built", "incomplete_records", "early_finalized",
                         "idle_closed", "late_messages", "open_processes",
                         "peak_open_processes", "worker_restarts",
                         "restart_lost_groups", "restart_lost_datagrams"):
                stats[f"ingest_{name}"] = ingest_stats[name]
        else:
            assert self.receiver is not None
            stats["messages_received"] = self.receiver.messages_received
            stats["decode_errors"] = self.receiver.decode_errors
            stats["quarantined"] = (len(self.receiver.quarantine)
                                    if self.receiver.quarantine is not None else 0)
        stats["store_write_retries"] = self.store.write_retries
        if isinstance(self.channel, LossyChannel):
            stats["datagrams_dropped"] = self.channel.datagrams_dropped
            stats["observed_loss_rate"] = self.channel.observed_loss_rate
        if self.faulty_channel is not None:
            for name, value in self.faulty_channel.fault_counters().items():
                stats[f"fault_{name}"] = value
        if self.collector is not None:
            stats["processes_collected"] = self.collector.processes_collected
            stats["processes_skipped"] = self.collector.processes_skipped
            stats["section_errors"] = self.collector.section_errors
        if self.tiered is not None:
            for name, value in self.tiered.statistics().items():
                stats[name] = value
        return stats
