"""Analysis pipeline: every table and figure of the paper as one method.

:class:`AnalysisPipeline` wraps a list of consolidated process records (plus
the anonymised user mapping) and exposes the paper's evaluation artefacts --
Tables 2-8 and Figures 2-5 -- as data-returning methods, plus ``render_*``
helpers producing the text tables the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import report
from repro.analysis.compilers import CompilerCombinationRow, compiler_combination_table
from repro.analysis.labels import LabelRow, user_application_table
from repro.analysis.libfilter import LibraryUsageRow, library_usage_table
from repro.analysis.matrices import UsageMatrix, compiler_label_matrix, library_label_matrix
from repro.analysis.pythonpkgs import PythonPackageRow, python_package_table
from repro.analysis.similarity import SimilarityResult, SimilaritySearch
from repro.analysis.stats import (
    PythonInterpreterRow,
    SharedObjectVariantRow,
    SystemExecutableRow,
    UserActivityRow,
    activity_totals,
    python_interpreter_table,
    shared_object_variant_table,
    system_executable_table,
    user_activity_table,
)
from repro.db.store import ProcessRecord
from repro.hashing.ssdeep import FuzzyHasher
from repro.util.errors import AnalysisError


@dataclass
class AnalysisPipeline:
    """All evaluation analyses over one set of consolidated records.

    ``compare_backend`` selects the signature-comparison kernel of every
    similarity analysis built here (``"bitparallel"`` -- the batched
    bit-parallel engine, the default -- or ``"reference"``, the seed scalar
    path); scores are byte-identical either way.
    """

    records: list[ProcessRecord]
    user_names: dict[int, str] = field(default_factory=dict)
    compare_backend: str = "bitparallel"

    # ------------------------------------------------------------------ #
    # tables
    # ------------------------------------------------------------------ #
    def table2_user_activity(self) -> list[UserActivityRow]:
        """Table 2: users, jobs and processes per category."""
        return user_activity_table(self.records, self.user_names)

    def table2_totals(self) -> UserActivityRow:
        """The Total row of Table 2."""
        return activity_totals(self.table2_user_activity())

    def table3_system_executables(self, top: int | None = 10) -> list[SystemExecutableRow]:
        """Table 3: most used system-directory executables."""
        return system_executable_table(self.records, self.user_names, top=top)

    def table4_shared_object_variants(self, executable_name: str = "bash",
                                      ) -> list[SharedObjectVariantRow]:
        """Table 4: distinct shared-object sets of one executable."""
        return shared_object_variant_table(self.records, executable_name)

    def table5_user_applications(self) -> list[LabelRow]:
        """Table 5: derived labels for user applications."""
        return user_application_table(self.records, self.user_names)

    def table6_compilers(self) -> list[CompilerCombinationRow]:
        """Table 6: compiler combinations of user applications."""
        return compiler_combination_table(self.records, self.user_names)

    def table7_similarity_search(self, top: int = 10, *,
                                 indexed: bool = True) -> dict[str, list[SimilarityResult]]:
        """Table 7: similarity search identifying every UNKNOWN instance.

        ``indexed=True`` (default) routes the search through the inverted
        n-gram candidate index (:mod:`repro.analysis.simindex`);
        ``indexed=False`` forces the brute-force all-pairs path.  Both return
        identical results -- the knob only trades comparison count for index
        construction, and exists so callers can verify or benchmark the
        equivalence.
        """
        return self.similarity_search(indexed=indexed).identify_unknown(top=top)

    def table8_python_interpreters(self) -> list[PythonInterpreterRow]:
        """Table 8: Python interpreters."""
        return python_interpreter_table(self.records, self.user_names)

    # ------------------------------------------------------------------ #
    # figures
    # ------------------------------------------------------------------ #
    def figure2_library_usage(self) -> list[LibraryUsageRow]:
        """Figure 2: derived/filtered shared objects of user applications."""
        return library_usage_table(self.records, self.user_names)

    def figure3_python_packages(self) -> list[PythonPackageRow]:
        """Figure 3: imported Python packages."""
        return python_package_table(self.records, self.user_names)

    def figure4_compiler_matrix(self) -> UsageMatrix:
        """Figure 4: compiler usage per software label."""
        return compiler_label_matrix(self.records)

    def figure5_library_matrix(self) -> UsageMatrix:
        """Figure 5: library usage per software label."""
        return library_label_matrix(self.records)

    # ------------------------------------------------------------------ #
    # similarity helpers
    # ------------------------------------------------------------------ #
    def similarity_search(self, *, indexed: bool = True) -> SimilaritySearch:
        """The underlying similarity search, for custom queries."""
        return SimilaritySearch(
            self.records, use_index=indexed,
            hasher=FuzzyHasher(compare_backend=self.compare_backend))

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def render_all(self) -> str:
        """Render every table and figure as one text report.

        The Table 7 section is skipped -- silently, by design -- only when the
        similarity search raises :class:`AnalysisError` because the dataset
        contains no UNKNOWN instance to identify (common at small campaign
        scales).  Any other exception propagates to the caller.
        """
        sections = [
            report.render_user_activity(self.table2_user_activity()),
            report.render_system_executables(self.table3_system_executables()),
            report.render_shared_object_variants(self.table4_shared_object_variants()),
            report.render_labels(self.table5_user_applications()),
            report.render_compiler_combinations(self.table6_compilers()),
            report.render_python_interpreters(self.table8_python_interpreters()),
            report.render_library_usage(self.figure2_library_usage()),
            report.render_python_packages(self.figure3_python_packages()),
            report.render_matrix(self.figure4_compiler_matrix(), "Figure 4 (compilers x labels)"),
            report.render_matrix(self.figure5_library_matrix(), "Figure 5 (libraries x labels)"),
        ]
        try:
            searches = self.table7_similarity_search()
            for path, results in searches.items():
                sections.append(report.render_similarity(
                    results, title=f"Table 7 (baseline: {path})"))
        except AnalysisError:
            pass  # no UNKNOWN instance in small datasets -- nothing to render

        return "\n\n".join(sections)
