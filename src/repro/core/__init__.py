"""Core facade: the SIREN framework object and the analysis pipeline.

:class:`~repro.core.framework.SirenFramework` bundles the moving parts of a
SIREN deployment (collector, transport, database, post-processing) behind a
single object that can be deployed onto a simulated cluster, and
:class:`~repro.core.pipeline.AnalysisPipeline` exposes every table and figure
of the paper's evaluation as a method over the consolidated records.
"""

from repro.core.config import SirenConfig
from repro.core.framework import SirenFramework
from repro.core.pipeline import AnalysisPipeline

__all__ = ["SirenConfig", "SirenFramework", "AnalysisPipeline"]
