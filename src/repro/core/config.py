"""Configuration of a SIREN deployment."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collector.policy import DEFAULT_POLICY, CollectionPolicy
from repro.transport.messages import MAX_DATAGRAM_SIZE


@dataclass(frozen=True)
class SirenConfig:
    """Deployment-level configuration.

    Parameters
    ----------
    policy:
        The selective-collection policy (defaults to the paper's Table 1).
    loss_rate:
        Probability of losing each UDP datagram (0 disables the lossy channel).
    max_datagram_size:
        Datagram budget used when chunking long contents.
    store_path:
        SQLite path; ``":memory:"`` keeps everything in RAM.
    rng_seed:
        Seed for the lossy channel's drop decisions.
    """

    policy: CollectionPolicy = field(default_factory=lambda: DEFAULT_POLICY)
    loss_rate: float = 0.0002
    max_datagram_size: int = MAX_DATAGRAM_SIZE
    store_path: str = ":memory:"
    rng_seed: int = 7
