"""Configuration of a SIREN deployment."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collector.policy import DEFAULT_POLICY, CollectionPolicy
from repro.faults.plan import FaultPlan
from repro.transport.messages import MAX_DATAGRAM_SIZE


@dataclass(frozen=True)
class SirenConfig:
    """Deployment-level configuration.

    Parameters
    ----------
    policy:
        The selective-collection policy (defaults to the paper's Table 1).
    loss_rate:
        Probability of losing each UDP datagram (0 disables the lossy channel).
    max_datagram_size:
        Datagram budget used when chunking long contents.
    store_path:
        SQLite path; ``":memory:"`` keeps everything in RAM.
    rng_seed:
        Seed for the lossy channel's drop decisions.
    hash_engine:
        Route collector hashing through the single-pass streaming engine
        (:mod:`repro.hashing.engine`); digests are identical either way.
    hash_content_cache:
        Content-addressed digest cache: byte-identical binaries reached via
        different paths/mtimes hash once per deployment.
    hash_concurrency:
        Process-pool width for per-executable hashing (1 = in-process).
    compare_backend:
        Signature-comparison kernel for every analysis built from this
        deployment (:meth:`~repro.core.framework.SirenFramework.analysis_pipeline`,
        :meth:`~repro.core.framework.SirenFramework.live_analysis`,
        :meth:`~repro.core.framework.SirenFramework.identify_unknown`):
        ``"bitparallel"`` scores through the batched bit-parallel engine of
        :mod:`repro.hashing.compare_engine`; ``"reference"`` keeps the seed
        scalar path.  Scores are byte-identical either way (pattern of
        ``hash_engine``).
    ingest_mode:
        ``"batch"`` persists raw messages and consolidates in a post-pass
        (the paper's pipeline); ``"streaming"`` consolidates messages as they
        arrive through :mod:`repro.ingest`, so
        :meth:`~repro.core.framework.SirenFramework.snapshot` serves live
        analysis views mid-deployment.  Output records are identical.
    ingest_shards:
        Number of receiver+consolidator workers in streaming mode (each
        process key lands deterministically on one shard).
    ingest_workers:
        Worker backend of the sharded streaming front: ``"thread"`` keeps
        every shard in this interpreter (cheap, but GIL-bound);
        ``"process"`` gives each shard its own OS process -- raw datagrams
        are routed by their header bytes, decode + consolidation run on one
        core per shard, and finalized records merge back into the shared
        store at every snapshot/delta/finalize, so record output, ordering
        and delta-cursor semantics are identical either way.
    keep_raw_messages:
        Whether raw messages survive in the ``messages`` table.  In
        streaming mode it decides whether messages are *also* persisted
        alongside live consolidation; in batch mode (where the post-pass
        needs them) ``False`` clears the table when
        :meth:`~repro.core.framework.SirenFramework.finalize` consolidates.
        Mirrors :attr:`~repro.workload.campaign.CampaignConfig.keep_raw_messages`,
        so framework and campaign deployments persist raw traffic
        identically.
    transport:
        ``"memory"`` (default) delivers datagrams through the in-memory
        channel -- lossy when ``loss_rate > 0``; ``"socket"`` sends genuine
        UDP datagrams over the loopback interface (``loss_rate`` is ignored
        -- losses, if any, come from the kernel).  Socket deployments are
        drained on every ``consolidate``/``snapshot``/``finalize`` and the
        sockets are released by
        :meth:`~repro.core.framework.SirenFramework.close`.  Mirrors
        :attr:`~repro.workload.campaign.CampaignConfig.transport`.
    ingest_max_restarts:
        Supervised restarts allowed per shard worker before a crashed or
        stalled worker surfaces as
        :class:`~repro.util.errors.WorkerCrashError`
        (``ingest_workers="process"`` only; 0 restores fail-fast).
    store_retry_attempts:
        Retries of a store write transaction on *transient* SQLite errors
        (``database is locked`` / ``busy``), with exponential jittered
        backoff; non-transient errors always propagate immediately.
    quarantine_capacity:
        Bounded ring of the most recent undecodable datagrams (raw bytes +
        failure reason) kept for forensics; 0 disables the quarantine.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` arming deterministic
        fault injection: channel faults wrap the in-memory channel
        (``transport="memory"`` only), store faults hook the shared store's
        write paths, worker faults ride into the process-mode shard workers.
        ``None`` (default) injects nothing.
    campaign_workers:
        OS driver processes the job-generation loop fans out over when this
        deployment is driven by a campaign (1 = the serial driver).  Mirrors
        :attr:`~repro.workload.campaign.CampaignConfig.campaign_workers` and
        carries the same merge contract: parallel output is pinned
        equivalent to serial, and combining ``campaign_workers > 1`` with an
        active channel fault plan is rejected (the fault pipeline is ordered
        over the global datagram stream, which no single worker observes).
    store_backend:
        Storage substrate of the tiered record store (``rollups=True``):
        ``"sqlite"`` persists the silver/blob tables next to ``store_path``
        (in-memory alongside an in-memory store), ``"memory"`` keeps them in
        plain dicts.  Mirrors
        :attr:`~repro.workload.campaign.CampaignConfig.store_backend`.
    rollups:
        Maintain the tiered record store (:mod:`repro.db.tiered`) alongside
        the ``processes`` table: silver hash-partitioned record shards with
        cross-campaign content-addressed payload dedup, plus gold rollups
        answering the Table 2/3/4/8 queries in O(answer).  Rollup answers
        are pinned byte-identical to the recompute-from-records reference;
        ``False`` (default) skips the extra tier entirely.  Mirrors
        :attr:`~repro.workload.campaign.CampaignConfig.rollups`.
    """

    policy: CollectionPolicy = field(default_factory=lambda: DEFAULT_POLICY)
    loss_rate: float = 0.0002
    max_datagram_size: int = MAX_DATAGRAM_SIZE
    store_path: str = ":memory:"
    rng_seed: int = 7
    hash_engine: bool = True
    hash_content_cache: bool = True
    hash_concurrency: int = 1
    compare_backend: str = "bitparallel"
    ingest_mode: str = "batch"
    ingest_shards: int = 1
    ingest_workers: str = "thread"
    keep_raw_messages: bool = True
    transport: str = "memory"
    ingest_max_restarts: int = 2
    store_retry_attempts: int = 4
    quarantine_capacity: int = 256
    fault_plan: FaultPlan | None = None
    campaign_workers: int = 1
    store_backend: str = "sqlite"
    rollups: bool = False
