"""Live incremental analysis over streaming snapshots.

The paper computes its evaluation once, after the campaign; the streaming
ingest spine (PR 3) made the *records* live, but every mid-run peek still
rebuilt the whole analysis layer from scratch -- ``AnalysisPipeline``
regrouped all records, ``SimilaritySearch`` rebuilt its instance list and
n-gram index, and the compare LRU started cold, making each observation
O(campaign).  :class:`LiveAnalysis` replaces that with a consumer of record
*deltas*: each pull folds only the newly finalized records into streaming
accumulators (Table 2/3/8 group stats, the similarity instance list, the
inverted n-gram index) and overlays the handful of still-open process groups
transiently, so a snapshot analysis costs O(new records + open groups +
result size) instead of O(everything so far).

Equivalence argument
--------------------
Every view is pinned *byte-identical* to a fresh rebuild over the same
records (``tests/analysis/test_live.py``):

* **Finalized records are immutable.**  Streaming ingest writes records
  through the first-close-wins insert, so a committed record never changes
  and folding it into an accumulator exactly once is equivalent to
  regrouping it on every snapshot.
* **Open groups are overlaid, never committed.**  A still-open process
  group's peek record can change as messages arrive, so it only adjusts the
  view being rendered; the next delta re-peeks it.  Keys that are already
  finalized (a very late message resurrecting a closed group) are dropped,
  exactly as :meth:`~repro.ingest.sharded.ShardedIngest.snapshot` does.
* **Row and tie order are reproduced, not approximated.**  A rebuild's
  pre-sort row order is the group's first occurrence in the canonically
  (process-key) ordered record list -- equivalently, the minimum process
  key over the group's records.  Each accumulator tracks that minimum, the
  view sorts groups by it before applying the table's own stable sort, and
  similarity pools are ordered the same way -- so even ties break
  identically to the batch recompute.
* **The index only accretes.**  :meth:`SimilarityIndex.add` assigns ids in
  append order and posting lists only grow, so an index extended one delta
  at a time equals one built over the full instance list; instances that
  exist only in the open-group overlay are compared directly (the same
  path ``SimilaritySearch.query`` takes for caller-supplied candidates),
  which can only *add* comparisons, never change scores.

One :class:`~repro.hashing.ssdeep.FuzzyHasher` lives for the whole
analysis, so the compare LRU stays warm across snapshots -- repeat
baseline-vs-candidate alignments are cache hits instead of fresh
edit-distance runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.analysis.labels import LABEL_RULES, UNKNOWN_LABEL
from repro.analysis.similarity import (
    HASH_COLUMNS,
    ExecutableInstance,
    SimilarityResult,
    SimilaritySearch,
    instance_from_record,
)
from repro.analysis.simindex import DEFAULT_INDEX_THRESHOLD
from repro.analysis.stats import (
    PythonInterpreterRow,
    SystemExecutableRow,
    UserActivityRow,
    _user_label,
    activity_totals,
)
from repro.collector.classify import ExecutableCategory
from repro.db.store import ProcessRecord
from repro.hashing.ssdeep import FuzzyHasher
from repro.ingest.sharded import ProcessDelta
from repro.util.errors import AnalysisError

#: The canonical process key -- the batch consolidator's record order.
ProcessKey = tuple[str, str, int, str, str, int]


def _process_key(record: ProcessRecord) -> ProcessKey:
    return (record.jobid, record.stepid, record.pid, record.hash,
            record.host, record.time)


class DeltaSource(Protocol):
    """Anything that can serve incremental record deltas (the live feed)."""

    def snapshot_delta(self, cursor: int = 0) -> ProcessDelta:
        """What changed since ``cursor``; see :class:`ProcessDelta`."""
        ...


@dataclass
class _UserStat:
    """Streaming accumulator behind one Table 2 row."""

    first_key: ProcessKey
    jobs: set[str] = field(default_factory=set)
    counts: dict[str, int] = field(default_factory=dict)

    def absorb(self, record: ProcessRecord, key: ProcessKey) -> None:
        if key < self.first_key:
            self.first_key = key
        if record.jobid:
            self.jobs.add(record.jobid)
        self.counts[record.category] = self.counts.get(record.category, 0) + 1


@dataclass
class _GroupStat:
    """Streaming accumulator behind one Table 3/8 row (users/jobs/processes/hashes)."""

    first_key: ProcessKey
    users: set[str] = field(default_factory=set)
    jobs: set[str] = field(default_factory=set)
    processes: int = 0
    hashes: set[str] = field(default_factory=set)

    def absorb(self, key: ProcessKey, user: str, jobid: str, content_hash: str) -> None:
        if key < self.first_key:
            self.first_key = key
        self.users.add(user)
        if jobid:
            self.jobs.add(jobid)
        self.processes += 1
        if content_hash:
            self.hashes.add(content_hash)


def _absorb_grouped(stats: dict[str, "_GroupStat"], group: str, key: ProcessKey,
                    user: str, jobid: str, content_hash: str) -> None:
    stat = stats.get(group)
    if stat is None:
        stat = stats[group] = _GroupStat(first_key=key)
    stat.absorb(key, user, jobid, content_hash)


@dataclass
class LiveAnalysis:
    """Incrementally maintained Table 2/3/8 stats and similarity search.

    Feed it one of three ways:

    * **bound** -- :meth:`bind` it to a delta source (a
      :class:`~repro.ingest.sharded.ShardedIngest`, a streaming
      :class:`~repro.core.framework.SirenFramework`, or a streaming
      :class:`~repro.workload.campaign.DeploymentCampaign`); every view
      method then pulls the latest delta first, so reads are always current;
    * **manual deltas** -- :meth:`commit` append-only finalized records and
      :meth:`refresh_open` the open-group overlay yourself;
    * **full snapshots** -- :meth:`observe` a complete record list and let
      the analysis diff it by process key (the adapter for batch-mode
      consolidation, whose re-consolidating upsert invalidates rowid
      cursors).

    Views mirror their :class:`~repro.core.pipeline.AnalysisPipeline` /
    :class:`~repro.analysis.similarity.SimilaritySearch` counterparts and
    return byte-identical rows and rankings (see the module docstring for
    the argument, ``tests/analysis/test_live.py`` for the pinning).
    """

    user_names: dict[int, str] = field(default_factory=dict)
    rules: tuple = LABEL_RULES
    #: Comparison kernel of the default hasher (``"bitparallel"`` |
    #: ``"reference"``, pattern of ``hash_engine``); ignored when an
    #: explicit ``hasher`` is supplied.
    compare_backend: str = "bitparallel"
    hasher: FuzzyHasher | None = None
    use_index: bool = True
    index_threshold: int = DEFAULT_INDEX_THRESHOLD
    cursor: int = 0            #: store rowid high-water mark (when bound)
    syncs: int = 0             #: delta pulls performed
    _source: DeltaSource | None = field(init=False, default=None, repr=False)
    _keys: set[ProcessKey] = field(init=False, default_factory=set, repr=False)
    _open: list[ProcessRecord] = field(init=False, default_factory=list, repr=False)
    _users: dict[str, _UserStat] = field(init=False, default_factory=dict, repr=False)
    _system: dict[str, _GroupStat] = field(init=False, default_factory=dict, repr=False)
    _python: dict[str, _GroupStat] = field(init=False, default_factory=dict, repr=False)
    _instance_first: dict[tuple[str, ...], ProcessKey] = field(
        init=False, default_factory=dict, repr=False)
    _search: SimilaritySearch = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.hasher is None:
            self.hasher = FuzzyHasher(compare_backend=self.compare_backend)
        self._search = SimilaritySearch(
            [], rules=self.rules, hasher=self.hasher,
            use_index=self.use_index, index_threshold=self.index_threshold)

    # ------------------------------------------------------------------ #
    # feeding
    # ------------------------------------------------------------------ #
    def bind(self, source: DeltaSource) -> "LiveAnalysis":
        """Attach a delta source; every view method pulls from it first."""
        self._source = source
        return self

    def sync(self) -> int:
        """Pull the next delta from the bound source; returns records committed.

        A no-op (returning 0) when no source is bound.
        """
        if self._source is None:
            return 0
        delta = self._source.snapshot_delta(self.cursor)
        committed = self.commit(delta.new_records)
        # Only a fully committed delta advances the cursor: if commit raised,
        # the same records are re-pulled next time instead of being lost.
        self.cursor = delta.cursor
        self.refresh_open(delta.open_records)
        self.syncs += 1
        return committed

    def commit(self, new_records) -> int:
        """Fold newly *finalized* records into the committed accumulators.

        Append-only: finalized records are immutable (the streaming insert
        is first-close-wins), so each is folded exactly once; re-committing
        a process key raises :class:`AnalysisError` rather than silently
        double-counting.  Returns how many records were committed.
        """
        fresh = list(new_records)
        # Validate the whole batch before touching any state, so a rejected
        # commit leaves the analysis exactly as it was (no half-folded batch
        # where the tables count a record the similarity pool lacks).
        batch_keys = []
        seen: set[ProcessKey] = set()
        for record in fresh:
            key = _process_key(record)
            if key in self._keys or key in seen:
                raise AnalysisError(
                    f"process key {key!r} committed twice -- the delta stream"
                    " must deliver each finalized record exactly once")
            seen.add(key)
            batch_keys.append(key)
        for record, key in zip(fresh, batch_keys):
            self._keys.add(key)
            self._commit_tables(record, key)
            instance = instance_from_record(record, self.rules)
            if instance is not None:
                first = self._instance_first.get(instance.key)
                if first is None or key < first:
                    self._instance_first[instance.key] = key
        self._search.add_records(fresh)
        return len(fresh)

    def refresh_open(self, open_records) -> None:
        """Replace the transient open-group overlay with the current peek.

        Open groups are provisional -- they accumulate messages until they
        close -- so they are overlaid on the committed state per view, never
        folded in.  Keys already committed (a closed group resurrected by a
        very late message) are dropped, matching ``ShardedIngest.snapshot``.
        """
        self._open = [record for record in open_records
                      if _process_key(record) not in self._keys]

    def observe(self, records, open_records=()) -> int:
        """Feed a full snapshot record list, diffing by process key.

        The adapter for sources without a rowid cursor (batch-mode
        consolidation rewrites rows, so only keys are stable): records with
        unseen keys are committed, the rest must all be present -- a
        previously committed key missing from ``records`` means the stream
        was not append-only and raises :class:`AnalysisError`.  Records of
        already-seen keys are assumed unchanged, which holds at job-boundary
        snapshots (every burst is fully delivered before the hook fires).
        Returns how many records were committed.
        """
        fresh = [record for record in records
                 if _process_key(record) not in self._keys]
        if len(records) - len(fresh) != len(self._keys):
            raise AnalysisError(
                "observe() requires an append-only record stream: a previously"
                " committed record is missing from this snapshot")
        committed = self.commit(fresh)
        self.refresh_open(open_records)
        return committed

    def _commit_tables(self, record: ProcessRecord, key: ProcessKey) -> None:
        user = _user_label(record, self.user_names)
        stat = self._users.get(user)
        if stat is None:
            stat = self._users[user] = _UserStat(first_key=key)
        stat.absorb(record, key)
        if record.category == ExecutableCategory.SYSTEM.value:
            _absorb_grouped(self._system, record.executable, key, user,
                            record.jobid, record.objects_h)
        elif record.category == ExecutableCategory.PYTHON.value:
            _absorb_grouped(self._python, record.executable_name, key, user,
                            record.jobid, record.script_h)

    def _pull(self) -> None:
        if self._source is not None:
            self.sync()

    # ------------------------------------------------------------------ #
    # tables
    # ------------------------------------------------------------------ #
    def table2_user_activity(self) -> list[UserActivityRow]:
        """Table 2, live: identical to ``user_activity_table`` over all records."""
        self._pull()
        extra: dict[str, _UserStat] = {}
        for record in self._open:
            user = _user_label(record, self.user_names)
            stat = extra.get(user)
            if stat is None:
                stat = extra[user] = _UserStat(first_key=_process_key(record))
            stat.absorb(record, _process_key(record))
        rows = []
        for user in self._merged_order(self._users, extra):
            committed = self._users.get(user)
            overlay = extra.get(user)
            count = self._merged_counter(committed, overlay)
            rows.append(UserActivityRow(
                user=user,
                job_count=self._merged_unique(
                    committed.jobs if committed else None,
                    overlay.jobs if overlay else ()),
                system_processes=count(ExecutableCategory.SYSTEM.value),
                user_processes=count(ExecutableCategory.USER.value),
                python_processes=count(ExecutableCategory.PYTHON.value),
            ))
        rows.sort(key=lambda row: (row.job_count, row.system_processes,
                                   row.user_processes, row.python_processes),
                  reverse=True)
        return rows

    def table2_totals(self) -> UserActivityRow:
        """The Total row of Table 2."""
        return activity_totals(self.table2_user_activity())

    def table3_system_executables(self, top: int | None = 10) -> list[SystemExecutableRow]:
        """Table 3, live: identical to ``system_executable_table`` over all records."""
        self._pull()
        extra = self._overlay_grouped(ExecutableCategory.SYSTEM.value,
                                      lambda r: r.executable, lambda r: r.objects_h)
        rows = []
        for path in self._merged_order(self._system, extra):
            committed = self._system.get(path)
            overlay = extra.get(path)
            rows.append(SystemExecutableRow(
                executable=path,
                unique_users=self._merged_unique(
                    committed.users if committed else None,
                    overlay.users if overlay else ()),
                job_count=self._merged_unique(
                    committed.jobs if committed else None,
                    overlay.jobs if overlay else ()),
                process_count=(committed.processes if committed else 0)
                              + (overlay.processes if overlay else 0),
                unique_objects_h=self._merged_unique(
                    committed.hashes if committed else None,
                    overlay.hashes if overlay else ()),
            ))
        rows.sort(key=lambda row: (row.unique_users, row.job_count, row.process_count,
                                   row.unique_objects_h), reverse=True)
        return rows[:top] if top is not None else rows

    def table8_python_interpreters(self) -> list[PythonInterpreterRow]:
        """Table 8, live: identical to ``python_interpreter_table`` over all records."""
        self._pull()
        extra = self._overlay_grouped(ExecutableCategory.PYTHON.value,
                                      lambda r: r.executable_name, lambda r: r.script_h)
        rows = []
        for name in self._merged_order(self._python, extra):
            committed = self._python.get(name)
            overlay = extra.get(name)
            rows.append(PythonInterpreterRow(
                interpreter=name,
                unique_users=self._merged_unique(
                    committed.users if committed else None,
                    overlay.users if overlay else ()),
                job_count=self._merged_unique(
                    committed.jobs if committed else None,
                    overlay.jobs if overlay else ()),
                process_count=(committed.processes if committed else 0)
                              + (overlay.processes if overlay else 0),
                unique_script_h=self._merged_unique(
                    committed.hashes if committed else None,
                    overlay.hashes if overlay else ()),
            ))
        rows.sort(key=lambda row: (row.unique_users, row.job_count, row.process_count,
                                   row.unique_script_h), reverse=True)
        return rows

    def _overlay_grouped(self, category: str, group_of, hash_of) -> dict[str, _GroupStat]:
        extra: dict[str, _GroupStat] = {}
        for record in self._open:
            if record.category != category:
                continue
            _absorb_grouped(extra, group_of(record), _process_key(record),
                            _user_label(record, self.user_names),
                            record.jobid, hash_of(record))
        return extra

    @staticmethod
    def _merged_order(committed: dict, extra: dict) -> list[str]:
        """Group names ordered by first occurrence in the canonical record list.

        A rebuild inserts each group into its dict at the group's first
        record in process-key order, i.e. at the group's *minimum* key over
        committed and overlay records alike -- so sorting by that minimum
        reproduces the rebuild's pre-sort row order (and therefore its tie
        order) exactly.
        """
        firsts: dict[str, tuple] = {group: stat.first_key
                                    for group, stat in committed.items()}
        for group, stat in extra.items():
            if group not in firsts or stat.first_key < firsts[group]:
                firsts[group] = stat.first_key
        return sorted(firsts, key=firsts.get)

    @staticmethod
    def _merged_counter(committed: "_UserStat | None", overlay: "_UserStat | None"):
        def count(category: str) -> int:
            total = committed.counts.get(category, 0) if committed else 0
            if overlay:
                total += overlay.counts.get(category, 0)
            return total
        return count

    @staticmethod
    def _merged_unique(committed: set | None, overlay) -> int:
        extra = sum(1 for item in overlay if committed is None or item not in committed)
        return (len(committed) if committed else 0) + extra

    # ------------------------------------------------------------------ #
    # similarity
    # ------------------------------------------------------------------ #
    @property
    def instances(self) -> list[ExecutableInstance]:
        """The current instance list, identical to a fresh ``SimilaritySearch``'s."""
        self._pull()
        return self._pool()

    def unknown_instances(self) -> list[ExecutableInstance]:
        """Instances whose derived label is UNKNOWN (the search baselines)."""
        return [instance for instance in self.instances
                if instance.label == UNKNOWN_LABEL]

    def labelled_instances(self) -> list[ExecutableInstance]:
        """Instances with a known derived label (the search candidates)."""
        return [instance for instance in self.instances
                if instance.label != UNKNOWN_LABEL]

    def query(self, baseline: ExecutableInstance, *, top: int | None = None,
              columns: tuple[str, ...] = HASH_COLUMNS) -> list[SimilarityResult]:
        """Rank labelled instances by similarity to ``baseline`` (Table 7 query)."""
        self._pull()
        pool = [instance for instance in self._pool()
                if instance.label != UNKNOWN_LABEL]
        return self._search.query(baseline, candidates=pool, top=top, columns=columns)

    def identify_unknown(self, *, top: int = 10) -> dict[str, list[SimilarityResult]]:
        """The Table 7 search for every UNKNOWN instance, live."""
        self._pull()
        pool = self._pool()
        unknowns = [instance for instance in pool if instance.label == UNKNOWN_LABEL]
        if not unknowns:
            raise AnalysisError("no UNKNOWN instances to identify")
        labelled = [instance for instance in pool if instance.label != UNKNOWN_LABEL]
        return {unknown.executable: self._search.query(unknown, candidates=labelled,
                                                       top=top)
                for unknown in unknowns}

    def _pool(self) -> list[ExecutableInstance]:
        """Committed + overlay instances, in the rebuild's instance order.

        Committed instances come straight from the incrementally grown
        search; overlay records merge into them (bumping ``process_count``)
        or append as transient instances the query compares directly -- the
        index is never polluted with provisional digests.
        """
        overlay: dict[tuple[str, ...], tuple[ExecutableInstance, ProcessKey]] = {}
        for record in self._open:
            instance = instance_from_record(record, self.rules)
            if instance is None:
                continue
            key = _process_key(record)
            existing = overlay.get(instance.key)
            if existing is None:
                overlay[instance.key] = (instance, key)
            else:
                merged = ExecutableInstance(
                    executable=existing[0].executable, label=existing[0].label,
                    hashes=existing[0].hashes,
                    process_count=existing[0].process_count + 1)
                overlay[instance.key] = (merged, min(existing[1], key))
        entries: list[tuple[ProcessKey, ExecutableInstance]] = []
        for instance in self._search.instances:
            first = self._instance_first[instance.key]
            overlaid = overlay.pop(instance.key, None)
            if overlaid is not None:
                instance = ExecutableInstance(
                    executable=instance.executable, label=instance.label,
                    hashes=instance.hashes,
                    process_count=instance.process_count + overlaid[0].process_count)
                first = min(first, overlaid[1])
            entries.append((first, instance))
        for instance, first in overlay.values():
            entries.append((first, instance))
        entries.sort(key=lambda entry: entry[0])
        return [instance for _, instance in entries]

    # ------------------------------------------------------------------ #
    # instrumentation
    # ------------------------------------------------------------------ #
    @property
    def comparisons(self) -> int:
        """Digest alignments performed across the analysis's lifetime."""
        return self._search.comparisons

    def index_stats(self):
        """Counters of the incrementally grown index (``None`` below threshold)."""
        return self._search.index_stats()

    def statistics(self) -> dict[str, int]:
        """Operational counters of the live analysis."""
        return {
            "records_committed": len(self._keys),
            "open_records": len(self._open),
            "instances": len(self._search.instances),
            "syncs": self.syncs,
            "cursor": self.cursor,
            "comparisons": self._search.comparisons,
        }
