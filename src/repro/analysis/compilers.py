"""Compiler-identification analysis of user applications (Table 6).

Every user-directory executable carries the ``.comment`` producer strings of
all toolchains that contributed objects.  Table 6 groups executables by their
*combination* of toolchain labels and reports users, jobs, processes and
distinct executables per combination.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.collector.classify import ExecutableCategory
from repro.corpus.toolchains import compiler_labels
from repro.db.store import ProcessRecord


@dataclass(frozen=True)
class CompilerCombinationRow:
    """One row of Table 6: one combination of compiler labels."""

    compilers: tuple[str, ...]
    unique_users: int
    job_count: int
    process_count: int
    unique_file_h: int

    @property
    def display(self) -> str:
        """Comma-separated label list, as printed in the paper."""
        return ", ".join(self.compilers)


def record_compiler_labels(record: ProcessRecord) -> tuple[str, ...]:
    """Toolchain labels of one record, derived from its raw ``.comment`` strings."""
    return tuple(compiler_labels(record.compiler_list))


def compiler_combination_table(
    records: list[ProcessRecord],
    user_names: dict[int, str] | None = None,
) -> list[CompilerCombinationRow]:
    """Group user-directory processes by compiler-label combination."""
    users: dict[tuple[str, ...], set[str]] = defaultdict(set)
    jobs: dict[tuple[str, ...], set[str]] = defaultdict(set)
    processes: dict[tuple[str, ...], int] = defaultdict(int)
    file_hashes: dict[tuple[str, ...], set[str]] = defaultdict(set)

    for record in records:
        if record.category != ExecutableCategory.USER.value:
            continue
        combination = record_compiler_labels(record)
        if not combination:
            continue
        user = user_names.get(record.uid, f"uid_{record.uid}") if user_names and record.uid \
            else f"uid_{record.uid}"
        users[combination].add(user)
        if record.jobid:
            jobs[combination].add(record.jobid)
        processes[combination] += 1
        if record.file_h:
            file_hashes[combination].add(record.file_h)

    rows = [
        CompilerCombinationRow(
            compilers=combination,
            unique_users=len(users[combination]),
            job_count=len(jobs[combination]),
            process_count=processes[combination],
            unique_file_h=len(file_hashes[combination]),
        )
        for combination in processes
    ]
    rows.sort(key=lambda row: (row.unique_users, row.job_count, row.process_count,
                               row.unique_file_h), reverse=True)
    return rows


def compilers_by_label(
    records: list[ProcessRecord],
    label_of: dict[str, str],
) -> dict[str, set[str]]:
    """Software label -> set of compiler labels used by its executables (Figure 4 input)."""
    result: dict[str, set[str]] = defaultdict(set)
    for record in records:
        if record.category != ExecutableCategory.USER.value:
            continue
        label = label_of.get(record.executable)
        if label is None:
            continue
        result[label].update(record_compiler_labels(record))
    return dict(result)
