"""Derived and filtered shared objects of user applications (Figure 2).

For every user-directory process, each loaded shared object path is mapped to
its substring-derived tag (see :mod:`repro.corpus.libraries`), and per tag the
analysis counts unique users, jobs, processes and unique executables -- the
four y-axes of Figure 2.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.collector.classify import ExecutableCategory
from repro.corpus.libraries import derive_library_tag
from repro.db.store import ProcessRecord


@dataclass(frozen=True)
class LibraryUsageRow:
    """One bar group of Figure 2."""

    tag: str
    unique_users: int
    job_count: int
    process_count: int
    unique_executables: int


def record_library_tags(record: ProcessRecord) -> list[str]:
    """Distinct derived library tags of one record, in first-seen order."""
    seen: dict[str, None] = {}
    for path in record.object_list:
        tag = derive_library_tag(path)
        if tag is not None:
            seen.setdefault(tag, None)
    return list(seen)


def library_usage_table(
    records: list[ProcessRecord],
    user_names: dict[int, str] | None = None,
    category: str = ExecutableCategory.USER.value,
) -> list[LibraryUsageRow]:
    """Per derived library tag: unique users, jobs, processes and executables."""
    users: dict[str, set[str]] = defaultdict(set)
    jobs: dict[str, set[str]] = defaultdict(set)
    processes: dict[str, int] = defaultdict(int)
    executables: dict[str, set[str]] = defaultdict(set)

    for record in records:
        if record.category != category:
            continue
        user = user_names.get(record.uid, f"uid_{record.uid}") if user_names and record.uid \
            else f"uid_{record.uid}"
        identity = record.file_h or record.executable
        for tag in record_library_tags(record):
            users[tag].add(user)
            if record.jobid:
                jobs[tag].add(record.jobid)
            processes[tag] += 1
            executables[tag].add(identity)

    rows = [
        LibraryUsageRow(
            tag=tag,
            unique_users=len(users[tag]),
            job_count=len(jobs[tag]),
            process_count=processes[tag],
            unique_executables=len(executables[tag]),
        )
        for tag in processes
    ]
    rows.sort(key=lambda row: (row.unique_users, row.job_count, row.process_count,
                               row.unique_executables), reverse=True)
    return rows


def library_tags_by_label(
    records: list[ProcessRecord],
    label_of: dict[str, str],
) -> dict[str, set[str]]:
    """Software label -> set of derived library tags (Figure 5 input)."""
    result: dict[str, set[str]] = defaultdict(set)
    for record in records:
        if record.category != ExecutableCategory.USER.value:
            continue
        label = label_of.get(record.executable)
        if label is None:
            continue
        result[label].update(record_library_tags(record))
    return dict(result)
