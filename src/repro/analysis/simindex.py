"""Inverted n-gram index over CTPH digests -- candidate pruning at scale.

The similarity search of Table 7 compares every UNKNOWN baseline against
every known instance, and the pairwise ablation matrix compares every pair:
``O(N*M)`` and ``O(N**2)`` signature alignments, each an ``O(64*64)`` edit
distance.  Production ssdeep deployments avoid this by exploiting a property
of the comparison itself: :meth:`repro.hashing.ssdeep.FuzzyHasher.compare`
returns a non-zero score only if

1. the two block sizes are equal or off by exactly a factor of two, and
2. the two signature strings that end up aligned share at least one 7-gram
   (``ROLLING_WINDOW`` characters) after run-length normalisation -- or the
   digests are identical at the same block size (the exact-100 fast path).

Both conditions can be indexed.  :class:`DigestIndex` stores, for every
digest, the 7-grams of its *chunk* part (``sig1``, computed at block size
``b``) under band ``b`` and the 7-grams of its *double-chunk* part (``sig2``,
computed at ``2b``) under band ``2b``.  A query digest then probes band ``b``
with its own chunk grams and band ``2b`` with its double-chunk grams, which by
construction reaches exactly the signature pairings ``compare`` would align:

========================  =============================  ==========
digest block sizes        signatures compared            band probed
========================  =============================  ==========
``b1 == b2``              ``sig1 x sig1, sig2 x sig2``   ``b1`` and ``2*b1``
``b1 == 2*b2``            ``sig1 x sig2``                ``b1``
``b2 == 2*b1``            ``sig2 x sig1``                ``2*b1``
========================  =============================  ==========

Digests whose normalised signatures are shorter than the n-gram length can
never share a 7-gram, but can still score 100 when byte-identical at the same
block size; a separate exact-signature table covers that path.  Together the
two tables guarantee **no false negatives**: every pair the index prunes is a
pair ``compare`` would have scored 0.  The candidate set is a superset of the
non-zero-scoring pairs, so an index-assisted search that assigns 0 to pruned
pairs without comparing them is *result-identical* to brute force -- see
``docs/architecture.md`` for the full argument and the property tests in
``tests/analysis/test_simindex.py`` for the executable version.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hashing.rolling import ROLLING_WINDOW
from repro.hashing.ssdeep import FuzzyHash, eliminate_sequences

#: Below this many indexed digests a linear scan beats index construction;
#: searches fall back to brute force (which is result-identical anyway).
DEFAULT_INDEX_THRESHOLD = 16


@dataclass
class IndexStats:
    """Counters describing one index and the queries it served."""

    digests: int = 0
    grams: int = 0
    exact_keys: int = 0
    queries: int = 0
    candidates_returned: int = 0
    pairs_pruned: int = 0

    def merged_with(self, other: "IndexStats") -> "IndexStats":
        return IndexStats(
            digests=self.digests + other.digests,
            grams=self.grams + other.grams,
            exact_keys=self.exact_keys + other.exact_keys,
            queries=self.queries + other.queries,
            candidates_returned=self.candidates_returned + other.candidates_returned,
            pairs_pruned=self.pairs_pruned + other.pairs_pruned,
        )


class DigestIndex:
    """Inverted 7-gram index over one collection of CTPH digests.

    Digests are registered under integer ids chosen by the caller (typically
    positions in an instance list).  :meth:`candidates` returns the ids of
    every registered digest that could score non-zero against the query --
    never fewer (no false negatives), usually far fewer than all of them.
    """

    def __init__(self, ngram: int = ROLLING_WINDOW) -> None:
        if ngram < 2:
            raise ValueError("ngram must be >= 2")
        self.ngram = ngram
        # (band block size, gram) -> ids of digests carrying that gram.
        self._grams: dict[tuple[int, str], set[int]] = {}
        # (block size, sig1, sig2) -> ids, for the exact-100 path of digests
        # whose signatures are too short to produce any gram.
        self._exact: dict[tuple[int, str, str], set[int]] = {}
        self._size = 0
        self.stats = IndexStats()

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(self, digest_id: int, digest: FuzzyHash | str) -> bool:
        """Index one digest under ``digest_id``.

        Returns ``False`` (and indexes nothing) for empty/unparseable digests;
        such digests always compare to 0, so leaving them out preserves the
        no-false-negative guarantee.
        """
        parsed = self._parse(digest)
        if parsed is None:
            return False
        sig1 = eliminate_sequences(parsed.sig1)
        sig2 = eliminate_sequences(parsed.sig2)
        for band, signature in ((parsed.block_size, sig1), (parsed.block_size * 2, sig2)):
            for gram in self._iter_grams(signature):
                self._grams.setdefault((band, gram), set()).add(digest_id)
        if sig1:
            # compare() returns 100 for equal-blocksize digests whose
            # normalised signatures match exactly (sig1 non-empty), even when
            # they are too short to share a 7-gram.
            self._exact.setdefault((parsed.block_size, sig1, sig2), set()).add(digest_id)
        self._size += 1
        self.stats.digests = self._size
        self.stats.grams = len(self._grams)
        self.stats.exact_keys = len(self._exact)
        return True

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def candidates(self, digest: FuzzyHash | str) -> set[int]:
        """Ids of indexed digests that could score non-zero against ``digest``."""
        self.stats.queries += 1
        parsed = self._parse(digest)
        if parsed is None:
            self.stats.pairs_pruned += self._size
            return set()
        sig1 = eliminate_sequences(parsed.sig1)
        sig2 = eliminate_sequences(parsed.sig2)
        found: set[int] = set()
        for band, signature in ((parsed.block_size, sig1), (parsed.block_size * 2, sig2)):
            for gram in self._iter_grams(signature):
                bucket = self._grams.get((band, gram))
                if bucket:
                    found |= bucket
        if sig1:
            exact = self._exact.get((parsed.block_size, sig1, sig2))
            if exact:
                found |= exact
        self.stats.candidates_returned += len(found)
        self.stats.pairs_pruned += self._size - len(found)
        return found

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _parse(digest: FuzzyHash | str) -> FuzzyHash | None:
        if isinstance(digest, FuzzyHash):
            return digest
        if not digest:
            return None
        try:
            return FuzzyHash.parse(digest)
        except ValueError:
            return None

    def _iter_grams(self, signature: str):
        for start in range(len(signature) - self.ngram + 1):
            yield signature[start:start + self.ngram]


@dataclass
class SimilarityIndex:
    """Per-column :class:`DigestIndex` over a list of instance hash dicts.

    ``hash_rows`` is one dict per instance mapping a column name (``MO_H`` ...
    ``SY_H``) to its digest string; instance ids are list positions, so they
    line up with whatever instance list the caller keeps.
    """

    hash_rows: list[dict[str, str]]
    columns: tuple[str, ...]
    ngram: int = ROLLING_WINDOW
    _indexes: dict[str, DigestIndex] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._indexes = {column: DigestIndex(ngram=self.ngram) for column in self.columns}
        rows, self.hash_rows = self.hash_rows, []
        for hashes in rows:
            self.add(hashes)

    def __len__(self) -> int:
        return len(self.hash_rows)

    def add(self, hashes: dict[str, str]) -> int:
        """Append one instance's hash dict to the index; returns its new id.

        Ids keep being list positions, so an index grown one instance at a
        time is indistinguishable from one built over the full list -- the
        incremental path the live analysis layer uses instead of rebuilding
        (each :class:`DigestIndex` only ever accretes posting-list entries,
        so adding never invalidates earlier candidate sets).
        """
        digest_id = len(self.hash_rows)
        self.hash_rows.append(hashes)
        for column in self.columns:
            self._indexes[column].add(digest_id, hashes.get(column, ""))
        return digest_id

    def candidates(self, digest: FuzzyHash | str, column: str) -> set[int]:
        """Instance ids that could score non-zero on ``column`` against ``digest``."""
        return self._indexes[column].candidates(digest)

    def candidates_by_column(self, hashes: dict[str, str],
                             columns: tuple[str, ...] | None = None) -> dict[str, set[int]]:
        """Per-column candidate sets for a whole query instance."""
        selected = columns if columns is not None else self.columns
        return {column: self._indexes[column].candidates(hashes.get(column, ""))
                for column in selected}

    def stats(self) -> IndexStats:
        """Aggregated counters across all column indexes."""
        total = IndexStats()
        for index in self._indexes.values():
            total = total.merged_with(index.stats)
        return total
