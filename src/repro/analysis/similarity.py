"""Fuzzy-hash similarity search: identify unknown executables (Table 7).

Given a *baseline* instance (typically one labelled ``UNKNOWN`` because its
file/path name is nondescript), the search compares its six fuzzy hashes --
modules (``MO_H``), compilers (``CO_H``), shared objects (``OB_H``), raw file
(``FI_H``), printable strings (``ST_H``) and symbols (``SY_H``) -- against
every other known instance and ranks candidates by the average similarity.
A perfect 100 across all columns means "effectively the same executable in the
same environment"; decreasing scores trace version/compilation distance.

Above a small size threshold the search runs on top of the inverted n-gram
index of :mod:`repro.analysis.simindex`: only instances sharing at least one
signature 7-gram with the baseline (per column, per block-size band) are ever
handed to the expensive signature alignment; every other pair is assigned its
provably-correct score of 0 without a comparison.  The results -- scores,
ranking, and tie order -- are identical to brute force by construction, and
``use_index=False`` keeps the plain quadratic path available for verification
and benchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.labels import LABEL_RULES, UNKNOWN_LABEL, derive_label
from repro.analysis.simindex import DEFAULT_INDEX_THRESHOLD, IndexStats, SimilarityIndex
from repro.collector.classify import ExecutableCategory
from repro.db.store import ProcessRecord
from repro.hashing.ssdeep import FuzzyHasher
from repro.util.errors import AnalysisError

#: Column order of Table 7.
HASH_COLUMNS: tuple[str, ...] = ("MO_H", "CO_H", "OB_H", "FI_H", "ST_H", "SY_H")

_FIELD_OF_COLUMN: dict[str, str] = {
    "MO_H": "modules_h",
    "CO_H": "compilers_h",
    "OB_H": "objects_h",
    "FI_H": "file_h",
    "ST_H": "strings_h",
    "SY_H": "symbols_h",
}


def instance_from_record(record: ProcessRecord,
                         rules: tuple = LABEL_RULES) -> "ExecutableInstance | None":
    """The instance a record contributes to, or ``None`` if it contributes none.

    Only user-directory records with a file hash form instances (the Table 7
    population); the returned instance carries ``process_count=1`` -- callers
    merge counts when several records share one key.
    """
    if record.category != ExecutableCategory.USER.value:
        return None
    if not record.file_h:
        return None
    hashes = {column: getattr(record, _FIELD_OF_COLUMN[column]) or ""
              for column in HASH_COLUMNS}
    return ExecutableInstance(
        executable=record.executable,
        label=derive_label(record.executable, rules),
        hashes=hashes,
    )


@dataclass(frozen=True)
class ExecutableInstance:
    """One distinct (executable content, environment) combination."""

    executable: str
    label: str
    hashes: dict[str, str]
    process_count: int = 1

    @property
    def key(self) -> tuple[str, ...]:
        """Identity key: the executable path plus the six hash values.

        The path is part of the identity because "multiple instances of
        (exactly) the same executable can exist in different paths"
        (Section 4.3) -- a byte-identical copy under a nondescript name must
        remain a distinct instance so the similarity search can match it back
        to its known counterpart.
        """
        return (self.executable, *(self.hashes.get(column, "") for column in HASH_COLUMNS))


@dataclass(frozen=True)
class SimilarityResult:
    """One row of a similarity-search result (one candidate instance)."""

    label: str
    executable: str
    scores: dict[str, int]
    average: float

    def as_row(self) -> list[object]:
        """Row in Table 7 column order."""
        return [self.label, round(self.average, 1),
                *[self.scores.get(column, 0) for column in HASH_COLUMNS]]


@dataclass
class SimilaritySearch:
    """Index user-directory records into instances and run similarity queries.

    ``use_index=True`` (the default) prunes candidate pairs through the
    inverted n-gram index once the instance count reaches
    ``index_threshold``; below the threshold -- or when the hasher's
    common-substring requirement is disabled, which voids the index's pruning
    guarantee -- queries transparently fall back to brute force.  Either way
    the results are identical; only ``comparisons`` differs.
    """

    records: list[ProcessRecord]
    rules: tuple = LABEL_RULES
    hasher: FuzzyHasher = field(default_factory=FuzzyHasher)
    use_index: bool = True
    index_threshold: int = DEFAULT_INDEX_THRESHOLD
    instances: list[ExecutableInstance] = field(init=False)
    #: Number of digest comparisons actually performed (cache lookups count;
    #: pairs pruned by the index or short-circuited on empty digests do not).
    comparisons: int = field(init=False, default=0)
    _index: SimilarityIndex | None = field(init=False, default=None, repr=False)
    _instance_ids: dict[tuple[str, ...], int] = field(init=False, default_factory=dict,
                                                      repr=False)
    _positions: dict[tuple[str, ...], int] = field(init=False, default_factory=dict,
                                                   repr=False)

    def __post_init__(self) -> None:
        self.instances = []
        for record in self.records:
            self._absorb(record)

    # ------------------------------------------------------------------ #
    # index construction
    # ------------------------------------------------------------------ #
    def _absorb(self, record: ProcessRecord) -> None:
        """Fold one record into the instance list (append or merge by key)."""
        instance = instance_from_record(record, self.rules)
        if instance is None:
            return
        position = self._positions.get(instance.key)
        if position is None:
            self._positions[instance.key] = len(self.instances)
            self.instances.append(instance)
        else:
            existing = self.instances[position]
            self.instances[position] = ExecutableInstance(
                executable=existing.executable,
                label=existing.label,
                hashes=existing.hashes,
                process_count=existing.process_count + 1,
            )

    def add_records(self, new_records: list[ProcessRecord]) -> int:
        """Append new records, updating instances and the index in place.

        The incremental-growth path: records are folded into the existing
        instance list (new keys append, repeated keys bump their instance's
        ``process_count``), and a previously built n-gram index is *extended*
        -- not rebuilt -- the next time it is consulted.  A search grown this
        way is indistinguishable from a fresh one over the concatenated
        record list (pinned by the live-analysis property tests); before this
        path existed, mutating ``records`` after the first indexed query left
        the cached index silently stale.  Returns how many instances the new
        records created.
        """
        before = len(self.instances)
        for record in new_records:
            self.records.append(record)
            self._absorb(record)
        return len(self.instances) - before

    def unknown_instances(self) -> list[ExecutableInstance]:
        """Instances whose derived label is UNKNOWN (the search baselines)."""
        return [instance for instance in self.instances if instance.label == UNKNOWN_LABEL]

    def labelled_instances(self) -> list[ExecutableInstance]:
        """Instances with a known derived label (the search candidates)."""
        return [instance for instance in self.instances if instance.label != UNKNOWN_LABEL]

    # ------------------------------------------------------------------ #
    # index plumbing
    # ------------------------------------------------------------------ #
    def _effective_index(self) -> SimilarityIndex | None:
        """The candidate-pruning index, or ``None`` when brute force applies.

        The index's no-false-negative guarantee rests on ``compare`` refusing
        to score signature pairs without a common 7-gram, so a hasher with
        ``require_common_substring=False`` disables it; so does a dataset
        smaller than ``index_threshold``, where building the index costs more
        than the scan it saves.
        """
        if not self.use_index:
            return None
        if not getattr(self.hasher, "require_common_substring", True):
            return None
        if len(self.instances) < self.index_threshold:
            return None
        if self._index is None:
            self._index = SimilarityIndex(
                [instance.hashes for instance in self.instances], columns=HASH_COLUMNS)
            self._instance_ids = {instance.key: position
                                  for position, instance in enumerate(self.instances)}
        elif len(self._index) < len(self.instances):
            # Records added since the index was built: extend it in place.
            # Ids are instance-list positions on both paths, and the posting
            # lists only accrete, so the grown index equals a fresh build.
            for position in range(len(self._index), len(self.instances)):
                instance = self.instances[position]
                self._index.add(instance.hashes)
                self._instance_ids[instance.key] = position
        return self._index

    @property
    def indexed(self) -> bool:
        """Whether queries currently run through the n-gram index."""
        return self._effective_index() is not None

    def index_stats(self) -> IndexStats | None:
        """Aggregated index counters (``None`` while on the brute-force path)."""
        index = self._effective_index()
        return index.stats() if index is not None else None

    def _compare_digests(self, hash_a: str, hash_b: str) -> int:
        """One counted, cached digest comparison (empty digests score 0 free)."""
        if not hash_a or not hash_b:
            return 0
        self.comparisons += 1
        return self.hasher.compare_cached(hash_a, hash_b)

    def _compare_digest_batch(self, baseline: str, digests: list[str]) -> list[int]:
        """Counted batch of :meth:`_compare_digests` against one baseline.

        The batched hot path: non-empty pairs go through
        :meth:`~repro.hashing.ssdeep.FuzzyHasher.compare_many` in one sweep
        (deduplicated, LRU-fed); empty digests score their 0 without a
        counted comparison and without touching the cache, exactly as the
        scalar helper does.  Counter semantics match pair-for-pair.
        """
        scores = [0] * len(digests)
        if not baseline:
            return scores
        present = [position for position, digest in enumerate(digests) if digest]
        if not present:
            return scores
        self.comparisons += len(present)
        batch = self.hasher.compare_many(
            baseline, [digests[position] for position in present])
        for position, score in zip(present, batch):
            scores[position] = score
        return scores

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def compare_instances(self, first: ExecutableInstance,
                          second: ExecutableInstance) -> dict[str, int]:
        """Per-column similarity scores between two instances."""
        return {column: self._compare_digests(first.hashes.get(column, ""),
                                              second.hashes.get(column, ""))
                for column in HASH_COLUMNS}

    def compare_instances_many(self, first: ExecutableInstance,
                               others: list[ExecutableInstance],
                               columns: tuple[str, ...] = HASH_COLUMNS,
                               ) -> list[dict[str, int]]:
        """Batched :meth:`compare_instances` of one instance against many.

        One :meth:`_compare_digest_batch` sweep per column; scores, the
        comparison counter and the compare LRU behave exactly as the scalar
        loop would.  The recognition layer's similarity graph runs on this.
        """
        scores: list[dict[str, int]] = [{} for _ in others]
        for column in columns:
            batch = self._compare_digest_batch(
                first.hashes.get(column, ""),
                [other.hashes.get(column, "") for other in others])
            for row, score in zip(scores, batch):
                row[column] = score
        return scores

    def query(
        self,
        baseline: ExecutableInstance,
        *,
        candidates: list[ExecutableInstance] | None = None,
        top: int | None = None,
        columns: tuple[str, ...] = HASH_COLUMNS,
    ) -> list[SimilarityResult]:
        """Rank candidate instances by average similarity to ``baseline``.

        With the index active, a column comparison is only performed when the
        candidate shares an indexed n-gram with the baseline on that column;
        all other scores are 0 by the index's pruning guarantee.  Each
        column's surviving pairs are scored in one
        :meth:`~repro.hashing.ssdeep.FuzzyHasher.compare_many` sweep.
        Results are built in pool order and stable-sorted, exactly as the
        brute-force path does, so rankings (including ties) are identical.
        """
        pool = candidates if candidates is not None else self.labelled_instances()
        index = self._effective_index()
        # Columns the index does not cover (anything outside HASH_COLUMNS)
        # simply miss from per_column and are compared directly, exactly as
        # the brute-force path would.
        per_column: dict[str, set[int]] = {}
        if index is not None:
            per_column = index.candidates_by_column(
                baseline.hashes, tuple(column for column in columns
                                       if column in index.columns))
        kept: list[ExecutableInstance] = []
        kept_ids: list[int | None] = []
        for candidate in pool:
            if candidate.key == baseline.key:
                continue
            # Caller-supplied instances outside the built index (no id) are
            # compared directly; indexed ones only where a shared n-gram
            # makes a non-zero score possible.
            kept.append(candidate)
            kept_ids.append(self._instance_ids.get(candidate.key)
                            if index is not None else None)
        column_scores: dict[str, list[int]] = {}
        for column in columns:
            bucket = per_column.get(column)
            scores = [0] * len(kept)
            targets: list[int] = []
            digests: list[str] = []
            for position, (candidate, candidate_id) in enumerate(zip(kept, kept_ids)):
                if candidate_id is not None and bucket is not None \
                        and candidate_id not in bucket:
                    continue  # pruned: 0 by the index's no-false-negative guarantee
                targets.append(position)
                digests.append(candidate.hashes.get(column, ""))
            batch = self._compare_digest_batch(baseline.hashes.get(column, ""),
                                               digests)
            for position, score in zip(targets, batch):
                scores[position] = score
            column_scores[column] = scores
        results: list[SimilarityResult] = []
        for position, candidate in enumerate(kept):
            selected = {column: column_scores[column][position] for column in columns}
            average = sum(selected.values()) / len(selected) if selected else 0.0
            results.append(SimilarityResult(
                label=candidate.label, executable=candidate.executable,
                scores=selected, average=average,
            ))
        results.sort(key=lambda result: result.average, reverse=True)
        return results[:top] if top is not None else results

    def identify_unknown(self, *, top: int = 10) -> dict[str, list[SimilarityResult]]:
        """Run the Table 7 search for every UNKNOWN instance.

        Returns a mapping of the unknown instance's executable path to its
        ranked candidate list.  The candidate pool is materialised once and
        shared across every baseline -- the instance list cannot change
        between queries, so rebuilding it per UNKNOWN (as the seed did) only
        re-filtered the same list.
        """
        unknowns = self.unknown_instances()
        if not unknowns:
            raise AnalysisError("no UNKNOWN instances to identify")
        labelled = self.labelled_instances()
        return {
            unknown.executable: self.query(unknown, candidates=labelled, top=top)
            for unknown in unknowns
        }

    def best_match(self, baseline: ExecutableInstance) -> SimilarityResult | None:
        """The single best candidate for a baseline (or ``None`` if no candidates)."""
        ranked = self.query(baseline, top=1)
        return ranked[0] if ranked else None

    # ------------------------------------------------------------------ #
    # pairwise matrix (used by the scaling ablation bench)
    # ------------------------------------------------------------------ #
    def pairwise_average_matrix(self, column: str = "FI_H") -> list[list[int]]:
        """Full pairwise similarity matrix over instances for one hash column.

        Indexed, only the pairs sharing an n-gram are aligned; the rest of the
        ``O(N**2)`` matrix is filled with the 0 they would have scored.  Each
        row's surviving pairs are scored in one
        :meth:`~repro.hashing.ssdeep.FuzzyHasher.compare_many` sweep.
        Missing digests go through the same batch helper every other path
        uses, so they score their 0 without a counted comparison and without
        planting placeholder pairs in the compare LRU -- the counter and
        cache semantics match :meth:`query` exactly.
        """
        size = len(self.instances)
        matrix = [[0] * size for _ in range(size)]
        index = self._effective_index()
        if index is not None and column not in index.columns:
            index = None  # unindexed column: compare directly, as brute force does
        digests = [instance.hashes.get(column, "") for instance in self.instances]
        for i in range(size):
            matrix[i][i] = 100
            candidates = index.candidates(digests[i], column) if index is not None else None
            if candidates is None:
                others = list(range(i + 1, size))
            else:
                others = [j for j in range(i + 1, size) if j in candidates]
            batch = self._compare_digest_batch(digests[i],
                                               [digests[j] for j in others])
            for j, score in zip(others, batch):
                matrix[i][j] = score
                matrix[j][i] = score
        return matrix
