"""Fuzzy-hash similarity search: identify unknown executables (Table 7).

Given a *baseline* instance (typically one labelled ``UNKNOWN`` because its
file/path name is nondescript), the search compares its six fuzzy hashes --
modules (``MO_H``), compilers (``CO_H``), shared objects (``OB_H``), raw file
(``FI_H``), printable strings (``ST_H``) and symbols (``SY_H``) -- against
every other known instance and ranks candidates by the average similarity.
A perfect 100 across all columns means "effectively the same executable in the
same environment"; decreasing scores trace version/compilation distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.labels import LABEL_RULES, UNKNOWN_LABEL, derive_label
from repro.collector.classify import ExecutableCategory
from repro.db.store import ProcessRecord
from repro.hashing.ssdeep import FuzzyHasher
from repro.util.errors import AnalysisError

#: Column order of Table 7.
HASH_COLUMNS: tuple[str, ...] = ("MO_H", "CO_H", "OB_H", "FI_H", "ST_H", "SY_H")

_FIELD_OF_COLUMN: dict[str, str] = {
    "MO_H": "modules_h",
    "CO_H": "compilers_h",
    "OB_H": "objects_h",
    "FI_H": "file_h",
    "ST_H": "strings_h",
    "SY_H": "symbols_h",
}


@dataclass(frozen=True)
class ExecutableInstance:
    """One distinct (executable content, environment) combination."""

    executable: str
    label: str
    hashes: dict[str, str]
    process_count: int = 1

    @property
    def key(self) -> tuple[str, ...]:
        """Identity key: the executable path plus the six hash values.

        The path is part of the identity because "multiple instances of
        (exactly) the same executable can exist in different paths"
        (Section 4.3) -- a byte-identical copy under a nondescript name must
        remain a distinct instance so the similarity search can match it back
        to its known counterpart.
        """
        return (self.executable, *(self.hashes.get(column, "") for column in HASH_COLUMNS))


@dataclass(frozen=True)
class SimilarityResult:
    """One row of a similarity-search result (one candidate instance)."""

    label: str
    executable: str
    scores: dict[str, int]
    average: float

    def as_row(self) -> list[object]:
        """Row in Table 7 column order."""
        return [self.label, round(self.average, 1),
                *[self.scores.get(column, 0) for column in HASH_COLUMNS]]


@dataclass
class SimilaritySearch:
    """Index user-directory records into instances and run similarity queries."""

    records: list[ProcessRecord]
    rules: tuple = LABEL_RULES
    hasher: FuzzyHasher = field(default_factory=FuzzyHasher)
    instances: list[ExecutableInstance] = field(init=False)

    def __post_init__(self) -> None:
        self.instances = self._build_instances()

    # ------------------------------------------------------------------ #
    # index construction
    # ------------------------------------------------------------------ #
    def _build_instances(self) -> list[ExecutableInstance]:
        grouped: dict[tuple[str, ...], ExecutableInstance] = {}
        for record in self.records:
            if record.category != ExecutableCategory.USER.value:
                continue
            if not record.file_h:
                continue
            hashes = {column: getattr(record, _FIELD_OF_COLUMN[column]) or ""
                      for column in HASH_COLUMNS}
            instance = ExecutableInstance(
                executable=record.executable,
                label=derive_label(record.executable, self.rules),
                hashes=hashes,
            )
            existing = grouped.get(instance.key)
            if existing is None:
                grouped[instance.key] = instance
            else:
                grouped[instance.key] = ExecutableInstance(
                    executable=existing.executable,
                    label=existing.label,
                    hashes=existing.hashes,
                    process_count=existing.process_count + 1,
                )
        return list(grouped.values())

    def unknown_instances(self) -> list[ExecutableInstance]:
        """Instances whose derived label is UNKNOWN (the search baselines)."""
        return [instance for instance in self.instances if instance.label == UNKNOWN_LABEL]

    def labelled_instances(self) -> list[ExecutableInstance]:
        """Instances with a known derived label (the search candidates)."""
        return [instance for instance in self.instances if instance.label != UNKNOWN_LABEL]

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def compare_instances(self, first: ExecutableInstance,
                          second: ExecutableInstance) -> dict[str, int]:
        """Per-column similarity scores between two instances."""
        scores: dict[str, int] = {}
        for column in HASH_COLUMNS:
            hash_a = first.hashes.get(column, "")
            hash_b = second.hashes.get(column, "")
            if not hash_a or not hash_b:
                scores[column] = 0
                continue
            scores[column] = self.hasher.compare(hash_a, hash_b)
        return scores

    def query(
        self,
        baseline: ExecutableInstance,
        *,
        candidates: list[ExecutableInstance] | None = None,
        top: int | None = None,
        columns: tuple[str, ...] = HASH_COLUMNS,
    ) -> list[SimilarityResult]:
        """Rank candidate instances by average similarity to ``baseline``."""
        pool = candidates if candidates is not None else self.labelled_instances()
        results: list[SimilarityResult] = []
        for candidate in pool:
            if candidate.key == baseline.key:
                continue
            scores = self.compare_instances(baseline, candidate)
            selected = {column: scores[column] for column in columns}
            average = sum(selected.values()) / len(selected) if selected else 0.0
            results.append(SimilarityResult(
                label=candidate.label, executable=candidate.executable,
                scores=selected, average=average,
            ))
        results.sort(key=lambda result: result.average, reverse=True)
        return results[:top] if top is not None else results

    def identify_unknown(self, *, top: int = 10) -> dict[str, list[SimilarityResult]]:
        """Run the Table 7 search for every UNKNOWN instance.

        Returns a mapping of the unknown instance's executable path to its
        ranked candidate list.
        """
        unknowns = self.unknown_instances()
        if not unknowns:
            raise AnalysisError("no UNKNOWN instances to identify")
        return {
            unknown.executable: self.query(unknown, top=top)
            for unknown in unknowns
        }

    def best_match(self, baseline: ExecutableInstance) -> SimilarityResult | None:
        """The single best candidate for a baseline (or ``None`` if no candidates)."""
        ranked = self.query(baseline, top=1)
        return ranked[0] if ranked else None

    # ------------------------------------------------------------------ #
    # pairwise matrix (used by the scaling ablation bench)
    # ------------------------------------------------------------------ #
    def pairwise_average_matrix(self, column: str = "FI_H") -> list[list[int]]:
        """Full pairwise similarity matrix over instances for one hash column."""
        size = len(self.instances)
        matrix = [[0] * size for _ in range(size)]
        for i in range(size):
            matrix[i][i] = 100
            for j in range(i + 1, size):
                score = self.hasher.compare(
                    self.instances[i].hashes.get(column, "") or "3::",
                    self.instances[j].hashes.get(column, "") or "3::",
                )
                matrix[i][j] = score
                matrix[j][i] = score
        return matrix
