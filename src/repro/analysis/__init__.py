"""Analysis of consolidated SIREN records.

Each module corresponds to one family of results in the paper's evaluation
(Section 4):

* :mod:`repro.analysis.stats` -- usage statistics: users/jobs/processes
  (Table 2), system executables (Table 3), shared-object variants (Table 4),
  Python interpreters (Table 8),
* :mod:`repro.analysis.labels` -- regex-derived software labels for user
  executables (Table 5),
* :mod:`repro.analysis.compilers` -- compiler identification analysis (Table 6),
* :mod:`repro.analysis.libfilter` -- derived/filtered shared objects (Figure 2),
* :mod:`repro.analysis.pythonpkgs` -- imported Python packages (Figure 3),
* :mod:`repro.analysis.matrices` -- compiler x label and library x label
  usage matrices (Figures 4 and 5),
* :mod:`repro.analysis.similarity` -- fuzzy-hash similarity search that
  identifies unknown executables (Table 7),
* :mod:`repro.analysis.simindex` -- inverted n-gram index over CTPH digests
  that prunes the similarity search's candidate pairs without changing its
  results,
* :mod:`repro.analysis.live` -- incrementally maintained Table 2/3/8 stats
  and similarity search over streaming record deltas (mid-campaign views in
  O(new records), byte-identical to a rebuild),
* :mod:`repro.analysis.report` -- text rendering of all of the above.
"""

from repro.analysis.compilers import CompilerCombinationRow, compiler_combination_table
from repro.analysis.labels import LabelRow, derive_label, user_application_table
from repro.analysis.libfilter import LibraryUsageRow, library_usage_table
from repro.analysis.live import LiveAnalysis
from repro.analysis.matrices import compiler_label_matrix, library_label_matrix
from repro.analysis.pythonpkgs import PythonPackageRow, python_package_table
from repro.analysis.similarity import SimilarityResult, SimilaritySearch
from repro.analysis.simindex import DigestIndex, IndexStats, SimilarityIndex
from repro.analysis.stats import (
    PythonInterpreterRow,
    SharedObjectVariantRow,
    SystemExecutableRow,
    UserActivityRow,
    python_interpreter_table,
    shared_object_variant_table,
    system_executable_table,
    user_activity_table,
)

__all__ = [
    "CompilerCombinationRow",
    "compiler_combination_table",
    "LabelRow",
    "derive_label",
    "user_application_table",
    "LibraryUsageRow",
    "library_usage_table",
    "compiler_label_matrix",
    "library_label_matrix",
    "PythonPackageRow",
    "python_package_table",
    "LiveAnalysis",
    "SimilarityResult",
    "SimilaritySearch",
    "DigestIndex",
    "IndexStats",
    "SimilarityIndex",
    "UserActivityRow",
    "SystemExecutableRow",
    "SharedObjectVariantRow",
    "PythonInterpreterRow",
    "user_activity_table",
    "system_executable_table",
    "shared_object_variant_table",
    "python_interpreter_table",
]
