"""Derived software labels for user-directory executables (Table 5).

System operators "can often deduce to which software an executable belongs
based on file or path names by using regular expressions to match with known
software names" (Section 4.3).  This module implements that derivation: an
ordered list of ``(label, regex)`` rules applied to the full executable path;
the first match wins and everything unmatched becomes ``UNKNOWN`` -- which is
exactly the starting point for the similarity search of Table 7.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass

from repro.collector.classify import ExecutableCategory
from repro.db.store import ProcessRecord

UNKNOWN_LABEL = "UNKNOWN"

#: Ordered label-derivation rules (label, compiled pattern on the full path).
LABEL_RULES: tuple[tuple[str, re.Pattern[str]], ...] = (
    ("LAMMPS", re.compile(r"lammps|(^|/)lmp($|[_\-.])", re.IGNORECASE)),
    ("GROMACS", re.compile(r"gromacs|(^|/)gmx", re.IGNORECASE)),
    ("miniconda", re.compile(r"miniconda|(^|/)conda", re.IGNORECASE)),
    ("janko", re.compile(r"janko", re.IGNORECASE)),
    ("icon", re.compile(r"icon", re.IGNORECASE)),
    ("amber", re.compile(r"amber|pmemd|sander", re.IGNORECASE)),
    ("gzip", re.compile(r"(^|/)gzip", re.IGNORECASE)),
    ("alexandria", re.compile(r"alexandria", re.IGNORECASE)),
    ("RadRad", re.compile(r"radrad", re.IGNORECASE)),
)


def derive_label(executable_path: str,
                 rules: tuple[tuple[str, re.Pattern[str]], ...] = LABEL_RULES) -> str:
    """Derive a software label from an executable path (``UNKNOWN`` if no rule matches)."""
    for label, pattern in rules:
        if pattern.search(executable_path):
            return label
    return UNKNOWN_LABEL


@dataclass(frozen=True)
class LabelRow:
    """One row of Table 5."""

    label: str
    unique_users: int
    job_count: int
    process_count: int
    unique_file_h: int


def user_application_table(
    records: list[ProcessRecord],
    user_names: dict[int, str] | None = None,
    rules: tuple[tuple[str, re.Pattern[str]], ...] = LABEL_RULES,
) -> list[LabelRow]:
    """Derived labels over user-directory processes, with per-label statistics."""
    users: dict[str, set[str]] = defaultdict(set)
    jobs: dict[str, set[str]] = defaultdict(set)
    processes: dict[str, int] = defaultdict(int)
    file_hashes: dict[str, set[str]] = defaultdict(set)

    for record in records:
        if record.category != ExecutableCategory.USER.value:
            continue
        label = derive_label(record.executable, rules)
        user = user_names.get(record.uid, f"uid_{record.uid}") if user_names and record.uid \
            else f"uid_{record.uid}"
        users[label].add(user)
        if record.jobid:
            jobs[label].add(record.jobid)
        processes[label] += 1
        if record.file_h:
            file_hashes[label].add(record.file_h)

    rows = [
        LabelRow(
            label=label,
            unique_users=len(users[label]),
            job_count=len(jobs[label]),
            process_count=processes[label],
            unique_file_h=len(file_hashes[label]),
        )
        for label in processes
    ]
    rows.sort(key=lambda row: (row.unique_users, row.job_count, row.process_count,
                               row.unique_file_h), reverse=True)
    return rows


def records_for_label(
    records: list[ProcessRecord],
    label: str,
    rules: tuple[tuple[str, re.Pattern[str]], ...] = LABEL_RULES,
) -> list[ProcessRecord]:
    """All user-directory records whose executable derives to ``label``."""
    return [
        record for record in records
        if record.category == ExecutableCategory.USER.value
        and derive_label(record.executable, rules) == label
    ]


def label_by_executable(
    records: list[ProcessRecord],
    rules: tuple[tuple[str, re.Pattern[str]], ...] = LABEL_RULES,
) -> dict[str, str]:
    """Map of executable path -> derived label over user-directory records."""
    return {
        record.executable: derive_label(record.executable, rules)
        for record in records
        if record.category == ExecutableCategory.USER.value
    }
