"""Usage statistics over consolidated process records (Tables 2, 3, 4 and 8).

All functions take the list of :class:`~repro.db.store.ProcessRecord` rows
produced by post-processing plus an optional ``user_names`` mapping from UID to
anonymised label (``user_1`` ...); unmapped UIDs fall back to ``uid_<n>``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.collector.classify import ExecutableCategory
from repro.db.store import ProcessRecord


def _user_label(record: ProcessRecord, user_names: dict[int, str] | None) -> str:
    if record.uid is None:
        return "unknown"
    if user_names and record.uid in user_names:
        return user_names[record.uid]
    return f"uid_{record.uid}"


# --------------------------------------------------------------------------- #
# Table 2 -- users, jobs and processes per category
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class UserActivityRow:
    """One row of Table 2."""

    user: str
    job_count: int
    system_processes: int
    user_processes: int
    python_processes: int

    @property
    def total_processes(self) -> int:
        """All processes of this user."""
        return self.system_processes + self.user_processes + self.python_processes


def user_activity_table(
    records: list[ProcessRecord],
    user_names: dict[int, str] | None = None,
) -> list[UserActivityRow]:
    """Per-user job and process counts, split by executable category.

    Rows are sorted in descending order of job count, then system-, user- and
    Python-process counts -- the ordering used by Table 2.
    """
    jobs: dict[str, set[str]] = defaultdict(set)
    counts: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
    for record in records:
        user = _user_label(record, user_names)
        if record.jobid:
            jobs[user].add(record.jobid)
        counts[user][record.category] += 1

    rows = [
        UserActivityRow(
            user=user,
            job_count=len(jobs[user]),
            system_processes=counts[user][ExecutableCategory.SYSTEM.value],
            user_processes=counts[user][ExecutableCategory.USER.value],
            python_processes=counts[user][ExecutableCategory.PYTHON.value],
        )
        for user in counts
    ]
    rows.sort(key=lambda row: (row.job_count, row.system_processes,
                               row.user_processes, row.python_processes), reverse=True)
    return rows


def activity_totals(rows: list[UserActivityRow]) -> UserActivityRow:
    """The "Total" row of Table 2."""
    return UserActivityRow(
        user="Total",
        job_count=sum(row.job_count for row in rows),
        system_processes=sum(row.system_processes for row in rows),
        user_processes=sum(row.user_processes for row in rows),
        python_processes=sum(row.python_processes for row in rows),
    )


# --------------------------------------------------------------------------- #
# Table 3 -- most used system-directory executables
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SystemExecutableRow:
    """One row of Table 3."""

    executable: str
    unique_users: int
    job_count: int
    process_count: int
    unique_objects_h: int


def system_executable_table(
    records: list[ProcessRecord],
    user_names: dict[int, str] | None = None,
    top: int | None = 10,
) -> list[SystemExecutableRow]:
    """Per system executable: users, jobs, processes and distinct library sets."""
    users: dict[str, set[str]] = defaultdict(set)
    jobs: dict[str, set[str]] = defaultdict(set)
    processes: dict[str, int] = defaultdict(int)
    object_hashes: dict[str, set[str]] = defaultdict(set)
    for record in records:
        if record.category != ExecutableCategory.SYSTEM.value:
            continue
        path = record.executable
        users[path].add(_user_label(record, user_names))
        if record.jobid:
            jobs[path].add(record.jobid)
        processes[path] += 1
        if record.objects_h:
            object_hashes[path].add(record.objects_h)

    rows = [
        SystemExecutableRow(
            executable=path,
            unique_users=len(users[path]),
            job_count=len(jobs[path]),
            process_count=processes[path],
            unique_objects_h=len(object_hashes[path]),
        )
        for path in processes
    ]
    rows.sort(key=lambda row: (row.unique_users, row.job_count, row.process_count,
                               row.unique_objects_h), reverse=True)
    return rows[:top] if top is not None else rows


def system_executable_count(records: list[ProcessRecord]) -> int:
    """Total number of distinct system-directory executables observed."""
    return len({
        record.executable for record in records
        if record.category == ExecutableCategory.SYSTEM.value
    })


# --------------------------------------------------------------------------- #
# Table 4 -- distinct shared-object sets of one executable
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SharedObjectVariantRow:
    """One row of Table 4: one distinct library set of an executable."""

    executable: str
    process_count: int
    objects: tuple[str, ...]
    distinguishing: dict[str, str]


def shared_object_variant_table(
    records: list[ProcessRecord],
    executable_name: str,
    distinguish: tuple[str, ...] = ("libtinfo", "libm"),
) -> list[SharedObjectVariantRow]:
    """Group processes of one executable by their exact set of loaded objects.

    ``distinguish`` lists library-name substrings whose resolved paths are
    reported per variant (the paper shows ``libtinfo`` and ``libm`` for bash).
    """
    groups: dict[tuple[str, ...], int] = defaultdict(int)
    exe_path = ""
    for record in records:
        if record.executable_name != executable_name:
            continue
        exe_path = record.executable
        key = tuple(record.object_list)
        groups[key] += 1

    rows = []
    for objects, count in groups.items():
        distinguishing: dict[str, str] = {}
        for name in distinguish:
            match = next((path for path in objects if name in path.rsplit("/", 1)[-1]), "")
            distinguishing[name] = match
        rows.append(SharedObjectVariantRow(
            executable=exe_path, process_count=count, objects=objects,
            distinguishing=distinguishing,
        ))
    rows.sort(key=lambda row: row.process_count, reverse=True)
    return rows


# --------------------------------------------------------------------------- #
# Table 8 -- Python interpreters
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PythonInterpreterRow:
    """One row of Table 8."""

    interpreter: str
    unique_users: int
    job_count: int
    process_count: int
    unique_script_h: int


def python_interpreter_table(
    records: list[ProcessRecord],
    user_names: dict[int, str] | None = None,
) -> list[PythonInterpreterRow]:
    """Per Python interpreter: users, jobs, processes and distinct input scripts."""
    users: dict[str, set[str]] = defaultdict(set)
    jobs: dict[str, set[str]] = defaultdict(set)
    processes: dict[str, int] = defaultdict(int)
    scripts: dict[str, set[str]] = defaultdict(set)
    for record in records:
        if record.category != ExecutableCategory.PYTHON.value:
            continue
        name = record.executable_name
        users[name].add(_user_label(record, user_names))
        if record.jobid:
            jobs[name].add(record.jobid)
        processes[name] += 1
        if record.script_h:
            scripts[name].add(record.script_h)

    rows = [
        PythonInterpreterRow(
            interpreter=name,
            unique_users=len(users[name]),
            job_count=len(jobs[name]),
            process_count=processes[name],
            unique_script_h=len(scripts[name]),
        )
        for name in processes
    ]
    rows.sort(key=lambda row: (row.unique_users, row.job_count, row.process_count,
                               row.unique_script_h), reverse=True)
    return rows
