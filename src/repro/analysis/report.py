"""Render analysis results as text tables matching the paper's presentation."""

from __future__ import annotations

from repro.analysis.compilers import CompilerCombinationRow
from repro.analysis.labels import LabelRow
from repro.analysis.libfilter import LibraryUsageRow
from repro.analysis.matrices import UsageMatrix
from repro.analysis.pythonpkgs import PythonPackageRow
from repro.analysis.similarity import HASH_COLUMNS, SimilarityResult
from repro.analysis.stats import (
    PythonInterpreterRow,
    SharedObjectVariantRow,
    SystemExecutableRow,
    UserActivityRow,
)
from repro.util.tables import TextTable


def render_user_activity(rows: list[UserActivityRow], title: str = "Table 2") -> str:
    """Render Table 2."""
    table = TextTable(["User", "Job count", "System dir. processes",
                       "User dir. processes", "Python processes"], title=title)
    for row in rows:
        table.add_row([row.user, row.job_count, row.system_processes,
                       row.user_processes, row.python_processes])
    return table.render()


def render_system_executables(rows: list[SystemExecutableRow], title: str = "Table 3") -> str:
    """Render Table 3."""
    table = TextTable(["Executable", "Unique users", "Job count", "Process count",
                       "Unique OBJECTS_H"], title=title)
    for row in rows:
        table.add_row([row.executable, row.unique_users, row.job_count,
                       row.process_count, row.unique_objects_h])
    return table.render()


def render_shared_object_variants(rows: list[SharedObjectVariantRow],
                                  title: str = "Table 4") -> str:
    """Render Table 4."""
    table = TextTable(["Executable", "Processes", "libtinfo path", "libm path"], title=title)
    for row in rows:
        table.add_row([row.executable, row.process_count,
                       row.distinguishing.get("libtinfo", "") or "-",
                       row.distinguishing.get("libm", "") or "-"])
    return table.render()


def render_labels(rows: list[LabelRow], title: str = "Table 5") -> str:
    """Render Table 5."""
    table = TextTable(["Software label", "Unique users", "Job count", "Process count",
                       "Unique FILE_H"], title=title)
    for row in rows:
        table.add_row([row.label, row.unique_users, row.job_count, row.process_count,
                       row.unique_file_h])
    return table.render()


def render_compiler_combinations(rows: list[CompilerCombinationRow],
                                 title: str = "Table 6") -> str:
    """Render Table 6."""
    table = TextTable(["Compiler name [provenance]", "Unique users", "Job count",
                       "Process count", "Unique FILE_H"], title=title)
    for row in rows:
        table.add_row([row.display, row.unique_users, row.job_count, row.process_count,
                       row.unique_file_h])
    return table.render()


def render_similarity(results: list[SimilarityResult], title: str = "Table 7") -> str:
    """Render Table 7."""
    table = TextTable(["Label", "Avg. Sim.", *HASH_COLUMNS], title=title)
    for result in results:
        table.add_row(result.as_row())
    return table.render()


def render_python_interpreters(rows: list[PythonInterpreterRow], title: str = "Table 8") -> str:
    """Render Table 8."""
    table = TextTable(["Python interpreter", "Unique users", "Job count", "Process count",
                       "Unique SCRIPT_H"], title=title)
    for row in rows:
        table.add_row([row.interpreter, row.unique_users, row.job_count, row.process_count,
                       row.unique_script_h])
    return table.render()


def render_library_usage(rows: list[LibraryUsageRow], title: str = "Figure 2") -> str:
    """Render Figure 2 as a table."""
    table = TextTable(["Library tag", "Unique users", "Jobs", "Processes",
                       "Unique executables"], title=title)
    for row in rows:
        table.add_row([row.tag, row.unique_users, row.job_count, row.process_count,
                       row.unique_executables])
    return table.render()


def render_python_packages(rows: list[PythonPackageRow], title: str = "Figure 3") -> str:
    """Render Figure 3 as a table."""
    table = TextTable(["Package", "Unique users", "Jobs", "Processes",
                       "Unique Python scripts"], title=title)
    for row in rows:
        table.add_row([row.package, row.unique_users, row.job_count, row.process_count,
                       row.unique_scripts])
    return table.render()


def render_matrix(matrix: UsageMatrix, title: str) -> str:
    """Render Figure 4 / Figure 5 as a 0/1 table."""
    table = TextTable(["Software label", *matrix.column_labels], title=title)
    for row_label, row in zip(matrix.row_labels, matrix.cells):
        table.add_row([row_label, *row])
    return table.render()
