"""Usage matrices: compilers x labels (Figure 4) and libraries x labels (Figure 5)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.compilers import compilers_by_label
from repro.analysis.labels import LABEL_RULES, label_by_executable
from repro.analysis.libfilter import library_tags_by_label
from repro.db.store import ProcessRecord


@dataclass(frozen=True)
class UsageMatrix:
    """A 0/1 matrix of rows (software labels) against columns (compilers or libraries)."""

    row_labels: tuple[str, ...]
    column_labels: tuple[str, ...]
    cells: tuple[tuple[int, ...], ...]

    def value(self, row: str, column: str) -> int:
        """Cell lookup by names."""
        return self.cells[self.row_labels.index(row)][self.column_labels.index(column)]

    def row(self, row: str) -> dict[str, int]:
        """One row as a column->value dict."""
        values = self.cells[self.row_labels.index(row)]
        return dict(zip(self.column_labels, values))

    def column_totals(self) -> dict[str, int]:
        """Number of labels using each column."""
        return {
            column: sum(self.cells[i][j] for i in range(len(self.row_labels)))
            for j, column in enumerate(self.column_labels)
        }


def _build_matrix(mapping: dict[str, set[str]],
                  column_order: tuple[str, ...] | None) -> UsageMatrix:
    rows = tuple(sorted(mapping))
    if column_order is None:
        columns: list[str] = []
        for values in mapping.values():
            for value in sorted(values):
                if value not in columns:
                    columns.append(value)
        column_order = tuple(columns)
    cells = tuple(
        tuple(1 if column in mapping[row] else 0 for column in column_order)
        for row in rows
    )
    return UsageMatrix(row_labels=rows, column_labels=column_order, cells=cells)


def compiler_label_matrix(
    records: list[ProcessRecord],
    column_order: tuple[str, ...] | None = None,
    rules=LABEL_RULES,
) -> UsageMatrix:
    """Figure 4: which compiler toolchains each software label was built with."""
    label_of = label_by_executable(records, rules)
    return _build_matrix(compilers_by_label(records, label_of), column_order)


def library_label_matrix(
    records: list[ProcessRecord],
    column_order: tuple[str, ...] | None = None,
    rules=LABEL_RULES,
) -> UsageMatrix:
    """Figure 5: which derived library tags each software label loads."""
    label_of = label_by_executable(records, rules)
    return _build_matrix(library_tags_by_label(records, label_of), column_order)
