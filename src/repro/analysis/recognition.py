"""Recognition of repeated executions and similarity clustering.

Beyond the one-baseline similarity search of Table 7, the paper motivates
SIREN with the *recognition of repeated executions of known applications* and
with future plans to analyse software usage at scale.  This module provides
that layer:

* :func:`similarity_graph` builds a graph whose nodes are executable instances
  and whose edges connect instances with average fuzzy-hash similarity above a
  threshold,
* :class:`SoftwareFamily` / :func:`cluster_instances` extract connected
  components ("software families") from that graph, label each family from its
  known members, and therefore propagate labels to unknown instances in bulk,
* :func:`recognize_repeated_executions` reports, per family, how often the
  same software was executed across jobs — the paper's "repeated execution"
  use case (performance-variability studies need exactly this grouping).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import networkx as nx

from repro.analysis.labels import UNKNOWN_LABEL
from repro.analysis.similarity import HASH_COLUMNS, ExecutableInstance, SimilaritySearch
from repro.db.store import ProcessRecord


def similarity_graph(
    search: SimilaritySearch,
    *,
    threshold: int = 60,
    columns: tuple[str, ...] = HASH_COLUMNS,
) -> nx.Graph:
    """Build the instance-similarity graph.

    Nodes are instance keys (carrying the instance as a node attribute); an
    edge is added between two instances when the average similarity over
    ``columns`` is at least ``threshold``.  The edge weight is that average.
    Each instance's scores against every later instance run as one batched
    :meth:`~repro.analysis.similarity.SimilaritySearch.compare_instances_many`
    sweep -- scores, counters and edges are identical to the scalar loop.
    """
    if not 0 <= threshold <= 100:
        raise ValueError("threshold must be between 0 and 100")
    graph = nx.Graph()
    instances = search.instances
    for instance in instances:
        graph.add_node(instance.key, instance=instance)
    for i, first in enumerate(instances):
        rest = instances[i + 1:]
        for second, scores in zip(rest, search.compare_instances_many(first, rest)):
            average = sum(scores[column] for column in columns) / len(columns)
            if average >= threshold:
                graph.add_edge(first.key, second.key, weight=average)
    return graph


@dataclass(frozen=True)
class SoftwareFamily:
    """One cluster of mutually similar executable instances."""

    family_id: int
    label: str
    instances: tuple[ExecutableInstance, ...]
    labelled_members: int
    unknown_members: int

    @property
    def executables(self) -> tuple[str, ...]:
        """Paths of the member instances."""
        return tuple(instance.executable for instance in self.instances)

    @property
    def size(self) -> int:
        """Number of member instances."""
        return len(self.instances)


def cluster_instances(
    search: SimilaritySearch,
    *,
    threshold: int = 60,
    columns: tuple[str, ...] = HASH_COLUMNS,
) -> list[SoftwareFamily]:
    """Group instances into software families by similarity.

    Each connected component of the similarity graph becomes a family; the
    family label is the most common non-UNKNOWN derived label among its
    members (so unknown instances inherit the label of the known instances
    they cluster with), or ``UNKNOWN`` for components with no known member.
    Families are returned largest first.
    """
    graph = similarity_graph(search, threshold=threshold, columns=columns)
    families: list[SoftwareFamily] = []
    for family_id, component in enumerate(nx.connected_components(graph)):
        members = tuple(graph.nodes[node]["instance"] for node in sorted(component))
        label_counts = Counter(instance.label for instance in members
                               if instance.label != UNKNOWN_LABEL)
        label = label_counts.most_common(1)[0][0] if label_counts else UNKNOWN_LABEL
        unknown_members = sum(1 for instance in members if instance.label == UNKNOWN_LABEL)
        families.append(SoftwareFamily(
            family_id=family_id,
            label=label,
            instances=members,
            labelled_members=len(members) - unknown_members,
            unknown_members=unknown_members,
        ))
    families.sort(key=lambda family: family.size, reverse=True)
    return families


def propagate_labels(families: list[SoftwareFamily]) -> dict[str, str]:
    """Executable path -> family label, including previously UNKNOWN paths."""
    mapping: dict[str, str] = {}
    for family in families:
        for instance in family.instances:
            mapping[instance.executable] = family.label
    return mapping


@dataclass(frozen=True)
class RepeatedExecutionRow:
    """Recognition summary for one software family."""

    label: str
    distinct_executables: int
    job_count: int
    process_count: int
    first_seen: int
    last_seen: int

    @property
    def repeated(self) -> bool:
        """True if the same software executed in more than one job."""
        return self.job_count > 1


@dataclass
class RecognitionReport:
    """Repeated-execution recognition over a set of records."""

    rows: list[RepeatedExecutionRow] = field(default_factory=list)

    def repeated_families(self) -> list[RepeatedExecutionRow]:
        """Families executed across more than one job."""
        return [row for row in self.rows if row.repeated]


def recognize_repeated_executions(
    records: list[ProcessRecord],
    *,
    threshold: int = 60,
    columns: tuple[str, ...] = HASH_COLUMNS,
) -> RecognitionReport:
    """Recognise repeated executions of the same software across jobs.

    Instances are clustered into families; every user-directory process record
    is then attributed to its family (via its executable path) and per-family
    job/process counts and first/last execution times are reported.
    """
    search = SimilaritySearch(records)
    families = cluster_instances(search, threshold=threshold, columns=columns)
    label_of = propagate_labels(families)

    jobs: dict[str, set[str]] = {}
    processes: dict[str, int] = {}
    executables: dict[str, set[str]] = {}
    first_seen: dict[str, int] = {}
    last_seen: dict[str, int] = {}
    for record in records:
        label = label_of.get(record.executable)
        if label is None:
            continue
        jobs.setdefault(label, set())
        if record.jobid:
            jobs[label].add(record.jobid)
        processes[label] = processes.get(label, 0) + 1
        executables.setdefault(label, set()).add(record.executable)
        first_seen[label] = min(first_seen.get(label, record.time), record.time)
        last_seen[label] = max(last_seen.get(label, record.time), record.time)

    rows = [
        RepeatedExecutionRow(
            label=label,
            distinct_executables=len(executables[label]),
            job_count=len(jobs[label]),
            process_count=processes[label],
            first_seen=first_seen[label],
            last_seen=last_seen[label],
        )
        for label in processes
    ]
    rows.sort(key=lambda row: (row.job_count, row.process_count), reverse=True)
    return RecognitionReport(rows=rows)
