"""Imported Python package analysis (Figure 3).

Per imported package (extracted from interpreter memory maps during
post-processing), count unique users, jobs, processes and unique Python
scripts -- the four y-axes of Figure 3.  The same module also provides the
package *audit* used in the slopsquatting example: flag imported packages that
are not on an allow-list of known-good names.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.collector.classify import ExecutableCategory
from repro.db.store import ProcessRecord


@dataclass(frozen=True)
class PythonPackageRow:
    """One bar group of Figure 3."""

    package: str
    unique_users: int
    job_count: int
    process_count: int
    unique_scripts: int


def python_package_table(
    records: list[ProcessRecord],
    user_names: dict[int, str] | None = None,
) -> list[PythonPackageRow]:
    """Per imported Python package: users, jobs, processes and distinct scripts."""
    users: dict[str, set[str]] = defaultdict(set)
    jobs: dict[str, set[str]] = defaultdict(set)
    processes: dict[str, int] = defaultdict(int)
    scripts: dict[str, set[str]] = defaultdict(set)

    for record in records:
        if record.category != ExecutableCategory.PYTHON.value or not record.python_packages:
            continue
        user = user_names.get(record.uid, f"uid_{record.uid}") if user_names and record.uid \
            else f"uid_{record.uid}"
        for package in record.python_package_list:
            users[package].add(user)
            if record.jobid:
                jobs[package].add(record.jobid)
            processes[package] += 1
            if record.script_h:
                scripts[package].add(record.script_h)

    rows = [
        PythonPackageRow(
            package=package,
            unique_users=len(users[package]),
            job_count=len(jobs[package]),
            process_count=processes[package],
            unique_scripts=len(scripts[package]),
        )
        for package in processes
    ]
    rows.sort(key=lambda row: (row.unique_users, row.job_count, row.process_count,
                               row.unique_scripts), reverse=True)
    return rows


@dataclass(frozen=True)
class PackageAuditFinding:
    """One suspicious imported package."""

    package: str
    reason: str
    process_count: int
    users: tuple[str, ...]


def audit_python_packages(
    records: list[ProcessRecord],
    known_packages: set[str],
    insecure_packages: set[str] | None = None,
    user_names: dict[int, str] | None = None,
) -> list[PackageAuditFinding]:
    """Flag imported packages that are unknown or known-insecure.

    ``known_packages`` plays the role of a curated index (PyPI top packages,
    the stdlib, the site's module inventory); anything imported but not on the
    list is a candidate slopsquatting / typosquatting hit.  ``insecure_packages``
    (e.g. the safety-db list referenced in the paper) is flagged regardless.
    """
    insecure = insecure_packages or set()
    rows = python_package_table(records, user_names)
    findings: list[PackageAuditFinding] = []
    by_package = {row.package: row for row in rows}
    user_sets: dict[str, set[str]] = defaultdict(set)
    for record in records:
        if record.category != ExecutableCategory.PYTHON.value:
            continue
        user = user_names.get(record.uid, f"uid_{record.uid}") if user_names and record.uid \
            else f"uid_{record.uid}"
        for package in record.python_package_list:
            user_sets[package].add(user)

    for package, row in sorted(by_package.items()):
        if package in insecure:
            reason = "known insecure package version in use"
        elif package not in known_packages:
            reason = "package not on the known-package allow-list"
        else:
            continue
        findings.append(PackageAuditFinding(
            package=package, reason=reason, process_count=row.process_count,
            users=tuple(sorted(user_sets[package])),
        ))
    return findings
