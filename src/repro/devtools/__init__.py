"""Developer tooling that keeps the repository's invariants mechanical.

The reproduction's correctness rests on rules no runtime test states
explicitly: one-seed determinism, byte-identical A/B reference paths,
config knobs threaded in parallel through campaign and framework configs,
fork-safe module state across the process pools, and a counter vocabulary
that parallel-mode folding and the docs both agree on.  :mod:`repro.devtools.lint`
turns those tribal rules into AST-level checks that gate CI.
"""
