"""Rollup-counter rules: every tiered-store counter increment is registered.

The ``counters`` family cross-checks *statistics functions* -- dict
literals and ``stats["key"] = ...`` assignments inside ``statistics()`` and
friends -- against :mod:`repro.util.counters`.  The tiered record store
(:mod:`repro.db.tiered`) counts differently: a ``counters`` mapping is
initialised once and incremented at the hot sites
(``self.counters["rollup_dedup_skips"] += 1``), and ``AugAssign`` targets
are exactly what the statistics-function collector never visits.  A typo'd
increment key would surface a counter the registry (and the cross-mode
fold pins built on it) has never heard of -- but only at runtime, in
whichever test happens to hit that branch.

These rules close the gap by scanning *every* module for ``counters``
mapping traffic, wherever it lives:

``rollups/unregistered-counter``
    A subscript on a ``counters`` mapping (increment, assignment, or the
    initialising dict literal) uses a literal key that
    :data:`repro.util.counters.COUNTERS` does not declare.
``rollups/dynamic-key``
    A ``counters`` mapping is subscripted with a computed key, which no
    static check can vouch for.  Read-only folds over *other* emitters'
    dicts (``stats[key] = value`` loops) target ``stats``/``merged``
    mappings, not ``counters``, so they stay out of scope by naming
    convention.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.lint.engine import (Checker, Finding, SourceModule,
                                        register_checker)

#: Attribute/variable names treated as registered-counter mappings.
COUNTER_MAPPING_NAMES = ("counters",)


def _is_counter_mapping(node: ast.expr) -> bool:
    """Whether ``node`` names a counter mapping (``self.counters``, ``counters``)."""
    if isinstance(node, ast.Attribute):
        return node.attr in COUNTER_MAPPING_NAMES
    if isinstance(node, ast.Name):
        return node.id in COUNTER_MAPPING_NAMES
    return False


class _CounterTraffic(ast.NodeVisitor):
    """Collect every write touch of a ``counters`` mapping in one module."""

    def __init__(self) -> None:
        self.literal_keys: list[tuple[str, int]] = []
        self.dynamic_keys: list[int] = []

    def _collect_subscript(self, node: ast.Subscript) -> None:
        if not _is_counter_mapping(node.value):
            return
        if isinstance(node.slice, ast.Constant) and isinstance(node.slice.value, str):
            self.literal_keys.append((node.slice.value, node.lineno))
        else:
            self.dynamic_keys.append(node.lineno)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Subscript):
            self._collect_subscript(node.target)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._collect_subscript(target)
            elif (_is_counter_mapping(target)
                  and isinstance(node.value, ast.Dict)):
                self._collect_dict(node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Subscript):
            self._collect_subscript(node.target)
        elif (_is_counter_mapping(node.target) and node.value is not None
              and isinstance(node.value, ast.Dict)):
            self._collect_dict(node.value)
        self.generic_visit(node)

    def _collect_dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                self.literal_keys.append((key.value, key.lineno))
            elif key is not None:
                self.dynamic_keys.append(key.lineno)


class RollupCounterChecker(Checker):
    """Check ``counters``-mapping increment sites against the registry."""

    family = "rollups"

    def __init__(self, registry: dict[str, str] | None = None) -> None:
        self._registry = registry

    def _resolve(self) -> dict[str, str]:
        if self._registry is not None:
            return self._registry
        from repro.util.counters import COUNTERS
        return COUNTERS

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if module.module == "repro.util.counters":
            return  # the registry's own docstring examples are not traffic
        registry = self._resolve()
        traffic = _CounterTraffic()
        traffic.visit(module.tree)
        for key, lineno in traffic.literal_keys:
            if key not in registry:
                yield Finding(
                    rule=f"{self.family}/unregistered-counter",
                    message=(f"counter mapping key '{key}' is not declared "
                             "in repro.util.counters.COUNTERS; register it "
                             "(statistics folds and the docs key off the "
                             "registry)"),
                    path=module.rel, line=lineno)
        for lineno in traffic.dynamic_keys:
            yield Finding(
                rule=f"{self.family}/dynamic-key",
                message=("counter mapping subscripted with a computed key; "
                         "spell registered counter keys as string literals "
                         "so the registry cross-check can see them"),
                path=module.rel, line=lineno)


register_checker(RollupCounterChecker)
