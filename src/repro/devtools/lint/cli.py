"""Command-line entry point: ``python -m repro.devtools.lint [paths...]``.

Exit status is the contract: 0 for a clean tree, 1 when any finding (or
meta finding -- a reason-less or, under ``--strict``, stale allow comment)
survives.  ``scripts/lint_repro.py`` wraps this for checkouts where
``src`` is not already importable.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.devtools.lint.engine import registered_families, run_lint
from repro.devtools.lint.report import render_json, render_text


def _repo_root(paths: list[Path]) -> Path:
    """The repository root anchoring repo-relative finding paths.

    Walk up from the first scanned path looking for the ``src/repro``
    layout; fall back to the current directory.
    """
    probe = paths[0].resolve()
    for candidate in (probe, *probe.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return Path.cwd()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Repo-invariant static analysis for the SIREN reproduction.")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to scan (default: src/repro)")
    parser.add_argument("--select", metavar="FAMILIES",
                        help="comma-separated rule families to run "
                             f"(default: all of {','.join(registered_families())})")
    parser.add_argument("--json", metavar="FILE", type=Path,
                        help="also write the machine-readable report to FILE")
    parser.add_argument("--strict", action="store_true",
                        help="additionally fail on allow comments that "
                             "silenced nothing (stale suppressions)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rule families and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for family in registered_families():
            print(family)
        return 0

    if args.paths:
        paths = args.paths
    else:
        # Default to the package's own source tree (cwd-independent, so
        # scripts/lint_repro.py works from any directory).
        import repro
        paths = [Path(repro.__file__).resolve().parent]
    missing = [path for path in paths if not path.exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2

    select = ([family.strip() for family in args.select.split(",")
               if family.strip()] if args.select else None)
    try:
        result = run_lint(paths, repo_root=_repo_root(paths), select=select,
                          strict=args.strict)
    except ValueError as error:  # unknown --select family
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(render_json(result), encoding="utf-8")
    sys.stdout.write(render_text(result))
    return 0 if result.ok else 1
