"""Knob-parity rules: config knobs must agree across classes, code and docs.

Every deployment knob is threaded in parallel through
:class:`~repro.workload.campaign.CampaignConfig` (campaign runs) and
:class:`~repro.core.config.SirenConfig` (framework deployments), consumed
somewhere in ``src/repro``, and described in the knob table of
``docs/architecture.md``.  PR 4 fixed two silent drifts by hand
(``keep_raw_messages`` and ``transport`` existed on one class only); these
rules make that class of bug mechanical.

The checker *introspects* the dataclasses (``dataclasses.fields``), parses
the docs knob table, and scans the ASTs for consumption -- no regexes over
source text.  The docs table is the intent record: its ``scope`` column
declares whether a knob exists on both classes or deliberately on one, and
the checker verifies the declaration against reality:

``knobs/undocumented``
    A dataclass field missing from the docs knob table.
``knobs/stale-doc``
    A docs row naming a knob neither dataclass has.
``knobs/missing-mirror``
    Docs declare the knob ``both`` but one dataclass lacks it -- the PR 4
    drift, caught at lint time.
``knobs/scope-mismatch``
    The docs scope disagrees with introspection in any other way (e.g. a
    knob promoted to both classes while the table still says
    ``campaign``).
``knobs/unconsumed``
    No scanned module reads the field (``config.<name>`` /
    ``*.config.<name>``, or ``self.<name>`` inside the config class's own
    methods): a knob that nothing consumes is either dead or -- worse --
    silently ignored.

The docs table rows have the shape ``| `name` | scope | description |``
with scope one of ``campaign``, ``framework``, ``both``.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Iterable

from repro.devtools.lint.engine import (Checker, Finding, SourceModule,
                                        register_checker)

_DOC_ROW = re.compile(r"^\|\s*`(?P<name>[A-Za-z_][A-Za-z0-9_]*)`\s*\|"
                      r"\s*(?P<scope>campaign|framework|both)\s*\|")


def parse_knob_table(text: str) -> dict[str, tuple[str, int]]:
    """``{knob: (scope, line)}`` from every knob-table row in ``text``."""
    rows: dict[str, tuple[str, int]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _DOC_ROW.match(line.strip())
        if match is not None:
            rows[match.group("name")] = (match.group("scope"), lineno)
    return rows


class _ConsumptionScanner(ast.NodeVisitor):
    """Find reads of config fields across a module.

    A field counts as consumed when read off a config object
    (``config.<name>``, ``self.config.<name>``, ``campaign.config.<name>``)
    or via ``self.<name>`` inside a method of one of the config classes
    themselves.
    """

    def __init__(self, names: set[str], config_class_names: set[str]) -> None:
        self.names = names
        self.config_class_names = config_class_names
        self.consumed: set[str] = set()
        self._in_config_class = 0

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        inside = node.name in self.config_class_names
        self._in_config_class += inside
        self.generic_visit(node)
        self._in_config_class -= inside

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in self.names:
            value = node.value
            terminal = (value.attr if isinstance(value, ast.Attribute)
                        else value.id if isinstance(value, ast.Name) else "")
            if terminal == "config":
                self.consumed.add(node.attr)
            elif terminal == "self" and self._in_config_class:
                self.consumed.add(node.attr)
        self.generic_visit(node)


class KnobParityChecker(Checker):
    """Cross-check CampaignConfig, SirenConfig, consumption and docs."""

    family = "knobs"

    def __init__(self, campaign_cls: type | None = None,
                 siren_cls: type | None = None,
                 docs_path: Path | None = None) -> None:
        self._campaign_cls = campaign_cls
        self._siren_cls = siren_cls
        self._docs_path = docs_path

    # Lazy resolution keeps checker *registration* import-light and lets
    # unit tests inject toy dataclasses and a toy docs file.
    def _resolve(self) -> tuple[type, type, Path]:
        campaign_cls, siren_cls = self._campaign_cls, self._siren_cls
        if campaign_cls is None or siren_cls is None:
            from repro.core.config import SirenConfig
            from repro.workload.campaign import CampaignConfig
            campaign_cls = campaign_cls or CampaignConfig
            siren_cls = siren_cls or SirenConfig
        docs_path = self._docs_path
        if docs_path is None:
            import repro
            docs_path = (Path(repro.__file__).resolve().parents[2]
                         / "docs" / "architecture.md")
        return campaign_cls, siren_cls, docs_path

    def check_tree(self, modules: list[SourceModule]) -> Iterable[Finding]:
        campaign_cls, siren_cls, docs_path = self._resolve()
        campaign_fields = {f.name for f in dataclasses.fields(campaign_cls)}
        siren_fields = {f.name for f in dataclasses.fields(siren_cls)}
        config_rel = self._definition_rel(modules, campaign_cls, siren_cls)
        if config_rel is None:
            if self._campaign_cls is None and self._siren_cls is None:
                # Partial scan that does not include the config definitions
                # (e.g. linting one subpackage): parity is a whole-tree
                # invariant, so stay silent rather than report the knobs as
                # unconsumed by a tree that never could consume them.
                return
            # Injected test doubles live outside the scanned tree; anchor
            # their findings to the first scanned module instead.
            config_rel = modules[0].rel if modules else "<configs>"

        docs_rel = docs_path.as_posix()
        if not docs_path.exists():
            yield Finding(rule=f"{self.family}/undocumented",
                          message=f"knob table file missing: {docs_rel}",
                          path=config_rel, line=1)
            return
        documented = parse_knob_table(docs_path.read_text(encoding="utf-8"))

        def actual_scope(name: str) -> str:
            if name in campaign_fields and name in siren_fields:
                return "both"
            return "campaign" if name in campaign_fields else "framework"

        for name in sorted(campaign_fields | siren_fields):
            scope = actual_scope(name)
            if name not in documented:
                yield Finding(
                    rule=f"{self.family}/undocumented",
                    message=(f"knob '{name}' ({scope}) is missing from the "
                             f"knob table in {docs_rel}; add a "
                             f"'| `{name}` | {scope} | ...' row"),
                    path=config_rel, line=1)
                continue
            declared, row_line = documented[name]
            if declared == scope:
                continue
            if declared == "both":
                missing = ("SirenConfig" if name not in siren_fields
                           else "CampaignConfig")
                yield Finding(
                    rule=f"{self.family}/missing-mirror",
                    message=(f"knob '{name}' is documented on both configs "
                             f"but {missing} has no such field -- the PR 4 "
                             "knob-drift bug; mirror the field or fix the "
                             "docs scope"),
                    path=config_rel, line=1)
            else:
                yield Finding(
                    rule=f"{self.family}/scope-mismatch",
                    message=(f"knob '{name}' is declared '{declared}' in "
                             f"{docs_rel}:{row_line} but introspection says "
                             f"'{scope}'"),
                    path=config_rel, line=1)

        for name, (declared, row_line) in sorted(documented.items()):
            if name not in campaign_fields and name not in siren_fields:
                yield Finding(
                    rule=f"{self.family}/stale-doc",
                    message=(f"{docs_rel}:{row_line} documents knob '{name}' "
                             "but neither CampaignConfig nor SirenConfig has "
                             "such a field"),
                    path=config_rel, line=1)

        yield from self._check_consumption(
            modules, campaign_fields | siren_fields,
            {campaign_cls.__name__, siren_cls.__name__}, config_rel)

    def _check_consumption(self, modules: list[SourceModule], names: set[str],
                           class_names: set[str], config_rel: str,
                           ) -> Iterable[Finding]:
        consumed: set[str] = set()
        for module in modules:
            scanner = _ConsumptionScanner(names, class_names)
            scanner.visit(module.tree)
            consumed.update(scanner.consumed)
        for name in sorted(names - consumed):
            yield Finding(
                rule=f"{self.family}/unconsumed",
                message=(f"knob '{name}' is never read from a config object "
                         "in the scanned tree: it is either dead or silently "
                         "ignored by the deployment wiring"),
                path=config_rel, line=1)

    @staticmethod
    def _definition_rel(modules: list[SourceModule], campaign_cls: type,
                        siren_cls: type) -> str | None:
        """Path findings anchor to (a config-defining module), or ``None``
        when the scan does not include the config definitions at all."""
        wanted = {campaign_cls.__module__, siren_cls.__module__}
        for module in modules:
            if module.module in wanted:
                return module.rel
        return None


register_checker(KnobParityChecker)
