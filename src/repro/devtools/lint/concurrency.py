"""Concurrency hygiene rules: the process pools must stay fork-safe and live.

Two subsystems fan work across OS processes (:mod:`repro.ingest.procworkers`,
:mod:`repro.workload.parallel`), and both have already produced the classic
bug classes these rules encode:

``concurrency/module-mutable-cache``
    A module-level mutable cache (a dict/list/set/deque the module mutates
    after import, or a ``functools.lru_cache``/``cache``-decorated function)
    without a ``*_clear()`` hook in the same module that references it.
    Forked workers inherit such state; without a registered clear hook there
    is no way to reset it between campaigns or before a fork, and
    cross-campaign contamination is invisible until counters drift (the PR 5
    compare-LRU lesson).  Constants built at import and only read afterwards
    are fine -- the rule fires only when the module *mutates* the object
    after definition.
``concurrency/queue-get-timeout``
    ``.get()`` on a queue without a ``timeout``: a blocking get on a queue
    whose producer died is a permanent hang.  Every queue interaction in the
    pools polls with a timeout and re-checks liveness (the supervision
    contract); the rule fires on argument-less ``.get()`` (and
    ``.get(block=True)`` / ``.get(True)`` without a timeout) in any module
    that imports ``queue`` or ``multiprocessing``.
``concurrency/bare-except``
    ``except:`` catches ``SystemExit``/``KeyboardInterrupt`` and turns
    shutdown into a hang; always name the exception.
``concurrency/swallowed-exception``
    ``except Exception`` (or ``BaseException``) in :mod:`repro.transport` /
    :mod:`repro.ingest` whose handler neither re-raises nor increments a
    counter.  Overbroad swallowing is legitimate exactly once -- the
    fire-and-forget sender -- and there it *counts* what it swallowed;
    silent variants hide real faults from the statistics the equivalence
    suites pin.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.lint.engine import (Checker, Finding, SourceModule,
                                        register_checker)

#: Packages whose overbroad exception handlers must count or re-raise.
SWALLOW_SCOPE = ("repro.transport", "repro.ingest")

#: Mutating method names that mark a module-level object as a live cache.
_MUTATING_METHODS = frozenset({"append", "add", "update", "setdefault", "pop",
                               "popitem", "extend", "insert", "appendleft",
                               "discard", "remove"})

_CACHE_DECORATORS = frozenset({"lru_cache", "cache"})

_FunctionDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _imports_queueing(module: SourceModule) -> bool:
    """Whether the module imports ``queue`` or ``multiprocessing``."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            if any(alias.name.split(".")[0] in ("queue", "multiprocessing")
                   for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in ("queue",
                                                             "multiprocessing"):
                return True
    return False


def _terminal_name(node: ast.expr) -> str:
    """Terminal name of a call/attribute chain (``functools.lru_cache()`` -> ``lru_cache``)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_mutable_literal(node: ast.expr) -> bool:
    """Whether an assigned value is a mutable container literal/constructor."""
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _terminal_name(node) in ("dict", "list", "set", "deque",
                                        "defaultdict", "OrderedDict", "Counter")
    return False


def _root_name(node: ast.expr) -> str | None:
    """Leftmost ``Name`` of a subscript/attribute chain."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class _MutationScanner(ast.NodeVisitor):
    """Collect which of ``names`` the visited code mutates, with first line."""

    def __init__(self, names: set[str]) -> None:
        self.names = names
        self.mutated: dict[str, int] = {}

    def _record(self, name: str | None, lineno: int) -> None:
        if name in self.names and name not in self.mutated:
            self.mutated[name] = lineno

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            self._record(_root_name(func.value), node.lineno)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._record(_root_name(target), node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Subscript):
            self._record(_root_name(node.target), node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._record(_root_name(target), node.lineno)
        self.generic_visit(node)


def _handler_counts_or_reraises(handler: ast.ExceptHandler) -> bool:
    """Whether an except handler re-raises or increments a counter."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            return True
    return False


def _catches_everything(handler: ast.ExceptHandler) -> bool:
    """Whether the handler catches ``Exception``/``BaseException`` (incl. tuples)."""
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    return any(_terminal_name(node) in ("Exception", "BaseException")
               for node in types if node is not None)


class ConcurrencyChecker(Checker):
    """Fork-safety, queue-liveness and exception-hygiene rules."""

    family = "concurrency"

    def __init__(self, swallow_scope: tuple[str, ...] = SWALLOW_SCOPE) -> None:
        self.swallow_scope = swallow_scope

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        yield from self._check_excepts(module)
        yield from self._check_queue_gets(module)
        yield from self._check_module_caches(module)

    # ------------------------------------------------------------------ #
    def _check_excepts(self, module: SourceModule) -> Iterable[Finding]:
        in_swallow_scope = any(
            module.module == pkg or module.module.startswith(pkg + ".")
            for pkg in self.swallow_scope)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    rule=f"{self.family}/bare-except",
                    message=("bare 'except:' also catches SystemExit/"
                             "KeyboardInterrupt; name the exception type"),
                    path=module.rel, line=node.lineno, col=node.col_offset)
            elif (in_swallow_scope and _catches_everything(node)
                  and not _handler_counts_or_reraises(node)):
                yield Finding(
                    rule=f"{self.family}/swallowed-exception",
                    message=("'except Exception' here neither re-raises nor "
                             "increments a counter: faults vanish from the "
                             "statistics the equivalence suites pin; count it "
                             "or narrow the type"),
                    path=module.rel, line=node.lineno, col=node.col_offset)

    # ------------------------------------------------------------------ #
    def _check_queue_gets(self, module: SourceModule) -> Iterable[Finding]:
        if not _imports_queueing(module):
            return
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "get"):
                continue
            keywords = {kw.arg for kw in node.keywords}
            if "timeout" in keywords:
                continue
            # ``d.get(key)``-style lookups pass a positional key; a blocking
            # queue get has no positional args (or only ``block=True``).
            blocking_shapes = (
                (not node.args and keywords <= {"block"}),
                (len(node.args) == 1 and not keywords
                 and isinstance(node.args[0], ast.Constant)
                 and node.args[0].value is True),
            )
            if any(blocking_shapes):
                yield Finding(
                    rule=f"{self.family}/queue-get-timeout",
                    message=("queue get() without a timeout hangs forever if "
                             "the producer dies; poll with a timeout and "
                             "re-check liveness"),
                    path=module.rel, line=node.lineno, col=node.col_offset)

    # ------------------------------------------------------------------ #
    def _check_module_caches(self, module: SourceModule) -> Iterable[Finding]:
        # Clear hooks and the names their bodies reference: a hook exempts
        # exactly the caches it actually clears.
        cleared_names: set[str] = set()
        for node in module.tree.body:
            if (isinstance(node, _FunctionDef)
                    and ("_clear" in node.name or node.name.startswith("clear_"))):
                cleared_names.update(
                    sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name))

        for node in module.tree.body:
            if isinstance(node, _FunctionDef):
                cached = any(_terminal_name(dec) in _CACHE_DECORATORS
                             for dec in node.decorator_list)
                if cached and node.name not in cleared_names:
                    yield Finding(
                        rule=f"{self.family}/module-mutable-cache",
                        message=(f"module-level cache '{node.name}' (lru_cache)"
                                 " has no *_clear() hook in this module; forked"
                                 " workers and multi-campaign runs cannot reset"
                                 " it"),
                        path=module.rel, line=node.lineno, col=node.col_offset)

        # Module-level mutable containers the module mutates after import.
        candidates: dict[str, int] = {}
        for node in module.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _is_mutable_literal(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    candidates.setdefault(target.id, node.lineno)
        if not candidates:
            return
        scanner = _MutationScanner(set(candidates))
        for node in module.tree.body:
            if isinstance(node, (*_FunctionDef, ast.ClassDef)):
                scanner.visit(node)
        for name, lineno in sorted(scanner.mutated.items(),
                                   key=lambda item: item[1]):
            if name in cleared_names:
                continue
            yield Finding(
                rule=f"{self.family}/module-mutable-cache",
                message=(f"module-level container '{name}' is mutated at "
                         f"runtime (line {lineno}) but no *_clear() hook in "
                         "this module references it; forked workers inherit "
                         "it and cannot reset it"),
                path=module.rel, line=candidates[name], col=0)


register_checker(ConcurrencyChecker)
