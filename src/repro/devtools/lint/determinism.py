"""Determinism rules: one seed must reproduce every run.

The simulation (:mod:`repro.hpcsim`), the workload drivers
(:mod:`repro.workload`), the fault plans (:mod:`repro.faults`) and the
transport layer (:mod:`repro.transport`) are all contractually deterministic:
campaign results, fault injections and loss decisions replay bit-identically
from one seed.  A single call to the process-global ``random`` module, to
``uuid.uuid4`` or to a wall clock silently breaks that contract -- the run
still *works*, it just stops being reproducible, which is exactly the kind of
bug that ships.  These rules ban the entropy and wall-clock entry points in
the deterministic packages:

``determinism/unseeded-random``
    Module-level ``random.<fn>()`` calls (they draw from the interpreter-wide
    RNG) and ``random.Random()`` constructed without a seed.  Seeded
    construction -- ``random.Random(seed)`` -- is fine; so is
    :class:`repro.util.rng.SeededRNG`, the preferred door.
``determinism/global-seed``
    ``random.seed(...)``: reseeding the global RNG perturbs every *other*
    unseeded draw in the process, the least debuggable variant.
``determinism/entropy``
    ``uuid.uuid1``/``uuid.uuid4``, ``os.urandom`` and anything from
    ``secrets`` -- OS entropy, unreplayable by definition.
``determinism/wall-clock``
    ``time.time``/``time.time_ns``, ``datetime.now``/``utcnow``,
    ``date.today``: wall-clock reads.  The simulation has its own clock
    (:class:`repro.hpcsim.filesystem`'s), and profiling belongs in
    :mod:`repro.util.timing`, which is exempt by scope.

Scope: packages listed in :data:`DEFAULT_SCOPE`.  Monotonic reads
(``time.monotonic``, ``time.perf_counter``) are *not* flagged -- they time
out stalls and never feed data paths.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.lint.engine import (Checker, Finding, SourceModule,
                                        register_checker)

#: Packages under the one-seed determinism contract.
DEFAULT_SCOPE = ("repro.hpcsim", "repro.workload", "repro.faults",
                 "repro.transport")

#: ``random`` module functions that draw from the process-global RNG.
GLOBAL_RANDOM_FUNCTIONS = frozenset({
    "random", "randint", "randrange", "randbytes", "choice", "choices",
    "shuffle", "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "getrandbits", "binomialvariate",
})

#: ``(module, attribute)`` calls that read OS entropy.
ENTROPY_CALLS = frozenset({("uuid", "uuid1"), ("uuid", "uuid4"), ("os", "urandom")})

#: ``(module-ish value, attribute)`` calls that read the wall clock.
WALL_CLOCK_ATTRS = frozenset({("time", "time"), ("time", "time_ns"),
                              ("datetime", "now"), ("datetime", "utcnow"),
                              ("date", "today")})


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class DeterminismChecker(Checker):
    """Flag unseeded randomness, OS entropy and wall-clock reads."""

    family = "determinism"

    def __init__(self, scope: tuple[str, ...] = DEFAULT_SCOPE) -> None:
        self.scope = scope

    def _in_scope(self, module: SourceModule) -> bool:
        return any(module.module == package or module.module.startswith(package + ".")
                   for package in self.scope)

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if not self._in_scope(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            finding = self._classify(dotted, node)
            if finding is not None:
                rule, message = finding
                yield Finding(rule=f"{self.family}/{rule}", message=message,
                              path=module.rel, line=node.lineno,
                              col=node.col_offset)

    def _classify(self, dotted: str, call: ast.Call) -> tuple[str, str] | None:
        head, _, tail = dotted.rpartition(".")
        if dotted == "random.seed":
            return ("global-seed",
                    "random.seed() reseeds the interpreter-global RNG; "
                    "construct a seeded random.Random or SeededRNG instead")
        if head == "random" and tail in GLOBAL_RANDOM_FUNCTIONS:
            return ("unseeded-random",
                    f"random.{tail}() draws from the process-global RNG; use a "
                    "SeededRNG fork (repro.util.rng) so one seed replays the run")
        if dotted == "random.Random" and not call.args and not call.keywords:
            return ("unseeded-random",
                    "random.Random() without a seed is seeded from OS entropy; "
                    "pass an explicit seed")
        if head.rpartition(".")[2] in ("uuid", "os") and (
                head.rpartition(".")[2], tail) in ENTROPY_CALLS:
            return ("entropy",
                    f"{dotted}() reads OS entropy and can never replay; derive "
                    "ids from the seeded RNG or a content hash")
        if head == "secrets" or dotted == "secrets":
            return ("entropy",
                    "the secrets module is OS entropy by design; it has no "
                    "place in a deterministic simulation")
        if (head.rpartition(".")[2], tail) in WALL_CLOCK_ATTRS or dotted in (
                "time.time", "time.time_ns"):
            return ("wall-clock",
                    f"{dotted}() reads the wall clock; simulated time comes "
                    "from the cluster clock, profiling from repro.util.timing")
        return None


register_checker(DeterminismChecker)
