"""The lint engine: source loading, suppression comments, checker registry.

The engine is deliberately small: it parses every Python file under the
scanned paths once (:class:`SourceModule` carries the AST, the raw lines and
the per-line suppression table), hands the parsed tree to every registered
checker, and filters the raw findings through the suppression table.  All
repo-specific knowledge lives in the checkers
(:mod:`~repro.devtools.lint.determinism`,
:mod:`~repro.devtools.lint.concurrency`, :mod:`~repro.devtools.lint.knobs`,
:mod:`~repro.devtools.lint.counters`); the engine knows only files, rules
and suppressions.

Suppression syntax
------------------
A violation is silenced by a comment on the offending line, or on a comment
line directly above it::

    value = random.random()  # repro: allow[determinism/unseeded-random] -- bench jitter only

The bracket names a full rule id, a rule family (``determinism``), or
``*``.  The ``-- reason`` clause is mandatory: an allow without a reason is
itself reported (``lint/missing-reason``), and an allow that matched no
finding is reported in ``--strict`` runs (``lint/unused-allow``) so stale
suppressions cannot linger.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

_ALLOW_COMMENT = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]+)\](?:\s*--\s*(?P<reason>\S.*))?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str      #: full rule id, ``family/slug``
    message: str   #: human explanation, specific to the site
    path: str      #: repo-relative posix path
    line: int      #: 1-based line of the offending node
    col: int = 0   #: 0-based column

    @property
    def family(self) -> str:
        """The rule family (the part before the first ``/``)."""
        return self.rule.split("/", 1)[0]

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation."""
        return {"rule": self.rule, "message": self.message,
                "path": self.path, "line": self.line, "col": self.col}


@dataclass
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    path: str
    comment_line: int          #: line the comment is written on
    target_line: int           #: line whose findings it silences
    rules: tuple[str, ...]     #: rule ids / families / ``*``
    reason: str | None
    used: bool = False

    def matches(self, finding: Finding) -> bool:
        """Whether this allow silences ``finding``."""
        if finding.line != self.target_line:
            return False
        return any(rule in ("*", finding.rule, finding.family)
                   for rule in self.rules)


@dataclass
class SourceModule:
    """One parsed Python file plus its suppression table."""

    path: Path                 #: absolute path on disk
    rel: str                   #: repo-relative posix path (finding location)
    module: str                #: dotted module name, e.g. ``repro.hpcsim.cluster``
    text: str
    tree: ast.Module
    suppressions: list[Suppression] = field(default_factory=list)

    @property
    def package(self) -> str:
        """The dotted package holding this module."""
        return self.module.rsplit(".", 1)[0] if "." in self.module else ""


def parse_suppressions(rel: str, text: str) -> list[Suppression]:
    """Extract every allow comment of one file, resolving target lines.

    Comments are found by tokenising, not line regexes, so allow syntax
    quoted inside docstrings or string literals (this module documents it!)
    is never mistaken for a live suppression.  A comment sharing its line
    with code targets that line; a comment on a line of its own targets the
    next line (chains of standalone comments all target the first
    non-comment line below).
    """
    lines = text.splitlines()
    suppressions: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_COMMENT.search(token.string)
        if match is None:
            continue
        rules = tuple(rule.strip() for rule in match.group("rules").split(",")
                      if rule.strip())
        index = token.start[0]
        target = index
        if lines[index - 1][:token.start[1]].strip() == "":
            # Standalone comment: walk down to the first non-comment line.
            target = index + 1
            while target <= len(lines) and lines[target - 1].lstrip().startswith("#"):
                target += 1
        suppressions.append(Suppression(
            path=rel, comment_line=index, target_line=target,
            rules=rules, reason=match.group("reason")))
    return suppressions


def _module_name(path: Path) -> str:
    """Dotted module name of ``path``, anchored at the nearest package root."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts)


def load_module(path: Path, repo_root: Path) -> SourceModule:
    """Parse one file into a :class:`SourceModule` (syntax errors propagate)."""
    text = path.read_text(encoding="utf-8")
    try:
        rel = path.resolve().relative_to(repo_root.resolve()).as_posix()
    except ValueError:  # scanned file outside the repo root (tests)
        rel = path.name
    return SourceModule(path=path, rel=rel, module=_module_name(path),
                        text=text, tree=ast.parse(text, filename=str(path)),
                        suppressions=parse_suppressions(rel, text))


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    seen: set[Path] = set()
    for path in paths:
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


class Checker:
    """Base class of every lint rule family.

    Subclasses override :meth:`check_module` (called once per parsed file)
    and/or :meth:`check_tree` (called once with every parsed file, for
    cross-file invariants such as knob parity).  ``family`` names the rule
    group; every finding a checker emits must use ``family/<slug>`` ids.
    """

    family: str = ""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        """Per-file pass; default: nothing."""
        return ()

    def check_tree(self, modules: list[SourceModule]) -> Iterable[Finding]:
        """Whole-tree pass; default: nothing."""
        return ()


#: Registered checker factories, in registration (= report) order.
_REGISTRY: dict[str, Callable[[], Checker]] = {}


def register_checker(factory: Callable[[], Checker], *, family: str | None = None,
                     ) -> Callable[[], Checker]:
    """Register a checker factory under its family name (import-time hook)."""
    name = family if family is not None else factory().family
    _REGISTRY[name] = factory
    return factory


def registered_families() -> list[str]:
    """The registered rule families, in registration order."""
    _load_builtin_checkers()
    return list(_REGISTRY)


def registry_clear() -> None:
    """Reset the checker registry (test isolation; also the fork-safety
    hook the concurrency family demands of module-level mutable state)."""
    _REGISTRY.clear()


def _load_builtin_checkers() -> None:
    """(Re-)register the built-in rule families.

    Import side effects register them the first time; the explicit loop
    makes the registry self-repairing after :func:`registry_clear`.
    """
    from repro.devtools.lint import (concurrency, counters, determinism, knobs,
                                     rollups)
    for factory in (concurrency.ConcurrencyChecker,
                    counters.CounterRegistryChecker,
                    determinism.DeterminismChecker,
                    knobs.KnobParityChecker,
                    rollups.RollupCounterChecker):
        if factory().family not in _REGISTRY:
            register_checker(factory)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding]            #: surviving (unsuppressed) findings
    suppressed: list[Finding]          #: findings silenced by allow comments
    meta_findings: list[Finding]       #: problems with the allows themselves
    modules_scanned: int
    families: list[str]                #: rule families that ran

    @property
    def ok(self) -> bool:
        """Whether the scanned tree is clean (meta findings count)."""
        return not self.findings and not self.meta_findings

    def all_findings(self) -> list[Finding]:
        """Surviving + meta findings, the set a gate fails on."""
        return sorted(self.findings + self.meta_findings,
                      key=lambda f: (f.path, f.line, f.rule))


def run_lint(paths: Iterable[Path], *, repo_root: Path,
             select: Iterable[str] | None = None,
             checkers: Iterable[Checker] | None = None,
             strict: bool = False) -> LintResult:
    """Lint every Python file under ``paths`` with the selected families.

    ``select`` restricts to the named families (default: all registered);
    ``checkers`` bypasses the registry entirely (unit tests inject
    parameterised checker instances).  ``strict`` additionally reports
    allows that silenced nothing (``lint/unused-allow``).
    """
    if checkers is None:
        _load_builtin_checkers()
        wanted = set(select) if select is not None else None
        if wanted is not None:
            unknown = wanted - set(_REGISTRY)
            if unknown:
                raise ValueError(f"unknown rule families: {sorted(unknown)} "
                                 f"(registered: {sorted(_REGISTRY)})")
        active = [factory() for name, factory in _REGISTRY.items()
                  if wanted is None or name in wanted]
    else:
        active = list(checkers)

    modules = [load_module(path, repo_root) for path in iter_python_files(paths)]
    raw: list[Finding] = []
    for checker in active:
        for module in modules:
            raw.extend(checker.check_module(module))
        raw.extend(checker.check_tree(modules))

    suppression_index: dict[str, list[Suppression]] = {}
    for module in modules:
        suppression_index[module.rel] = module.suppressions

    surviving: list[Finding] = []
    silenced: list[Finding] = []
    for finding in raw:
        allow = next((s for s in suppression_index.get(finding.path, ())
                      if s.matches(finding)), None)
        if allow is not None:
            allow.used = True
            silenced.append(finding)
        else:
            surviving.append(finding)

    meta: list[Finding] = []
    for module in modules:
        for allow in module.suppressions:
            if allow.reason is None:
                meta.append(Finding(
                    rule="lint/missing-reason",
                    message=("allow comment needs a reason: write "
                             f"'# repro: allow[{','.join(allow.rules)}] -- why'"),
                    path=allow.path, line=allow.comment_line))
            if strict and not allow.used:
                meta.append(Finding(
                    rule="lint/unused-allow",
                    message=(f"allow[{','.join(allow.rules)}] silenced nothing "
                             "-- the violation is gone, remove the comment"),
                    path=allow.path, line=allow.comment_line))

    key = lambda f: (f.path, f.line, f.rule)  # noqa: E731 - local sort key
    return LintResult(findings=sorted(surviving, key=key),
                      suppressed=sorted(silenced, key=key),
                      meta_findings=sorted(meta, key=key),
                      modules_scanned=len(modules),
                      families=[checker.family for checker in active])
