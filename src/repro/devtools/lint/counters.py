"""Counter-registry rules: every surfaced statistics key is declared once.

The parallel drivers fold counters key-wise across workers, incarnations
and ingest modes, and the cross-mode equivalence suites pin the folds
"counter-for-counter".  That only holds while every emitter uses the same
vocabulary -- so the vocabulary lives in one place,
:mod:`repro.util.counters`, and these rules keep the emitters and the
registry pointing at each other:

``counters/unregistered``
    A statistics function emits a literal key the registry does not declare.
``counters/unregistered-prefix``
    A statistics function emits a dynamically built key (an f-string) whose
    literal prefix is not a declared namespace -- or has no literal prefix
    at all, which no static check could ever vouch for.
``counters/unused-registration``
    A registry entry no scanned emitter produces: the counter was renamed
    or removed and the registry (and whatever docs cite it) kept the stale
    name.

Scanned emitters are functions named ``statistics``, ``restart_statistics``
or ``fault_counters``; inside them the checker collects string keys of dict
literals (including ``.update({...})`` arguments) and of subscript
assignments (``stats["key"] = ...``).  Key-wise folds over *other* emitters'
dicts (``merged[name] = ...`` with a variable key) are deliberately ignored:
their keys are checked at the emitter that spells them out.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.lint.engine import (Checker, Finding, SourceModule,
                                        register_checker)

#: Function names treated as counter emitters.
STATS_FUNCTIONS = ("statistics", "restart_statistics", "fault_counters")


def _literal_prefix(node: ast.JoinedStr) -> str | None:
    """The leading literal text of an f-string, or ``None`` if it starts dynamic."""
    if node.values and isinstance(node.values[0], ast.Constant):
        value = node.values[0].value
        if isinstance(value, str):
            return value
    return None


class _KeyCollector(ast.NodeVisitor):
    """Collect counter keys emitted inside one statistics function."""

    def __init__(self) -> None:
        self.literal_keys: list[tuple[str, int]] = []
        self.fstring_keys: list[tuple[str | None, int]] = []

    def _collect_key(self, node: ast.expr) -> None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            self.literal_keys.append((node.value, node.lineno))
        elif isinstance(node, ast.JoinedStr):
            self.fstring_keys.append((_literal_prefix(node), node.lineno))

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if key is not None:
                self._collect_key(key)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._collect_key(target.slice)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Subscript):
            self._collect_key(node.target.slice)
        self.generic_visit(node)


class CounterRegistryChecker(Checker):
    """Cross-check statistics emitters against :mod:`repro.util.counters`."""

    family = "counters"

    def __init__(self, registry: dict[str, str] | None = None,
                 prefixes: dict[str, str] | None = None) -> None:
        self._registry = registry
        self._prefixes = prefixes

    def _resolve(self) -> tuple[dict[str, str], dict[str, str]]:
        if self._registry is not None:
            return self._registry, self._prefixes or {}
        from repro.util.counters import COUNTER_PREFIXES, COUNTERS
        return COUNTERS, (self._prefixes if self._prefixes is not None
                          else COUNTER_PREFIXES)

    def check_tree(self, modules: list[SourceModule]) -> Iterable[Finding]:
        registry, prefixes = self._resolve()
        emitted: set[str] = set()
        registry_rel = next(
            (m.rel for m in modules if m.module == "repro.util.counters"),
            "src/repro/util/counters.py")

        for module in modules:
            if module.module == "repro.util.counters":
                continue  # the registry's own docstrings/examples don't emit
            for function in ast.walk(module.tree):
                if not (isinstance(function, (ast.FunctionDef,
                                              ast.AsyncFunctionDef))
                        and function.name in STATS_FUNCTIONS):
                    continue
                collector = _KeyCollector()
                for statement in function.body:
                    collector.visit(statement)
                for key, lineno in collector.literal_keys:
                    emitted.add(key)
                    if key not in registry:
                        yield Finding(
                            rule=f"{self.family}/unregistered",
                            message=(f"{function.name}() emits counter key "
                                     f"'{key}' which is not declared in "
                                     "repro.util.counters.COUNTERS; register "
                                     "it (parallel-mode folds and docs key "
                                     "off the registry)"),
                            path=module.rel, line=lineno)
                for prefix, lineno in collector.fstring_keys:
                    if prefix is None or prefix not in prefixes:
                        shown = "<dynamic>" if prefix is None else f"'{prefix}'"
                        yield Finding(
                            rule=f"{self.family}/unregistered-prefix",
                            message=(f"{function.name}() builds a counter key "
                                     f"with prefix {shown}, which is not a "
                                     "declared namespace in repro.util."
                                     "counters.COUNTER_PREFIXES"),
                            path=module.rel, line=lineno)

        if emitted:  # only meaningful when emitters were in scope
            for key in sorted(set(registry) - emitted):
                yield Finding(
                    rule=f"{self.family}/unused-registration",
                    message=(f"registry declares counter '{key}' but no "
                             "scanned statistics emitter produces it; the "
                             "counter was renamed or removed -- update the "
                             "registry"),
                    path=registry_rel, line=1)


register_checker(CounterRegistryChecker)
