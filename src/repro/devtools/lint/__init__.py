"""AST-based static analysis enforcing the repository's invariants.

Five rule families, each born from a bug that actually shipped here:

* ``determinism`` -- no unseeded randomness, OS entropy or wall-clock reads
  in the one-seed-deterministic packages (:mod:`.determinism`);
* ``concurrency`` -- fork-safe module state, timeout-guarded queue gets,
  no bare or silently swallowed exception handlers (:mod:`.concurrency`);
* ``knobs`` -- CampaignConfig / SirenConfig / consumption / docs knob-table
  parity, checked by dataclass introspection (:mod:`.knobs`);
* ``counters`` -- every surfaced statistics key declared once in
  :mod:`repro.util.counters` (:mod:`.counters`);
* ``rollups`` -- every ``counters``-mapping increment site (the tiered
  store's hot-path bumps, invisible to the statistics-function scan) uses
  a registered literal key (:mod:`.rollups`).

Run ``python -m repro.devtools.lint src/repro`` (or
``scripts/lint_repro.py``); silence a deliberate violation with
``# repro: allow[rule-id] -- reason``.  See ``docs/devtools.md``.
"""

from repro.devtools.lint.engine import (Checker, Finding, LintResult,
                                        registered_families, run_lint)
from repro.devtools.lint.report import render_json, render_text

__all__ = [
    "Checker",
    "Finding",
    "LintResult",
    "registered_families",
    "render_json",
    "render_text",
    "run_lint",
]
