"""Render a :class:`~repro.devtools.lint.engine.LintResult` for humans and CI.

Two formats: a grep-style text report (``path:line: rule: message``) grouped
by rule family for humans, and a JSON document for the CI build artifact.
The JSON shape is stable -- dashboards and the ``static-analysis`` job's
artifact consumers key off it::

    {
      "ok": true,
      "modules_scanned": 93,
      "families": ["determinism", "concurrency", "knobs", "counters"],
      "findings": [{"rule", "message", "path", "line", "col"}, ...],
      "suppressed": [...],
      "meta_findings": [...],
      "counts": {"determinism/unseeded-random": 2, ...}
    }
"""

from __future__ import annotations

import json
from collections import Counter

from repro.devtools.lint.engine import Finding, LintResult


def render_json(result: LintResult) -> str:
    """The stable machine-readable report (CI artifact)."""
    counts = Counter(f.rule for f in result.all_findings())
    payload = {
        "ok": result.ok,
        "modules_scanned": result.modules_scanned,
        "families": result.families,
        "findings": [f.as_dict() for f in result.findings],
        "suppressed": [f.as_dict() for f in result.suppressed],
        "meta_findings": [f.as_dict() for f in result.meta_findings],
        "counts": dict(sorted(counts.items())),
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def _line(finding: Finding) -> str:
    return f"  {finding.path}:{finding.line}: {finding.rule}: {finding.message}"


def render_text(result: LintResult) -> str:
    """The human report: findings grouped by family, then a one-line verdict."""
    lines: list[str] = []
    failing = result.all_findings()
    families = sorted({f.family for f in failing})
    for family in families:
        lines.append(f"[{family}]")
        lines.extend(_line(f) for f in failing if f.family == family)
    if result.suppressed:
        lines.append(f"({len(result.suppressed)} finding(s) suppressed by "
                     "'# repro: allow[...]' comments)")
    verdict = ("clean" if result.ok
               else f"FAILED with {len(failing)} finding(s)")
    lines.append(f"repro lint: {result.modules_scanned} module(s), "
                 f"{len(result.families)} rule families -- {verdict}")
    return "\n".join(lines) + "\n"
