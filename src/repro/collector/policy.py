"""Selective-collection policy (Table 1 of the paper).

Different executable categories warrant different amounts of collection: it
is pointless to fuzzy-hash ``/usr/bin/bash`` on every invocation, while a user
executable gets the full treatment.  The policy is expressed as a small
matrix, constructed by default exactly as printed in Table 1:

==============  =======  =====  ===========  ======
Information     System   User   Interpreter  Script
==============  =======  =====  ===========  ======
File metadata    yes      yes    yes          yes
Libraries        yes      yes    yes          no
Modules          no       yes    no           no
Compilers        no       yes    no           no
Memory map       no       yes    yes          no
File_H           no       yes    no           yes
Strings_H        no       yes    no           no
Symbols_H        no       yes    no           no
==============  =======  =====  ===========  ======
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collector.classify import ExecutableCategory


@dataclass(frozen=True)
class ScopePolicy:
    """What to collect for one executable scope."""

    file_metadata: bool = True
    libraries: bool = False
    modules: bool = False
    compilers: bool = False
    memory_map: bool = False
    file_hash: bool = False
    strings_hash: bool = False
    symbols_hash: bool = False


@dataclass(frozen=True)
class CollectionPolicy:
    """The full per-scope policy plus global switches."""

    system: ScopePolicy = field(default_factory=lambda: ScopePolicy(
        file_metadata=True, libraries=True,
    ))
    user: ScopePolicy = field(default_factory=lambda: ScopePolicy(
        file_metadata=True, libraries=True, modules=True, compilers=True,
        memory_map=True, file_hash=True, strings_hash=True, symbols_hash=True,
    ))
    python_interpreter: ScopePolicy = field(default_factory=lambda: ScopePolicy(
        file_metadata=True, libraries=True, memory_map=True,
    ))
    python_script: ScopePolicy = field(default_factory=lambda: ScopePolicy(
        file_metadata=True, file_hash=True,
    ))
    #: Collect only for SLURM_PROCID == 0 (avoid duplicating data per MPI rank).
    rank_zero_only: bool = True

    def for_category(self, category: ExecutableCategory) -> ScopePolicy:
        """The scope policy applying to a process of the given category."""
        if category is ExecutableCategory.SYSTEM:
            return self.system
        if category is ExecutableCategory.PYTHON:
            return self.python_interpreter
        return self.user

    def should_collect_rank(self, procid: str | int) -> bool:
        """True if a process with this ``SLURM_PROCID`` should be collected."""
        if not self.rank_zero_only:
            return True
        try:
            return int(procid) == 0
        except (TypeError, ValueError):
            # Outside a Slurm step (no SLURM_PROCID) everything is collected.
            return True


#: The paper's policy.
DEFAULT_POLICY = CollectionPolicy()

#: An "always collect everything" policy, used by the overhead ablation bench.
FULL_POLICY = CollectionPolicy(
    system=ScopePolicy(True, True, True, True, True, True, True, True),
    user=ScopePolicy(True, True, True, True, True, True, True, True),
    python_interpreter=ScopePolicy(True, True, True, True, True, True, True, True),
    python_script=ScopePolicy(True, False, False, False, False, True, False, False),
    rank_zero_only=False,
)
