"""Message vocabulary of the collector.

SIREN's UDP messages carry a ``LAYER`` (``SELF`` for the hooked process
itself, ``SCRIPT`` for the Python input script of an interpreter process) and
a ``TYPE`` describing what the ``CONTENT`` field holds.  The enumerations here
are shared by the collector, the transport, the database schema and the
post-processing code so that the string values never drift apart.
"""

from __future__ import annotations

from enum import Enum


class Layer(str, Enum):
    """Which artefact a message describes."""

    SELF = "SELF"       #: the hooked process / its executable
    SCRIPT = "SCRIPT"   #: the Python input script of an interpreter process


class InfoType(str, Enum):
    """The kind of information carried in a message's CONTENT field."""

    PROCINFO = "PROCINFO"        #: process identifiers and executable path
    FILEMETA = "FILEMETA"        #: executable (or script) file metadata
    MODULES = "MODULES"          #: value of LOADEDMODULES
    MODULES_H = "MODULES_H"      #: fuzzy hash of the module list
    OBJECTS = "OBJECTS"          #: loaded shared objects (libraries)
    OBJECTS_H = "OBJECTS_H"      #: fuzzy hash of the object list
    COMPILERS = "COMPILERS"      #: compiler identification strings (.comment)
    COMPILERS_H = "COMPILERS_H"  #: fuzzy hash of the compiler list
    MAPS = "MAPS"                #: memory-mapped regions (/proc/self/maps)
    MAPS_H = "MAPS_H"            #: fuzzy hash of the memory map
    FILE_H = "FILE_H"            #: fuzzy hash of the raw executable / script file
    STRINGS_H = "STRINGS_H"      #: fuzzy hash of the printable strings
    SYMBOLS_H = "SYMBOLS_H"      #: fuzzy hash of the global ELF symbols
    PROCEND = "PROCEND"          #: destructor record (end timestamp, exit code)


#: Message types whose CONTENT can be long and therefore gets chunked.
CHUNKED_TYPES: frozenset[InfoType] = frozenset({
    InfoType.MODULES, InfoType.OBJECTS, InfoType.MAPS, InfoType.COMPILERS,
})


def format_keyvalues(pairs: dict[str, object]) -> str:
    """Render a ``key=value|key=value`` content string (the collector's format)."""
    return "|".join(f"{key}={value}" for key, value in pairs.items())


def parse_keyvalues(content: str) -> dict[str, str]:
    """Parse a ``key=value|key=value`` content string back into a dict."""
    result: dict[str, str] = {}
    for part in content.split("|"):
        if not part:
            continue
        key, _, value = part.partition("=")
        result[key] = value
    return result
