"""Executable-category classification (Section 3.1 of the paper).

Processes are divided by the origin of their executable:

* ``SYSTEM``  -- executables under one of the system directories,
* ``USER``    -- executables anywhere else (project/home/scratch paths),
* ``PYTHON``  -- Python interpreters installed in a system directory (a
  Python interpreter installed in a user directory counts as USER).

Python *scripts* are not processes of their own; the collector handles them as
the ``SCRIPT`` layer of the interpreter process.
"""

from __future__ import annotations

import re
from enum import Enum

from repro.hpcsim.filesystem import is_system_path

#: Executable names that identify a Python interpreter (python, python3, python3.11, ...).
_PYTHON_NAME = re.compile(r"^python(\d+(\.\d+)?)?$")


class ExecutableCategory(str, Enum):
    """The three collection scopes of Table 1 (plus the script pseudo-scope)."""

    SYSTEM = "system"
    USER = "user"
    PYTHON = "python"


def is_python_interpreter(executable: str) -> bool:
    """True if the executable file name looks like a Python interpreter."""
    name = executable.rsplit("/", 1)[-1]
    return bool(_PYTHON_NAME.match(name))


def classify_executable(executable: str) -> ExecutableCategory:
    """Classify an executable path into system / user / python."""
    if is_system_path(executable):
        if is_python_interpreter(executable):
            return ExecutableCategory.PYTHON
        return ExecutableCategory.SYSTEM
    return ExecutableCategory.USER


def classify_process(executable: str, argv: tuple[str, ...] = ()) -> ExecutableCategory:
    """Classify a process by its executable (argv reserved for future use)."""
    del argv  # the paper classifies purely by executable origin
    return classify_executable(executable)


def extract_script_path(argv: tuple[str, ...]) -> str | None:
    """Find the Python script path in an interpreter's argv, if any.

    The first non-option argument after the interpreter is taken as the
    script; ``-c`` / ``-m`` invocations have no script file to hash.
    """
    arguments = list(argv[1:])
    skip_next = False
    for argument in arguments:
        if skip_next:
            skip_next = False
            continue
        if argument in ("-c", "-m"):
            return None
        if argument in ("-W", "-X"):
            skip_next = True
            continue
        if argument.startswith("-"):
            continue
        return argument
    return None
