"""Fuzzy hashing of collected artefacts.

SIREN computes SSDeep fuzzy hashes of

* the raw executable file (``FILE_H``),
* its printable strings (``STRINGS_H``),
* its global-scope ELF symbols (``SYMBOLS_H``),
* the Python input script (``SCRIPT_H`` -- stored as the script layer's
  ``FILE_H``), and
* each collected list (modules, compilers, shared objects, memory map), so
  that those remain comparable even when parts are lost in transit.

Hashing an executable is by far the most expensive part of collection, so
:class:`ArtifactHasher` memoises per ``(path, mtime)`` -- re-executing the same
unchanged binary thousands of times (the common case on an HPC system) costs
one hash, not thousands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf.reader import ELFFile, is_elf
from repro.elf.strings import strings_blob
from repro.elf.symbols import nm_listing
from repro.hashing.ssdeep import FuzzyHasher
from repro.hpcsim.filesystem import VirtualFilesystem


@dataclass(frozen=True)
class ExecutableHashes:
    """The three per-executable fuzzy hashes."""

    file_hash: str
    strings_hash: str
    symbols_hash: str


@dataclass
class ArtifactHasher:
    """Compute (and cache) the fuzzy hashes the collector needs."""

    filesystem: VirtualFilesystem
    hasher: FuzzyHasher = field(default_factory=FuzzyHasher)
    cache_enabled: bool = True
    _cache: dict[tuple[str, int], ExecutableHashes] = field(default_factory=dict)
    _list_cache: dict[str, str] = field(default_factory=dict)
    list_cache_limit: int = 100_000
    hashes_computed: int = 0
    cache_hits: int = 0

    # ------------------------------------------------------------------ #
    # executables
    # ------------------------------------------------------------------ #
    def executable_hashes(self, path: str) -> ExecutableHashes:
        """FILE_H / STRINGS_H / SYMBOLS_H for the executable at ``path``."""
        metadata = self.filesystem.stat(path)
        key = (path, metadata.mtime)
        if self.cache_enabled:
            cached = self._cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached

        content = self.filesystem.read(path)
        file_hash = str(self.hasher.hash(content))
        strings_hash = str(self.hasher.hash_text(strings_blob(content)))
        if is_elf(content):
            symbols_hash = str(self.hasher.hash_text(nm_listing(ELFFile(content))))
        else:
            symbols_hash = str(self.hasher.hash_text(""))
        result = ExecutableHashes(file_hash=file_hash, strings_hash=strings_hash,
                                  symbols_hash=symbols_hash)
        self.hashes_computed += 1
        if self.cache_enabled:
            self._cache[key] = result
        return result

    def script_hash(self, path: str) -> str:
        """Fuzzy hash of a (Python) script file."""
        metadata = self.filesystem.stat(path)
        key = (path, metadata.mtime)
        if self.cache_enabled:
            cached = self._cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached.file_hash
        digest = str(self.hasher.hash(self.filesystem.read(path)))
        self.hashes_computed += 1
        if self.cache_enabled:
            self._cache[key] = ExecutableHashes(digest, "", "")
        return digest

    # ------------------------------------------------------------------ #
    # lists
    # ------------------------------------------------------------------ #
    def list_hash(self, items: list[str] | str) -> str:
        """Fuzzy hash of a collected list (modules, objects, compilers, maps).

        The same list contents recur for thousands of processes (every ``bash``
        in the same environment loads the same objects), so results are
        memoised by content up to :attr:`list_cache_limit` distinct entries.
        """
        text = items if isinstance(items, str) else "\n".join(items)
        if self.cache_enabled:
            cached = self._list_cache.get(text)
            if cached is not None:
                self.cache_hits += 1
                return cached
        digest = str(self.hasher.hash_text(text))
        self.hashes_computed += 1
        if self.cache_enabled and len(self._list_cache) < self.list_cache_limit:
            self._list_cache[text] = digest
        return digest

    def clear_cache(self) -> None:
        """Drop the memoisation caches."""
        self._cache.clear()
        self._list_cache.clear()
