"""Fuzzy hashing of collected artefacts.

SIREN computes SSDeep fuzzy hashes of

* the raw executable file (``FILE_H``),
* its printable strings (``STRINGS_H``),
* its global-scope ELF symbols (``SYMBOLS_H``),
* the Python input script (``SCRIPT_H`` -- stored as the script layer's
  ``FILE_H``), and
* each collected list (modules, compilers, shared objects, memory map), so
  that those remain comparable even when parts are lost in transit.

Hashing an executable is by far the most expensive part of collection, so
:class:`ArtifactHasher` memoises aggressively, in two tiers:

* per ``(path, mtime)`` -- re-executing the same unchanged binary thousands
  of times (the common case on an HPC system) costs one hash, not thousands;
  executables and scripts use *separate* caches so a binary first seen as a
  script never short-circuits the executable hashes (or vice versa);
* per *content* -- an FNV-64 content key recognises byte-identical binaries
  reached through different paths or mtimes (the classic renamed ``a.out``),
  so they hash exactly once per campaign.

List hashes are memoised by content in a bounded LRU (the same module and
library lists recur for thousands of processes).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.elf.reader import ELFFile, is_elf
from repro.elf.strings import strings_blob
from repro.elf.symbols import nm_listing
from repro.hashing.fnv import fnv1a_64
from repro.hashing.ssdeep import FuzzyHasher
from repro.hpcsim.filesystem import VirtualFilesystem


@dataclass(frozen=True)
class ExecutableHashes:
    """The three per-executable fuzzy hashes."""

    file_hash: str
    strings_hash: str
    symbols_hash: str


def _content_key(content: bytes) -> tuple[int, int]:
    """Content-addressed cache key: payload length + FNV-64 of the bytes.

    Computing the key costs roughly half an engine FILE_H hash, while a
    content hit saves the full FILE_H + STRINGS_H + SYMBOLS_H pipeline
    (several times the key cost), so the cache wins whenever binaries repeat
    across paths/mtimes -- the normal HPC case, and what the campaign bench
    measures.  For a corpus of almost entirely unique binaries, turn it off
    (``content_cache_enabled=False`` / ``hash_content_cache=False``) to skip
    the key entirely.
    """
    return len(content), fnv1a_64(content)


@dataclass
class ArtifactHasher:
    """Compute (and cache) the fuzzy hashes the collector needs."""

    filesystem: VirtualFilesystem
    hasher: FuzzyHasher = field(default_factory=FuzzyHasher)
    cache_enabled: bool = True
    #: Second cache tier keyed on content (length + FNV-64): identical bytes
    #: under different paths/mtimes hash once.
    content_cache_enabled: bool = True
    #: Fanned out to :meth:`FuzzyHasher.hash_many` for the three per-executable
    #: payloads; > 1 engages a process pool (multi-core hosts only).
    hash_concurrency: int = 1
    list_cache_limit: int = 100_000
    hashes_computed: int = 0
    cache_hits: int = 0
    content_cache_hits: int = 0
    _exe_cache: dict[tuple[str, int], ExecutableHashes] = field(default_factory=dict)
    _script_cache: dict[tuple[str, int], str] = field(default_factory=dict)
    _exe_content_cache: dict[tuple[int, int], ExecutableHashes] = field(default_factory=dict)
    _script_content_cache: dict[tuple[int, int], str] = field(default_factory=dict)
    _list_cache: OrderedDict[str, str] = field(default_factory=OrderedDict)

    # ------------------------------------------------------------------ #
    # executables
    # ------------------------------------------------------------------ #
    def executable_hashes(self, path: str) -> ExecutableHashes:
        """FILE_H / STRINGS_H / SYMBOLS_H for the executable at ``path``."""
        metadata = self.filesystem.stat(path)
        key = (path, metadata.mtime)
        if self.cache_enabled:
            cached = self._exe_cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached

        content = self.filesystem.read(path)
        use_content = self.cache_enabled and self.content_cache_enabled
        ckey = _content_key(content) if use_content else None
        if ckey is not None:
            cached = self._exe_content_cache.get(ckey)
            if cached is not None:
                self.content_cache_hits += 1
                if self.cache_enabled:
                    self._exe_cache[key] = cached
                return cached

        payloads = [content, strings_blob(content).encode("utf-8")]
        if is_elf(content):
            payloads.append(nm_listing(ELFFile(content)).encode("utf-8"))
        else:
            payloads.append(b"")
        digests = self.hasher.hash_many(payloads, concurrency=self.hash_concurrency)
        result = ExecutableHashes(file_hash=str(digests[0]),
                                  strings_hash=str(digests[1]),
                                  symbols_hash=str(digests[2]))
        self.hashes_computed += 1
        if self.cache_enabled:
            self._exe_cache[key] = result
        if ckey is not None:
            self._exe_content_cache[ckey] = result
        return result

    def script_hash(self, path: str) -> str:
        """Fuzzy hash of a (Python) script file."""
        metadata = self.filesystem.stat(path)
        key = (path, metadata.mtime)
        if self.cache_enabled:
            cached = self._script_cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached

        content = self.filesystem.read(path)
        use_content = self.cache_enabled and self.content_cache_enabled
        ckey = _content_key(content) if use_content else None
        if ckey is not None:
            cached = self._script_content_cache.get(ckey)
            if cached is None:
                # A script byte-identical to an already-hashed executable can
                # reuse its FILE_H (the script digest is the raw-file hash).
                executable = self._exe_content_cache.get(ckey)
                cached = executable.file_hash if executable is not None else None
            if cached is not None:
                self.content_cache_hits += 1
                if self.cache_enabled:
                    self._script_cache[key] = cached
                return cached

        digest = str(self.hasher.hash(content))
        self.hashes_computed += 1
        if self.cache_enabled:
            self._script_cache[key] = digest
        if ckey is not None:
            self._script_content_cache[ckey] = digest
        return digest

    # ------------------------------------------------------------------ #
    # lists
    # ------------------------------------------------------------------ #
    def list_hash(self, items: list[str] | str) -> str:
        """Fuzzy hash of a collected list (modules, objects, compilers, maps).

        The same list contents recur for thousands of processes (every ``bash``
        in the same environment loads the same objects), so results are
        memoised by content in an LRU bounded at :attr:`list_cache_limit`
        entries -- once full, the least recently used entry is evicted.
        """
        text = items if isinstance(items, str) else "\n".join(items)
        if self.cache_enabled:
            cached = self._list_cache.get(text)
            if cached is not None:
                self.cache_hits += 1
                self._list_cache.move_to_end(text)
                return cached
        digest = str(self.hasher.hash_text(text))
        self.hashes_computed += 1
        if self.cache_enabled:
            self._list_cache[text] = digest
            if len(self._list_cache) > self.list_cache_limit:
                self._list_cache.popitem(last=False)
        return digest

    def clear_cache(self) -> None:
        """Drop all memoisation tiers."""
        self._exe_cache.clear()
        self._script_cache.clear()
        self._exe_content_cache.clear()
        self._script_content_cache.clear()
        self._list_cache.clear()

    def close(self) -> None:
        """Release hashing resources (the ``hash_many`` process pool).

        Caches survive; hashing keeps working afterwards (a later concurrent
        batch simply respawns the pool).
        """
        self.hasher.close()
