"""The SIREN collector -- the Python equivalent of ``siren.so``.

This is the paper's primary contribution: a process-level data-collection
library injected via ``LD_PRELOAD`` whose constructor/destructor gather

* job and process identifiers (Slurm variables, PID/PPID/UID/GID, hostname),
* executable file metadata and an xxHash of the executable path,
* loaded modules, shared objects, compiler identification strings and the
  process memory map,
* SSDeep fuzzy hashes of the raw executable, its printable strings, its
  global ELF symbols, and of each collected list,
* and, for Python interpreters, metadata plus a fuzzy hash of the input
  script and the memory-mapped files that reveal imported packages,

then ship everything as chunked UDP messages to a central receiver.

Collection is *selective* per executable category (Table 1 of the paper) and
restricted to ``SLURM_PROCID == 0`` to avoid duplicating data across MPI
ranks.  Failures inside the collector never propagate into the hooked
process.
"""

from repro.collector.classify import ExecutableCategory, classify_process
from repro.collector.fuzzy import ArtifactHasher, ExecutableHashes
from repro.collector.hooks import SirenCollector
from repro.collector.policy import CollectionPolicy, DEFAULT_POLICY
from repro.collector.records import InfoType, Layer

__all__ = [
    "ArtifactHasher",
    "CollectionPolicy",
    "DEFAULT_POLICY",
    "ExecutableCategory",
    "ExecutableHashes",
    "InfoType",
    "Layer",
    "SirenCollector",
    "classify_process",
]
