"""The ``siren.so`` constructor/destructor logic.

:class:`SirenCollector` implements the :class:`~repro.hpcsim.process.PreloadHook`
protocol.  When the simulated dynamic linker injects the SIREN library into a
process (because the ``siren`` module put it on ``LD_PRELOAD``), the process
runtime calls :meth:`on_process_start` at process start -- the equivalent of
the library constructor -- and :meth:`on_process_end` at termination.

The constructor classifies the process, applies the Table 1 policy, gathers
the requested information and emits one UDP message per information type
(chunked where necessary) through the fire-and-forget sender.  Every optional
section is individually guarded: a failure to parse the executable or hash the
script only loses that section, never the rest, and never the user process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collector.classify import (
    ExecutableCategory,
    classify_process,
    extract_script_path,
    is_python_interpreter,
)
from repro.collector.fuzzy import ArtifactHasher
from repro.collector.policy import DEFAULT_POLICY, CollectionPolicy
from repro.collector.records import InfoType, Layer, format_keyvalues
from repro.elf.reader import ELFFile, is_elf
from repro.hashing.ssdeep import FuzzyHasher
from repro.hashing.xxhash import xxh128_hex
from repro.hpcsim.filesystem import VirtualFilesystem
from repro.hpcsim.process import ProcessContext
from repro.transport.messages import UDPMessage
from repro.transport.sender import UDPSender
from repro.util.timing import NULL_TIMER


@dataclass
class SirenCollector:
    """Process-level data collection injected via ``LD_PRELOAD``."""

    filesystem: VirtualFilesystem
    sender: UDPSender
    library_path: str
    policy: CollectionPolicy = field(default_factory=lambda: DEFAULT_POLICY)
    #: Hashing knobs, forwarded to the :class:`ArtifactHasher` /
    #: :class:`FuzzyHasher` pair: ``hash_engine`` selects the single-pass
    #: streaming engine (digests are identical either way), ``hash_content_cache``
    #: recognises byte-identical binaries across paths/mtimes, and
    #: ``hash_concurrency > 1`` fans per-executable hashing out over a
    #: process pool.
    hash_engine: bool = True
    hash_content_cache: bool = True
    hash_concurrency: int = 1
    hasher: ArtifactHasher = field(init=False)
    processes_collected: int = 0
    processes_skipped: int = 0
    section_errors: int = 0

    # Stage stopwatch (plain class attribute, not a field: assign an enabled
    # StageTimer on an instance to profile constructor/destructor cost).
    timer = NULL_TIMER

    def __post_init__(self) -> None:
        self.hasher = ArtifactHasher(
            self.filesystem,
            hasher=FuzzyHasher(use_engine=self.hash_engine),
            content_cache_enabled=self.hash_content_cache,
            hash_concurrency=self.hash_concurrency,
        )

    # ------------------------------------------------------------------ #
    # constructor
    # ------------------------------------------------------------------ #
    def on_process_start(self, context: ProcessContext) -> None:
        """Collect and send all policy-selected information for this process."""
        with self.timer.section("collect.start"):
            self._collect_start(context)

    def _collect_start(self, context: ProcessContext) -> None:
        if not self.policy.should_collect_rank(context.slurm_procid):
            self.processes_skipped += 1
            return
        category = classify_process(context.executable, context.argv)
        scope = self.policy.for_category(category)
        messages: list[UDPMessage] = []
        header = self._header(context, Layer.SELF)

        messages.append(header(InfoType.PROCINFO, format_keyvalues({
            "pid": context.pid, "ppid": context.ppid, "uid": context.uid,
            "gid": context.gid, "exe": context.executable, "category": category.value,
        })))

        if scope.file_metadata:
            self._guard(messages, lambda: header(
                InfoType.FILEMETA, self._file_metadata(context.executable)))
        if scope.libraries:
            objects = "\n".join(context.loaded_objects)
            messages.append(header(InfoType.OBJECTS, objects))
            self._guard(messages, lambda: header(
                InfoType.OBJECTS_H, self.hasher.list_hash(objects)))
        if scope.modules:
            modules = context.loaded_modules
            messages.append(header(InfoType.MODULES, modules))
            self._guard(messages, lambda: header(
                InfoType.MODULES_H, self.hasher.list_hash(modules)))
        if scope.compilers:
            self._guard(messages, lambda: self._compiler_messages(header, context))
        if scope.memory_map:
            maps_text = context.maps_text()
            messages.append(header(InfoType.MAPS, maps_text))
            self._guard(messages, lambda: header(
                InfoType.MAPS_H, self.hasher.list_hash(maps_text)))
        if scope.file_hash or scope.strings_hash or scope.symbols_hash:
            self._guard(messages, lambda: self._executable_hash_messages(header, context, scope))

        # Python input script (the SCRIPT layer) --------------------------- #
        if is_python_interpreter(context.executable):
            self._guard(messages, lambda: self._script_messages(context))

        self.sender.send_all([message for message in messages if message is not None])
        self.processes_collected += 1

    def close(self) -> None:
        """Release hashing resources (worker pool when ``hash_concurrency > 1``).

        Collection keeps working after a close; campaigns call this once the
        job stream ends so concurrent deployments never leak worker processes.
        """
        self.hasher.close()

    # ------------------------------------------------------------------ #
    # destructor
    # ------------------------------------------------------------------ #
    def on_process_end(self, context: ProcessContext) -> None:
        """Send the destructor record (end timestamp, exit code)."""
        with self.timer.section("collect.end"):
            if not self.policy.should_collect_rank(context.slurm_procid):
                return
            header = self._header(context, Layer.SELF)
            self.sender.send(header(InfoType.PROCEND, format_keyvalues({
                "end_time": context.end_time, "exit_code": context.exit_code,
            })))

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _header(self, context: ProcessContext, layer: Layer):
        """Return a message factory pre-filled with this process's header fields."""
        path_hash = xxh128_hex(context.executable)

        def make(info_type: InfoType, content: str,
                 override_layer: Layer | None = None) -> UDPMessage:
            return UDPMessage(
                jobid=context.slurm_job_id,
                stepid=context.slurm_step_id,
                pid=context.pid,
                path_hash=path_hash,
                host=context.hostname,
                time=context.start_time,
                layer=override_layer or layer,
                info_type=info_type,
                content=content,
            )

        return make

    def _guard(self, messages: list[UDPMessage], producer) -> None:
        """Run one collection section; on failure count it and move on."""
        try:
            result = producer()
        except Exception:  # noqa: BLE001 - graceful degradation by design
            self.section_errors += 1
            return
        if result is None:
            return
        if isinstance(result, list):
            messages.extend(result)
        else:
            messages.append(result)

    def _file_metadata(self, path: str) -> str:
        metadata = self.filesystem.stat(path)
        return format_keyvalues(metadata.as_dict())

    def _compiler_messages(self, header, context: ProcessContext) -> list[UDPMessage]:
        content = self.filesystem.read(context.executable)
        if not is_elf(content):
            return []
        comments = ";".join(ELFFile(content).comment_strings())
        return [
            header(InfoType.COMPILERS, comments),
            header(InfoType.COMPILERS_H, self.hasher.list_hash(comments)),
        ]

    def _executable_hash_messages(self, header, context: ProcessContext, scope) -> list[UDPMessage]:
        with self.timer.section("collect.hash"):
            hashes = self.hasher.executable_hashes(context.executable)
        messages: list[UDPMessage] = []
        if scope.file_hash:
            messages.append(header(InfoType.FILE_H, hashes.file_hash))
        if scope.strings_hash:
            messages.append(header(InfoType.STRINGS_H, hashes.strings_hash))
        if scope.symbols_hash:
            messages.append(header(InfoType.SYMBOLS_H, hashes.symbols_hash))
        return messages

    def _script_messages(self, context: ProcessContext) -> list[UDPMessage]:
        script = context.python_script or extract_script_path(context.argv)
        if not script or not self.filesystem.exists(script):
            return []
        scope = self.policy.python_script
        header = self._header(context, Layer.SCRIPT)
        messages: list[UDPMessage] = [
            header(InfoType.PROCINFO, format_keyvalues({"script": script}),
                   override_layer=Layer.SCRIPT),
        ]
        if scope.file_metadata:
            messages.append(header(InfoType.FILEMETA, self._file_metadata(script),
                                   override_layer=Layer.SCRIPT))
        if scope.file_hash:
            with self.timer.section("collect.hash"):
                script_hash = self.hasher.script_hash(script)
            messages.append(header(InfoType.FILE_H, script_hash,
                                   override_layer=Layer.SCRIPT))
        return messages
