"""Seeded, deterministic fault injection for the ingest pipeline.

The paper's collection tier runs unattended on busy clusters, so the
pipeline has to *survive* runtime faults, not merely detect them.  This
package supplies the reproducible chaos that proves it does:

* :mod:`repro.faults.plan` -- :class:`FaultPlan`, a frozen description of
  every injected fault (channel drop/duplicate/reorder/corrupt/truncate/
  jitter, store transient-error/disk-full, worker SIGKILL/stall) plus one
  master seed; :func:`preset_plans` names the degradation-curve presets the
  fault bench sweeps;
* :mod:`repro.faults.channel` -- :class:`FaultyChannel`, a channel decorator
  running every datagram through the seeded fault pipeline;
* :mod:`repro.faults.store` -- :class:`StoreFaultInjector`, raising seeded
  ``sqlite3.OperationalError`` faults through the store's injection hook so
  the retry-with-jitter write paths are exercised for real.

Worker faults need no machinery here: a :class:`WorkerFaultProfile` rides
into the shard worker process
(:class:`~repro.ingest.procworkers.ProcessShardPool`), which kills or stalls
itself at the configured batch count -- and the supervisor heals it.

Everything derives from the plan seed via stable stream tags, so a chaos
failure reproduces from the plan alone.  Wire a plan end to end with the
``fault_plan`` knob on :class:`~repro.workload.campaign.CampaignConfig` /
:class:`~repro.core.config.SirenConfig`.
"""

from repro.faults.channel import FaultyChannel
from repro.faults.plan import (
    ChannelFaultProfile,
    FaultPlan,
    StoreFaultProfile,
    WorkerFaultProfile,
    preset_plans,
)
from repro.faults.store import StoreFaultInjector

__all__ = [
    "ChannelFaultProfile",
    "FaultPlan",
    "FaultyChannel",
    "StoreFaultInjector",
    "StoreFaultProfile",
    "WorkerFaultProfile",
    "preset_plans",
]
