"""A channel decorator that injects seeded transport faults.

:class:`FaultyChannel` sits between the sender and any real channel
(in-memory, lossy, socket): every datagram passes through the fault pipeline
-- drop, duplicate, per-copy corruption/truncation, then scheduling
(reordering holdback or jitter bursting) -- before reaching the inner
channel's subscribers.  All decisions come from one :class:`SeededRNG`
derived from the plan seed, so a chaos run replays bit-for-bit.

Scheduling faults hold datagrams back, so a stream passed through a plan
with ``reorder_rate``/``jitter_rate`` must be :meth:`flush`\\ ed at end of
stream (the campaign runner does this before finalizing ingest) -- exactly
like a real network finally delivering its queued packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.plan import ChannelFaultProfile, FaultPlan
from repro.transport.channel import Channel, DatagramCallback, InMemoryChannel
from repro.util.rng import SeededRNG


@dataclass
class FaultyChannel:
    """Wrap ``inner`` so every datagram runs the fault pipeline first."""

    plan: FaultPlan = field(default_factory=FaultPlan)
    inner: Channel = field(default_factory=InMemoryChannel)

    # channel-compatible counters
    datagrams_sent: int = 0
    bytes_sent: int = 0
    datagrams_dropped: int = 0
    # fault counters
    duplicated: int = 0
    corrupted: int = 0
    truncated: int = 0
    reordered: int = 0
    jitter_bursts: int = 0

    _rng: SeededRNG = field(init=False, repr=False)
    _profile: ChannelFaultProfile = field(init=False, repr=False)
    #: Reordered datagrams in flight: [sends-remaining, datagram] pairs.
    _held: list = field(init=False, default_factory=list, repr=False)
    _burst_buffer: list = field(init=False, default_factory=list, repr=False)
    _burst_remaining: int = 0

    def __post_init__(self) -> None:
        self._rng = self.plan.channel_rng()
        self._profile = self.plan.channel

    # ------------------------------------------------------------------ #
    # Channel protocol
    # ------------------------------------------------------------------ #
    def subscribe(self, callback: DatagramCallback) -> None:
        """Register a delivery callback on the inner channel."""
        self.inner.subscribe(callback)

    def send(self, datagram: bytes) -> bool:
        """Run one datagram through the fault pipeline; False if dropped."""
        profile, rng = self._profile, self._rng
        self.datagrams_sent += 1
        self.bytes_sent += len(datagram)

        dropped = profile.drop_rate > 0 and rng.random() < profile.drop_rate
        if dropped:
            self.datagrams_dropped += 1
        else:
            copies = [datagram]
            if profile.duplicate_rate > 0 and rng.random() < profile.duplicate_rate:
                copies.append(datagram)
                self.duplicated += 1
            for copy in copies:
                copy = self._maybe_mangle(copy)
                if profile.reorder_rate > 0 and rng.random() < profile.reorder_rate:
                    self.reordered += 1
                    self._held.append([rng.randint(1, profile.reorder_depth), copy])
                else:
                    self._deliver(copy)
            if (profile.jitter_rate > 0 and self._burst_remaining == 0
                    and rng.random() < profile.jitter_rate):
                # A delay spike: buffer everything for the next jitter_depth
                # sends, then release the burst in order.
                self.jitter_bursts += 1
                self._burst_remaining = profile.jitter_depth
        self._tick()
        return not dropped

    # ------------------------------------------------------------------ #
    # pipeline stages
    # ------------------------------------------------------------------ #
    def _maybe_mangle(self, datagram: bytes) -> bytes:
        """Apply corruption and truncation draws to one delivery copy."""
        profile, rng = self._profile, self._rng
        if (profile.corrupt_rate > 0 and len(datagram) > 0
                and rng.random() < profile.corrupt_rate):
            self.corrupted += 1
            mutable = bytearray(datagram)
            for _ in range(rng.randint(1, 3)):
                mutable[rng.randint(0, len(mutable) - 1)] ^= 1 << rng.randint(0, 7)
            datagram = bytes(mutable)
        if (profile.truncate_rate > 0 and len(datagram) > 0
                and rng.random() < profile.truncate_rate):
            self.truncated += 1
            datagram = datagram[:rng.randint(0, len(datagram) - 1)]
        return datagram

    def _deliver(self, datagram: bytes) -> None:
        if self._burst_remaining > 0:
            self._burst_buffer.append(datagram)
        else:
            self.inner.send(datagram)

    def _tick(self) -> None:
        """One send elapsed: age holdbacks, release what is due."""
        if self._held:
            due: list[bytes] = []
            still_held = []
            for entry in self._held:
                entry[0] -= 1
                (due.append(entry[1]) if entry[0] <= 0 else still_held.append(entry))
            self._held = still_held
            for datagram in due:
                self._deliver(datagram)
        if self._burst_remaining > 0:
            self._burst_remaining -= 1
            if self._burst_remaining == 0 and self._burst_buffer:
                buffered, self._burst_buffer = self._burst_buffer, []
                for datagram in buffered:
                    self.inner.send(datagram)

    # ------------------------------------------------------------------ #
    # end of stream / reporting
    # ------------------------------------------------------------------ #
    def flush(self) -> int:
        """Deliver everything still held back; returns how many datagrams."""
        released = 0
        while self._held:
            released += 1
            self.inner.send(self._held.pop(0)[1])
        self._burst_remaining = 0
        while self._burst_buffer:
            released += 1
            self.inner.send(self._burst_buffer.pop(0))
        return released

    @property
    def in_flight(self) -> int:
        """Datagrams currently held by reordering or a jitter burst."""
        return len(self._held) + len(self._burst_buffer)

    @property
    def observed_loss_rate(self) -> float:
        """Fraction of datagrams dropped by the fault pipeline so far."""
        if self.datagrams_sent == 0:
            return 0.0
        return self.datagrams_dropped / self.datagrams_sent

    def fault_counters(self) -> dict[str, int]:
        """Everything the pipeline did, for benches and campaign results."""
        return {
            "datagrams_sent": self.datagrams_sent,
            "dropped": self.datagrams_dropped,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
            "truncated": self.truncated,
            "reordered": self.reordered,
            "jitter_bursts": self.jitter_bursts,
        }
