"""The :class:`FaultPlan`: one seeded, declarative description of a chaos run.

Every fault the injection layer can produce -- datagram drop / duplication /
reordering / corruption / truncation / jitter at the channel, transient
``OperationalError`` and disk-full at the store, SIGKILL / stall at a shard
worker -- is configured here as plain frozen dataclasses plus one master
seed.  Injection sites derive their RNG streams from that seed with stable
tags (:func:`repro.util.rng.derive_seed`), so two runs of the same plan over
the same traffic inject *exactly* the same faults at the same points: a
chaos failure reproduces with nothing more than the plan and the campaign
seed.

The plan is pure data.  The active machinery lives next door:
:class:`~repro.faults.channel.FaultyChannel` applies the channel profile,
:class:`~repro.faults.store.StoreFaultInjector` plugs into
:attr:`~repro.db.store.MessageStore.fault_injector`, and the worker profiles
ride into :mod:`repro.ingest.procworkers` shard processes, which kill or
stall themselves at the configured batch counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ReproError
from repro.util.rng import SeededRNG, derive_seed


@dataclass(frozen=True)
class ChannelFaultProfile:
    """Datagram-level faults applied between the sender and the ingest front.

    All rates are independent per-datagram probabilities.  Faults compose in
    a fixed order -- drop, duplicate, then per-copy corrupt/truncate, then
    scheduling (reorder/jitter) -- so one profile can describe a genuinely
    hostile link.

    ``reorder_rate`` holds a datagram back and re-injects it after 1 to
    ``reorder_depth`` later sends (a displaced datagram -- the fault the
    streaming consolidator's idle grace has to absorb).  ``jitter_rate``
    instead starts buffering *everything* for ``jitter_depth`` sends and then
    releases the burst in order: delay spikes without reordering.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0     #: flip 1-3 random bits somewhere in the datagram
    truncate_rate: float = 0.0    #: cut the datagram to a random proper prefix
    reorder_rate: float = 0.0
    reorder_depth: int = 3
    jitter_rate: float = 0.0
    jitter_depth: int = 8

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "corrupt_rate",
                     "truncate_rate", "reorder_rate", "jitter_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ReproError(f"{name} must be a probability in [0, 1]")
        if self.reorder_depth < 1 or self.jitter_depth < 1:
            raise ReproError("reorder/jitter depths must be at least 1")

    @property
    def active(self) -> bool:
        """Whether any channel fault is actually switched on."""
        return any((self.drop_rate, self.duplicate_rate, self.corrupt_rate,
                    self.truncate_rate, self.reorder_rate, self.jitter_rate))

    @property
    def order_preserving(self) -> bool:
        """True when the profile can never displace a datagram.

        Order-preserving profiles keep streaming ingest record-for-record
        identical to the batch post-pass over the surviving message set;
        reordering can push a straggler past the consolidator's idle grace,
        which the honest ``late_messages`` counter then surfaces.
        """
        return self.reorder_rate == 0.0


@dataclass(frozen=True)
class StoreFaultProfile:
    """Store-level faults, injected through ``MessageStore.fault_injector``.

    ``error_rate`` triggers a transient ``database is locked``
    :class:`sqlite3.OperationalError` on a write, ``error_burst`` times in a
    row (the retry path must outlast the burst).  ``disk_full_after`` makes
    every write from the N-th onward fail with the non-transient
    ``database or disk is full`` error, which retries correctly refuse to
    absorb.
    """

    error_rate: float = 0.0
    error_burst: int = 1
    disk_full_after: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise ReproError("error_rate must be a probability in [0, 1]")
        if self.error_burst < 1:
            raise ReproError("error_burst must be at least 1")
        if self.disk_full_after is not None and self.disk_full_after < 0:
            raise ReproError("disk_full_after may not be negative")

    @property
    def active(self) -> bool:
        """Whether any store fault is actually switched on."""
        return self.error_rate > 0.0 or self.disk_full_after is not None


@dataclass(frozen=True)
class WorkerFaultProfile:
    """A deterministic mishap for one shard worker process.

    ``kill_after_batches`` makes the worker hard-exit (as if SIGKILLed)
    after consuming that many batch commands; ``stall_after_batches`` makes
    it sleep ``stall_seconds`` once instead.  By default the fault fires
    only in the worker's *first* incarnation, so a supervised restart heals
    the run; ``repeat=True`` re-arms it in every incarnation to exhaust the
    restart budget on purpose.
    """

    shard: int = 0
    kill_after_batches: int | None = None
    stall_after_batches: int | None = None
    stall_seconds: float = 5.0
    repeat: bool = False

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ReproError("worker fault shard index may not be negative")
        for name in ("kill_after_batches", "stall_after_batches"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ReproError(f"{name} must be at least 1 when set")
        if self.stall_seconds < 0:
            raise ReproError("stall_seconds may not be negative")


@dataclass(frozen=True)
class FaultPlan:
    """Everything a chaos run injects, reproducible from one seed."""

    seed: int = 7
    channel: ChannelFaultProfile = field(default_factory=ChannelFaultProfile)
    store: StoreFaultProfile = field(default_factory=StoreFaultProfile)
    workers: tuple[WorkerFaultProfile, ...] = ()

    @property
    def active(self) -> bool:
        """Whether the plan injects anything at all."""
        return self.channel.active or self.store.active or bool(self.workers)

    def channel_rng(self) -> SeededRNG:
        """The channel injection stream (stable across runs and processes)."""
        return SeededRNG(derive_seed(self.seed, "faults", "channel"))

    def store_rng(self) -> SeededRNG:
        """The store injection stream."""
        return SeededRNG(derive_seed(self.seed, "faults", "store"))

    def worker_fault_for(self, shard: int) -> WorkerFaultProfile | None:
        """The fault profile aimed at ``shard``, if any."""
        for profile in self.workers:
            if profile.shard == shard:
                return profile
        return None


def preset_plans(seed: int = 7) -> dict[str, FaultPlan]:
    """The named degradation-curve presets swept by ``bench_udp_loss``.

    Keyed by preset name; every preset derives its injection streams from
    ``seed`` so the whole sweep is reproducible end to end.
    """
    channel = lambda **kw: FaultPlan(seed=seed, channel=ChannelFaultProfile(**kw))
    return {
        "baseline": FaultPlan(seed=seed),
        "loss-1pct": channel(drop_rate=0.01),
        "loss-5pct": channel(drop_rate=0.05),
        "loss-20pct": channel(drop_rate=0.20),
        "dup-10pct": channel(duplicate_rate=0.10),
        "reorder-5pct": channel(reorder_rate=0.05, reorder_depth=3),
        "corrupt-5pct": channel(corrupt_rate=0.05),
        "truncate-5pct": channel(truncate_rate=0.05),
        "jitter-10pct": channel(jitter_rate=0.10, jitter_depth=8),
        "mixed-hostile": channel(drop_rate=0.05, duplicate_rate=0.05,
                                 corrupt_rate=0.02, truncate_rate=0.02),
    }
