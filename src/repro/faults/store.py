"""Deterministic store-fault injection for chaos runs.

:class:`StoreFaultInjector` plugs into
:attr:`repro.db.store.MessageStore.fault_injector`: the store calls it (with
the operation name) at the top of every write transaction, and whatever it
raises takes exactly the path a genuine SQLite failure would -- transient
``database is locked`` errors engage the store's retry-with-jitter loop,
the non-transient ``database or disk is full`` fails fast.

Injection draws come from the plan's seeded store stream, so the same plan
over the same write sequence produces the same faults.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field

from repro.db.store import MessageStore
from repro.faults.plan import FaultPlan, StoreFaultProfile
from repro.util.rng import SeededRNG


@dataclass
class StoreFaultInjector:
    """Raise seeded ``OperationalError`` faults from a store's write paths."""

    plan: FaultPlan = field(default_factory=FaultPlan)

    writes_seen: int = 0
    transient_raised: int = 0
    disk_full_raised: int = 0

    _rng: SeededRNG = field(init=False, repr=False)
    _profile: StoreFaultProfile = field(init=False, repr=False)
    _burst_left: int = 0

    def __post_init__(self) -> None:
        self._rng = self.plan.store_rng()
        self._profile = self.plan.store

    def install(self, store: MessageStore) -> "StoreFaultInjector":
        """Attach this injector to ``store``; returns self for chaining."""
        store.fault_injector = self
        return self

    def __call__(self, operation: str) -> None:
        """The hook the store invokes before each write transaction."""
        profile = self._profile
        self.writes_seen += 1
        if (profile.disk_full_after is not None
                and self.writes_seen > profile.disk_full_after):
            self.disk_full_raised += 1
            raise sqlite3.OperationalError("database or disk is full")
        if self._burst_left > 0:
            self._burst_left -= 1
            self.transient_raised += 1
            raise sqlite3.OperationalError("database is locked")
        if profile.error_rate > 0 and self._rng.random() < profile.error_rate:
            # First failure of a burst: the remaining burst_left failures hit
            # the retry attempts that follow, exercising the backoff loop.
            self._burst_left = profile.error_burst - 1
            self.transient_raised += 1
            raise sqlite3.OperationalError("database is locked")
