"""Ingest benchmark -- batch post-pass vs streaming vs sharded streaming.

Measures, with equivalence of the three record sets asserted first:

* **replay throughput** (messages/s): a campaign's datagram stream is
  captured once, then replayed into (a) the batch path (persist raw +
  post-pass consolidation), (b) one streaming consolidator, and (c) the
  sharded front -- isolating pure ingest cost from collection/hashing,
* **peak open groups**: how many process groups streaming ingest holds open
  at its worst, vs the total process count the batch pass materialises,
* **campaign wall-clock**: end-to-end campaign seconds per ingest mode, and
* **mid-run snapshot**: latency and size of a live ``snapshot()`` taken
  halfway through the job stream.

Results are written as machine-readable JSON to ``BENCH_ingest.json`` in the
repository root (override with ``REPRO_BENCH_JSON``).  Setting
``REPRO_BENCH_SMOKE=1`` shrinks the campaign for CI smoke runs: equivalence
is still asserted, timing is recorded, but the throughput floor is not
enforced (shared CI runners are too noisy to gate on).

On the full run, streaming replay throughput must be at least the batch
path's (it skips the raw-message table entirely), and the peak open-group
count must stay well below the total process count.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.db.store import MessageStore
from repro.ingest import IncrementalConsolidator, ShardedIngest
from repro.postprocess.consolidate import Consolidator
from repro.transport.receiver import MessageReceiver
from repro.util.tables import TextTable
from repro.workload import CampaignConfig, DeploymentCampaign

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SCALE = 0.0025 if SMOKE else 0.01
SEED = 2025

#: Collected by the tests below, dumped once at module teardown.
RESULTS: dict = {
    "bench": "ingest",
    "smoke": SMOKE,
    "scale": SCALE,
}


def _json_path() -> Path:
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return Path(override)
    if SMOKE:
        # Smoke runs (CI) are throwaway measurements: keep the tracked
        # repo-root results file (the recorded full run) untouched.
        return Path(os.environ.get("TMPDIR", "/tmp")) / "BENCH_ingest_smoke.json"
    return Path(__file__).resolve().parent.parent / "BENCH_ingest.json"


@pytest.fixture(scope="module", autouse=True)
def _dump_results():
    yield
    path = _json_path()
    path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"\nwrote {path}")


@pytest.fixture(scope="module")
def datagram_stream() -> list[bytes]:
    """One campaign's datagram stream, captured once for all replay arms."""
    campaign = DeploymentCampaign(
        config=CampaignConfig(scale=SCALE, seed=SEED, loss_rate=0.0002))
    campaign.prepare()
    captured: list[bytes] = []
    campaign.channel.subscribe(captured.append)
    campaign.run()
    return captured


def _record_set(records):
    return sorted(tuple(getattr(r, name) for name in r.__dataclass_fields__)
                  for r in records)


class TestReplayThroughput:
    def test_batch_vs_streaming_vs_sharded(self, datagram_stream):
        arms = {}

        def run_batch():
            store = MessageStore()
            receiver = MessageReceiver(store)
            for datagram in datagram_stream:
                receiver.handle_datagram(datagram)
            receiver.flush()
            return Consolidator(store).run(), {}

        def run_streaming():
            store = MessageStore()
            sink = IncrementalConsolidator(store)
            receiver = MessageReceiver(store, sink=sink, persist_raw=False)
            for datagram in datagram_stream:
                receiver.handle_datagram(datagram)
            receiver.flush()
            records = sink.finalize()
            return records, {"peak_open_groups": sink.peak_open_processes}

        def run_sharded():
            front = ShardedIngest(MessageStore(), shards=4)
            for datagram in datagram_stream:
                front.handle_datagram(datagram)
            records = front.finalize()
            return records, {"peak_open_groups": front.peak_open_processes}

        table = TextTable(["ingest path", "messages/s", "seconds", "peak open groups"],
                          title=f"Replay ingest throughput ({len(datagram_stream)}"
                                " datagrams)")
        reference = None
        for name, runner in (("batch", run_batch), ("streaming", run_streaming),
                             ("sharded-4", run_sharded)):
            start = time.perf_counter()
            records, extra = runner()
            seconds = time.perf_counter() - start
            if reference is None:
                reference = _record_set(records)
                extra["total_records"] = len(records)
            else:
                assert _record_set(records) == reference  # identical output first
            arms[name] = {
                "seconds": seconds,
                "messages_per_s": len(datagram_stream) / seconds,
                **extra,
            }
            table.add_row([name, f"{arms[name]['messages_per_s']:,.0f}",
                           f"{seconds:.2f}",
                           str(extra.get("peak_open_groups", "-"))])
        print()
        print(table.render())
        RESULTS["replay"] = {"datagrams": len(datagram_stream), **arms}
        if not SMOKE:
            assert arms["streaming"]["messages_per_s"] >= arms["batch"]["messages_per_s"], (
                "streaming replay ingest fell below batch throughput")
            assert arms["streaming"]["peak_open_groups"] < arms["batch"]["total_records"]


class TestCampaignWallClock:
    def test_campaign_per_ingest_mode(self):
        timings = {}
        digests = {}
        for name, overrides in (
            ("batch", {}),
            ("streaming", {"ingest_mode": "streaming", "keep_raw_messages": False}),
            ("sharded-4", {"ingest_mode": "streaming", "ingest_shards": 4,
                           "keep_raw_messages": False}),
        ):
            config = CampaignConfig(scale=SCALE, seed=SEED, loss_rate=0.0002,
                                    **overrides)
            start = time.perf_counter()
            result = DeploymentCampaign(config=config).run()
            timings[name] = time.perf_counter() - start
            digests[name] = _record_set(result.records)
        assert digests["batch"] == digests["streaming"] == digests["sharded-4"]
        table = TextTable(["ingest mode", "campaign seconds"],
                          title=f"Campaign wall-clock (scale={SCALE})")
        for name, seconds in timings.items():
            table.add_row([name, f"{seconds:.2f}"])
        print()
        print(table.render())
        RESULTS["campaign"] = {name: {"seconds": seconds}
                               for name, seconds in timings.items()}


class TestMidRunSnapshot:
    def test_snapshot_halfway_through(self):
        config = CampaignConfig(scale=SCALE, seed=SEED, loss_rate=0.0002,
                                ingest_mode="streaming", ingest_shards=2,
                                keep_raw_messages=False)
        campaign = DeploymentCampaign(config=config)
        taken: dict = {}
        total_jobs = sum(config.jobs_for(profile) for profile in campaign.profiles)

        def on_job(jobs_run: int) -> None:
            if jobs_run == total_jobs // 2:
                start = time.perf_counter()
                records = campaign.snapshot()
                taken["seconds"] = time.perf_counter() - start
                taken["records"] = len(records)

        campaign.on_job = on_job
        result = campaign.run()
        assert taken and 0 < taken["records"] < len(result.records)
        RESULTS["snapshot"] = {
            "at_job": total_jobs // 2,
            "records": taken["records"],
            "final_records": len(result.records),
            "seconds": taken["seconds"],
        }
        print(f"\nmid-run snapshot: {taken['records']} of {len(result.records)}"
              f" final records in {taken['seconds'] * 1000:.1f} ms")
