"""Ingest benchmark -- batch post-pass vs streaming vs sharded (thread/process).

Measures, with equivalence of all record sets asserted first:

* **replay throughput** (messages/s): a campaign's datagram stream is
  captured once, then replayed into (a) the batch path (persist raw +
  post-pass consolidation), (b) one streaming consolidator, (c) the
  thread-sharded front and (d) the process-sharded front (one OS worker
  per shard) -- isolating pure ingest cost from collection/hashing.
  Per-arm setup (store construction, worker spawn) runs *outside* the
  timer, so every arm is measured at steady state,
* **peak open groups**: how many process groups streaming ingest holds open
  at its worst, vs the total process count the batch pass materialises,
* **campaign wall-clock**: end-to-end campaign seconds per ingest mode, and
* **mid-run snapshot**: latency and size of a live ``snapshot()`` taken
  halfway through the job stream.

Results are written as machine-readable JSON to ``BENCH_ingest.json`` in the
repository root (override with ``REPRO_BENCH_JSON``).  Setting
``REPRO_BENCH_SMOKE=1`` shrinks the campaign for CI smoke runs: equivalence
is still asserted, timing is recorded, but throughput floors are not
enforced (shared CI runners are too noisy to gate on) unless
``REPRO_BENCH_ENFORCE_PROCESS_FLOOR=1`` opts the process-vs-streaming floor
back in.

Throughput floors on the full run: streaming replay must be at least the
batch path's (it skips the raw-message table entirely), and process-sharded
replay must be at least single-stream -- the whole point of real OS
workers.  The process floor needs a second core to be winnable, so on a
single-core host it is skipped with the reason logged *and* recorded in the
JSON (``replay.process_floor``) rather than silently passed.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.db.store import MessageStore
from repro.ingest import IncrementalConsolidator, ShardedIngest
from repro.postprocess.consolidate import Consolidator
from repro.transport.receiver import MessageReceiver
from repro.util.tables import TextTable
from repro.workload import CampaignConfig, DeploymentCampaign

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
ENFORCE_PROCESS_FLOOR = os.environ.get(
    "REPRO_BENCH_ENFORCE_PROCESS_FLOOR", "") not in ("", "0")
#: Opt-in large-scale arm: msg/s vs process-worker count at a campaign scale
#: an order of magnitude above the default (slow -- minutes, not seconds).
CURVE = os.environ.get("REPRO_BENCH_INGEST_CURVE", "") not in ("", "0")
CURVE_SCALE = float(os.environ.get("REPRO_BENCH_INGEST_CURVE_SCALE", "0.1"))
SCALE = 0.0025 if SMOKE else 0.01
SEED = 2025
CPUS = len(os.sched_getaffinity(0))
#: Worker count for the process-sharded arm: one per core, floor 2 so the
#: arm exercises real cross-process routing even on a single-core host.
PROCESS_SHARDS = max(2, min(4, CPUS))

#: Collected by the tests below, dumped once at module teardown.
RESULTS: dict = {
    "bench": "ingest",
    "smoke": SMOKE,
    "scale": SCALE,
    "cpus": CPUS,
}


def _json_path() -> Path:
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return Path(override)
    if SMOKE:
        # Smoke runs (CI) are throwaway measurements: keep the tracked
        # repo-root results file (the recorded full run) untouched.
        return Path(os.environ.get("TMPDIR", "/tmp")) / "BENCH_ingest_smoke.json"
    return Path(__file__).resolve().parent.parent / "BENCH_ingest.json"


@pytest.fixture(scope="module", autouse=True)
def _dump_results():
    yield
    path = _json_path()
    path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"\nwrote {path}")


@pytest.fixture(scope="module")
def datagram_stream() -> list[bytes]:
    """One campaign's datagram stream, captured once for all replay arms."""
    campaign = DeploymentCampaign(
        config=CampaignConfig(scale=SCALE, seed=SEED, loss_rate=0.0002))
    campaign.prepare()
    captured: list[bytes] = []
    campaign.channel.subscribe(captured.append)
    campaign.run()
    return captured


def _record_set(records):
    return sorted(tuple(getattr(r, name) for name in r.__dataclass_fields__)
                  for r in records)


class TestReplayThroughput:
    def test_batch_vs_streaming_vs_sharded(self, datagram_stream):
        arms = {}

        def setup_batch():
            store = MessageStore()
            return store, MessageReceiver(store)

        def run_batch(state):
            store, receiver = state
            for datagram in datagram_stream:
                receiver.handle_datagram(datagram)
            receiver.flush()
            return Consolidator(store).run(), {}

        def setup_streaming():
            store = MessageStore()
            sink = IncrementalConsolidator(store)
            return sink, MessageReceiver(store, sink=sink, persist_raw=False)

        def run_streaming(state):
            sink, receiver = state
            for datagram in datagram_stream:
                receiver.handle_datagram(datagram)
            receiver.flush()
            records = sink.finalize()
            return records, {"peak_open_groups": sink.peak_open_processes}

        def setup_sharded_thread():
            return ShardedIngest(MessageStore(), shards=4)

        def setup_sharded_process():
            # worker spawn happens here, outside the timer
            return ShardedIngest(MessageStore(), shards=PROCESS_SHARDS,
                                 workers="process")

        def run_sharded(front):
            for datagram in datagram_stream:
                front.handle_datagram(datagram)
            records = front.finalize()
            return records, {"peak_open_groups": front.peak_open_processes}

        process_arm = f"sharded-{PROCESS_SHARDS}-process"
        table = TextTable(["ingest path", "messages/s", "seconds", "peak open groups"],
                          title=f"Replay ingest throughput ({len(datagram_stream)}"
                                " datagrams)")
        reference = None
        for name, setup, runner in (
            ("batch", setup_batch, run_batch),
            ("streaming", setup_streaming, run_streaming),
            ("sharded-4-thread", setup_sharded_thread, run_sharded),
            (process_arm, setup_sharded_process, run_sharded),
        ):
            state = setup()
            start = time.perf_counter()
            records, extra = runner(state)
            seconds = time.perf_counter() - start
            if reference is None:
                reference = _record_set(records)
                extra["total_records"] = len(records)
            else:
                assert _record_set(records) == reference  # identical output first
            arms[name] = {
                "seconds": seconds,
                "messages_per_s": len(datagram_stream) / seconds,
                **extra,
            }
            table.add_row([name, f"{arms[name]['messages_per_s']:,.0f}",
                           f"{seconds:.2f}",
                           str(extra.get("peak_open_groups", "-"))])
        print()
        print(table.render())

        # The process-vs-single-stream floor is the tentpole claim; it can
        # only hold with >= 2 cores, so the skip is explicit and recorded.
        floor: dict = {"arm": process_arm, "cpus": CPUS}
        if CPUS < 2:
            floor["enforced"] = False
            floor["skip_reason"] = (
                f"only {CPUS} CPU core(s) visible to this run -- process "
                "workers add IPC on top of the same serialized compute, so "
                "the process>=streaming floor is unwinnable here; rerun on "
                ">=2 cores to enforce it")
        elif SMOKE and not ENFORCE_PROCESS_FLOOR:
            floor["enforced"] = False
            floor["skip_reason"] = ("smoke run without "
                                    "REPRO_BENCH_ENFORCE_PROCESS_FLOOR=1")
        else:
            floor["enforced"] = True
        if floor["enforced"]:
            assert arms[process_arm]["messages_per_s"] >= \
                arms["streaming"]["messages_per_s"], (
                    f"process-sharded replay ({arms[process_arm]['messages_per_s']:,.0f}"
                    f" msg/s) fell below single-stream "
                    f"({arms['streaming']['messages_per_s']:,.0f} msg/s) on "
                    f"{CPUS} cores")
        else:
            print(f"process>=streaming floor SKIPPED: {floor['skip_reason']}")
        RESULTS["replay"] = {"datagrams": len(datagram_stream),
                             "process_floor": floor, **arms}
        if not SMOKE:
            assert arms["streaming"]["messages_per_s"] >= arms["batch"]["messages_per_s"], (
                "streaming replay ingest fell below batch throughput")
            assert arms["streaming"]["peak_open_groups"] < arms["batch"]["total_records"]


class TestCampaignWallClock:
    def test_campaign_per_ingest_mode(self):
        timings = {}
        digests = {}
        for name, overrides in (
            ("batch", {}),
            ("streaming", {"ingest_mode": "streaming", "keep_raw_messages": False}),
            ("sharded-4-thread", {"ingest_mode": "streaming", "ingest_shards": 4,
                                  "keep_raw_messages": False}),
            (f"sharded-{PROCESS_SHARDS}-process",
             {"ingest_mode": "streaming", "ingest_shards": PROCESS_SHARDS,
              "ingest_workers": "process", "keep_raw_messages": False}),
        ):
            config = CampaignConfig(scale=SCALE, seed=SEED, loss_rate=0.0002,
                                    **overrides)
            start = time.perf_counter()
            result = DeploymentCampaign(config=config).run()
            timings[name] = time.perf_counter() - start
            digests[name] = _record_set(result.records)
        assert len(set(map(tuple, digests.values()))) == 1, (
            "campaign record sets diverged across ingest modes")
        table = TextTable(["ingest mode", "campaign seconds"],
                          title=f"Campaign wall-clock (scale={SCALE})")
        for name, seconds in timings.items():
            table.add_row([name, f"{seconds:.2f}"])
        print()
        print(table.render())
        RESULTS["campaign"] = {name: {"seconds": seconds}
                               for name, seconds in timings.items()}


@pytest.mark.skipif(not CURVE, reason="set REPRO_BENCH_INGEST_CURVE=1 to run "
                    "the large-scale msg/s-vs-core-count curve (minutes)")
class TestCoreCountCurve:
    """Replay throughput vs process-worker count at 10x the default scale.

    Worker counts are capped at the visible core count -- a point the host
    cannot physically parallelise would chart IPC overhead, not scaling.
    The recorded ``cpus`` field tells readers how far the curve could go.
    """

    def test_throughput_vs_worker_count(self):
        campaign = DeploymentCampaign(
            config=CampaignConfig(scale=CURVE_SCALE, seed=SEED,
                                  loss_rate=0.0002))
        campaign.prepare()
        captured: list[bytes] = []
        campaign.channel.subscribe(captured.append)
        campaign.run()

        counts = sorted({1, 2, 4, 8, CPUS})
        points = {}
        reference = None
        table = TextTable(["process workers", "messages/s", "seconds"],
                          title=f"Ingest scaling curve (scale={CURVE_SCALE}, "
                                f"{len(captured)} datagrams, {CPUS} cores)")
        for workers in counts:
            if workers > CPUS:
                # Record the skip instead of silently omitting the point: a
                # 1-core box would otherwise emit a single-point curve that
                # reads as a complete scaling measurement.
                points[str(workers)] = {
                    "skipped": True,
                    "reason": f"requires {workers} cores, host exposes {CPUS}"
                              " -- the point would chart IPC overhead, not"
                              " scaling",
                }
                table.add_row([str(workers), "skipped",
                               f"needs {workers} cores"])
                continue
            front = ShardedIngest(MessageStore(), shards=workers,
                                  workers="process")
            start = time.perf_counter()
            for datagram in captured:
                front.handle_datagram(datagram)
            records = front.finalize()
            seconds = time.perf_counter() - start
            if reference is None:
                reference = _record_set(records)
            else:
                assert _record_set(records) == reference
            points[str(workers)] = {
                "seconds": seconds,
                "messages_per_s": len(captured) / seconds,
            }
            table.add_row([str(workers),
                           f"{points[str(workers)]['messages_per_s']:,.0f}",
                           f"{seconds:.2f}"])
        print()
        print(table.render())
        RESULTS["core_curve"] = {
            "scale": CURVE_SCALE,
            "datagrams": len(captured),
            "cpus": CPUS,
            "points": points,
        }


class TestMidRunSnapshot:
    def test_snapshot_halfway_through(self):
        config = CampaignConfig(scale=SCALE, seed=SEED, loss_rate=0.0002,
                                ingest_mode="streaming", ingest_shards=2,
                                keep_raw_messages=False)
        campaign = DeploymentCampaign(config=config)
        taken: dict = {}
        total_jobs = sum(config.jobs_for(profile) for profile in campaign.profiles)

        def on_job(jobs_run: int) -> None:
            if jobs_run == total_jobs // 2:
                start = time.perf_counter()
                records = campaign.snapshot()
                taken["seconds"] = time.perf_counter() - start
                taken["records"] = len(records)

        campaign.on_job = on_job
        result = campaign.run()
        assert taken and 0 < taken["records"] < len(result.records)
        RESULTS["snapshot"] = {
            "at_job": total_jobs // 2,
            "records": taken["records"],
            "final_records": len(result.records),
            "seconds": taken["seconds"],
        }
        print(f"\nmid-run snapshot: {taken['records']} of {len(result.records)}"
              f" final records in {taken['seconds'] * 1000:.1f} ms")
