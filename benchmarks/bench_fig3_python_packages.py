"""Figure 3 -- imported Python packages extracted from interpreter memory maps."""

from repro.analysis.report import render_python_packages


def test_fig3_python_packages(benchmark, bench_pipeline):
    rows = benchmark(bench_pipeline.figure3_python_packages)
    print()
    print(render_python_packages(rows, title="Figure 3 (reproduced)"))

    by_package = {row.package: row for row in rows}
    python_user_count = max(row.unique_users for row in rows)

    # Paper shape: heapq/struct/math etc. are imported by every Python user
    # ("basic components in almost every Python execution"); mpi4py, numpy,
    # pandas and scipy appear only for a subset of users.
    for package in ("heapq", "struct", "math", "hashlib", "blake2"):
        assert by_package[package].unique_users == python_user_count
    for package in ("mpi4py", "pandas", "scipy"):
        assert package in by_package
        assert by_package[package].unique_users < python_user_count
    assert by_package["numpy"].process_count <= by_package["heapq"].process_count
    assert all(row.unique_scripts >= 1 for row in rows)
