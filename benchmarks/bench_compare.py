"""Comparison-engine benchmark -- bit-parallel batched vs seed scalar scoring.

Every pair surviving the n-gram prune used to pay a per-pair pure-Python
toll: re-parse both digests, re-run run-length normalisation four times,
then an ``O(64*64)`` Python DP.  The engine of
:mod:`repro.hashing.compare_engine` replaces that with a per-digest
normalization cache and a word-parallel LCS kernel, batched one-vs-many via
numpy.  This benchmark measures both levels on campaign-realistic digests:

* **per-pair**: scalar ``compare()`` over sampled digest pairs, reference
  backend vs bit-parallel backend (normalization cache warm, as in any real
  sweep) -- microseconds per pair;
* **matrix-level**: ``SimilaritySearch.pairwise_average_matrix`` (the
  Fig 4/5-style all-pairs workload) over every hash column on the
  brute-force path, plus the full Table 7 ``identify_unknown`` sweep --
  both asserted **byte-identical** across backends before any timing is
  trusted.

Timings land in ``BENCH_compare.json`` in the repository root (override with
``REPRO_BENCH_JSON``).  ``REPRO_BENCH_SMOKE=1`` shrinks the campaign for CI;
equivalence is asserted either way, and the matrix-level speedup floor of
5x is enforced in both modes -- unlike wall-clock throughput floors, a
same-process A/B ratio is stable enough to gate on shared runners.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis.similarity import HASH_COLUMNS, SimilaritySearch
from repro.hashing.compare_engine import compare_scan_backend, normalize_cache_clear
from repro.hashing.ssdeep import FuzzyHasher
from repro.util.tables import TextTable
from repro.workload import CampaignConfig, DeploymentCampaign

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SCALE = 0.0025 if SMOKE else 0.01
SEED = 2027
#: Matrix-level floor: the batched engine must beat the scalar path by this
#: factor on the all-pairs workload (enforced in smoke mode too).
SPEEDUP_FLOOR = 5.0

RESULTS: dict = {
    "bench": "compare",
    "smoke": SMOKE,
    "scale": SCALE,
    "kernel": compare_scan_backend(),
}


def _json_path() -> Path:
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return Path(override)
    if SMOKE:
        return Path(os.environ.get("TMPDIR", "/tmp")) / "BENCH_compare_smoke.json"
    return Path(__file__).resolve().parent.parent / "BENCH_compare.json"


@pytest.fixture(scope="module", autouse=True)
def _dump_results():
    yield
    path = _json_path()
    path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"\nwrote {path}")


@pytest.fixture(scope="module")
def compare_records():
    """Records of a dedicated campaign (module-scoped: knobs differ from conftest's)."""
    config = CampaignConfig(scale=SCALE, seed=SEED, loss_rate=0.0002)
    return DeploymentCampaign(config=config).run().records


def _fresh_search(records, backend: str) -> SimilaritySearch:
    """A cold search on the brute-force path with the given compare backend."""
    normalize_cache_clear()
    return SimilaritySearch(records, use_index=False,
                            hasher=FuzzyHasher(compare_backend=backend))


class TestPerPairCompare:
    def test_scalar_compare_speedup(self, compare_records):
        search = SimilaritySearch(compare_records)
        digests = [instance.hashes[column]
                   for instance in search.instances
                   for column in HASH_COLUMNS
                   if instance.hashes.get(column)]
        pairs = [(digests[i], digests[j])
                 for i in range(len(digests))
                 for j in range(i + 1, min(i + 8, len(digests)))]
        assert pairs, "campaign produced no digest pairs to compare"

        timings = {}
        scores = {}
        for backend in ("reference", "bitparallel"):
            hasher = FuzzyHasher(compare_backend=backend)
            normalize_cache_clear()
            start = time.perf_counter()
            scores[backend] = [hasher.compare(a, b) for a, b in pairs]
            timings[backend] = time.perf_counter() - start
        assert scores["bitparallel"] == scores["reference"]

        per_pair_us = {backend: seconds / len(pairs) * 1e6
                       for backend, seconds in timings.items()}
        speedup = timings["reference"] / timings["bitparallel"] \
            if timings["bitparallel"] else 0.0
        table = TextTable(["backend", "pairs", "total ms", "us/pair"],
                          title=f"Scalar compare() per pair (scale={SCALE})")
        for backend in ("reference", "bitparallel"):
            table.add_row([backend, str(len(pairs)),
                           f"{timings[backend] * 1000:.1f}",
                           f"{per_pair_us[backend]:.1f}"])
        print()
        print(table.render())
        print(f"per-pair speedup: {speedup:.1f}x")
        RESULTS["per_pair"] = {
            "pairs": len(pairs),
            "reference_us": per_pair_us["reference"],
            "bitparallel_us": per_pair_us["bitparallel"],
            "speedup": speedup,
        }


class TestMatrixAndQueryCompare:
    def test_pairwise_matrix_speedup_and_equivalence(self, compare_records):
        rows = []
        totals = {"reference": 0.0, "bitparallel": 0.0}
        for column in HASH_COLUMNS:
            matrices = {}
            for backend in ("reference", "bitparallel"):
                search = _fresh_search(compare_records, backend)
                start = time.perf_counter()
                matrices[backend] = search.pairwise_average_matrix(column)
                seconds = time.perf_counter() - start
                totals[backend] += seconds
                if backend == "reference":
                    reference_ms = seconds * 1000
                else:
                    bitparallel_ms = seconds * 1000
            # identical answers first -- the speedup is meaningless otherwise
            assert matrices["bitparallel"] == matrices["reference"], column
            rows.append({"column": column, "reference_ms": reference_ms,
                         "bitparallel_ms": bitparallel_ms,
                         "speedup": reference_ms / bitparallel_ms
                         if bitparallel_ms else 0.0})

        instances = len(SimilaritySearch(compare_records).instances)
        table = TextTable(
            ["column", "reference ms", "bitparallel ms", "speedup"],
            title=f"Pairwise matrix ({instances} instances, brute force,"
                  f" scale={SCALE})")
        for row in rows:
            table.add_row([row["column"], f"{row['reference_ms']:.1f}",
                           f"{row['bitparallel_ms']:.1f}",
                           f"{row['speedup']:.1f}x"])
        print()
        print(table.render())

        aggregate = totals["reference"] / totals["bitparallel"] \
            if totals["bitparallel"] else 0.0
        print(f"aggregate matrix speedup: {aggregate:.1f}x over"
              f" {len(HASH_COLUMNS)} columns")
        RESULTS["pairwise_matrix"] = {
            "instances": instances,
            "columns": rows,
            "reference_ms_total": totals["reference"] * 1000,
            "bitparallel_ms_total": totals["bitparallel"] * 1000,
            "speedup": aggregate,
        }
        assert aggregate >= SPEEDUP_FLOOR, (
            f"batched bit-parallel matrix must be at least {SPEEDUP_FLOOR}x"
            f" faster than the scalar path (measured {aggregate:.1f}x)")

    def test_identify_unknown_speedup_and_equivalence(self, compare_records):
        timings = {}
        answers = {}
        for backend in ("reference", "bitparallel"):
            search = _fresh_search(compare_records, backend)
            start = time.perf_counter()
            answers[backend] = search.identify_unknown(top=10)
            timings[backend] = time.perf_counter() - start
        assert answers["bitparallel"] == answers["reference"]
        speedup = timings["reference"] / timings["bitparallel"] \
            if timings["bitparallel"] else 0.0
        print(f"\nidentify_unknown (brute force): reference"
              f" {timings['reference'] * 1000:.1f} ms, bitparallel"
              f" {timings['bitparallel'] * 1000:.1f} ms ({speedup:.1f}x)")
        RESULTS["identify_unknown"] = {
            "baselines": len(answers["bitparallel"]),
            "reference_ms": timings["reference"] * 1000,
            "bitparallel_ms": timings["bitparallel"] * 1000,
            "speedup": speedup,
        }
