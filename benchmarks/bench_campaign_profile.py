"""Campaign driver benchmark -- stage profile, parallel driver, encode batching.

Three measurements, with record equivalence asserted before any timing claim:

* **stage profile**: one serial campaign run with the built-in
  :class:`~repro.util.timing.StageTimer` enabled, recording where the
  wall-clock goes (``campaign.prepare`` / ``cluster.run_job`` /
  ``collect.*`` / ``transport.*`` / ``store.write`` ...).  The profile is
  the evidence behind the two optimisations this file then measures,
* **parallel driver**: the same campaign with ``campaign_workers`` driver
  processes; output pinned equivalent to serial, wall-clock and per-stage
  timings recorded, and the parallel>=serial floor enforced where it is
  winnable (>= 2 cores), skipped-with-reason (logged *and* recorded in the
  JSON) on a single-core host,
* **encode batching A/B**: the profile's residual serial hot spots --
  per-chunk message encoding and dynamic-linker classification -- each have
  a reference path kept alive behind a knob (``UDPSender.fast_encode``,
  ``DynamicLinker.dynamic_cache_enabled``).  Both arms run the full
  campaign; the recorded win is the before/after evidence that the batched
  path pays for itself.

Results are written as machine-readable JSON to ``BENCH_campaign.json`` in
the repository root (override with ``REPRO_BENCH_JSON``).
``REPRO_BENCH_SMOKE=1`` shrinks the campaign for CI smoke runs; floors stay
off in smoke mode unless ``REPRO_BENCH_ENFORCE_DRIVER_FLOOR=1`` opts the
parallel>=serial gate back in (CI does, on its multi-core runners).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.util.tables import TextTable
from repro.workload import CampaignConfig, DeploymentCampaign

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
ENFORCE_DRIVER_FLOOR = os.environ.get(
    "REPRO_BENCH_ENFORCE_DRIVER_FLOOR", "") not in ("", "0")
SCALE = 0.0025 if SMOKE else 0.01
SEED = 2025
LOSS_RATE = 0.0002
CPUS = len(os.sched_getaffinity(0))
#: Driver width for the parallel arm: one per core, floor 2 so the arm
#: exercises real cross-process merging even on a single-core host.
WORKERS = max(2, min(4, CPUS))

RESULTS: dict = {
    "bench": "campaign_profile",
    "smoke": SMOKE,
    "scale": SCALE,
    "seed": SEED,
    "cpus": CPUS,
    "campaign_workers": WORKERS,
}


def _json_path() -> Path:
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return Path(override)
    if SMOKE:
        # Smoke runs (CI) are throwaway measurements: keep the tracked
        # repo-root results file (the recorded full run) untouched.
        return Path(os.environ.get("TMPDIR", "/tmp")) / "BENCH_campaign_smoke.json"
    return Path(__file__).resolve().parent.parent / "BENCH_campaign.json"


@pytest.fixture(scope="module", autouse=True)
def _dump_results():
    yield
    path = _json_path()
    path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"\nwrote {path}")


def _record_set(records):
    return sorted(tuple(getattr(r, name) for name in r.__dataclass_fields__)
                  for r in records)


def _run_campaign(workers: int = 1, *, fast_encode: bool = True,
                  dynamic_cache: bool = True):
    """One timed campaign run; returns (result, wall seconds)."""
    config = CampaignConfig(scale=SCALE, seed=SEED, loss_rate=LOSS_RATE,
                            campaign_workers=workers)
    campaign = DeploymentCampaign(config=config)
    campaign.prepare()
    # The A/B knobs are instance switches, not config: the reference paths
    # exist only so this benchmark can measure what batching bought.
    campaign.collector.sender.fast_encode = fast_encode
    campaign.cluster.linker.dynamic_cache_enabled = dynamic_cache
    start = time.perf_counter()
    result = campaign.run()
    return result, time.perf_counter() - start


def _stage_table(title: str, stages: dict) -> str:
    table = TextTable(["stage", "inclusive s", "calls"], title=title)
    for name, stat in stages.items():
        table.add_row([name, f"{stat['seconds']:.3f}", f"{stat['calls']:,}"])
    return table.render()


@pytest.fixture(scope="module")
def serial_run():
    """The serial reference: result + wall seconds, shared by every arm."""
    return _run_campaign(1)


class TestStageProfile:
    def test_serial_profile_accounts_for_the_run(self, serial_run):
        result, seconds = serial_run
        stages = result.stage_timings
        print()
        print(_stage_table(f"Serial campaign stage profile ({seconds:.2f}s "
                           f"wall, scale={SCALE})", stages))
        for stage in ("campaign.prepare", "campaign.jobs", "campaign.finalize",
                      "cluster.run_job", "collect.start", "transport.encode",
                      "transport.send"):
            assert stage in stages, f"stage {stage} missing from the profile"
        # The three top-level stages cover (nearly) the whole run: the
        # profile is trustworthy evidence, not a sample.
        covered = sum(stages[name]["seconds"] for name in
                      ("campaign.prepare", "campaign.jobs", "campaign.finalize"))
        assert covered > 0.5 * seconds
        # Job execution dominates: that is the stage the parallel driver
        # attacks, and collection dominates inside it.
        assert stages["campaign.jobs"]["seconds"] >= \
            stages["campaign.prepare"]["seconds"]
        RESULTS["serial"] = {"seconds": seconds, "stages": stages,
                             "records": len(result.records),
                             "statistics": result.statistics()}

    def test_cache_effectiveness_counters(self, serial_run):
        result, _seconds = serial_run
        stats = result.statistics()
        # The content/path caches carry the hashing load; the compare LRU
        # only engages in analyses, so it is recorded but not asserted.
        assert stats["hash_cache_hit_rate"] > 0.9
        assert stats["hash_content_cache_hits"] >= 0
        RESULTS["cache_effectiveness"] = {
            key: stats[key] for key in
            ("hashes_computed", "hash_cache_hits", "hash_content_cache_hits",
             "hash_cache_hit_rate", "compare_cache_hits", "compare_cache_misses")}


class TestParallelDriver:
    def test_parallel_equivalent_and_profiled(self, serial_run):
        serial_result, serial_seconds = serial_run
        parallel_result, parallel_seconds = _run_campaign(WORKERS)
        assert _record_set(parallel_result.records) == \
            _record_set(serial_result.records)
        assert parallel_result.jobs_run == serial_result.jobs_run
        speedup = serial_seconds / parallel_seconds
        print()
        print(_stage_table(
            f"Parallel campaign stage profile ({WORKERS} workers, "
            f"{parallel_seconds:.2f}s wall, {speedup:.2f}x vs serial)",
            parallel_result.stage_timings))

        floor: dict = {"workers": WORKERS, "cpus": CPUS}
        if CPUS < 2:
            floor["enforced"] = False
            floor["skip_reason"] = (
                f"only {CPUS} CPU core(s) visible to this run -- driver "
                "workers add IPC and duplicate prepare() on top of the same "
                "serialized compute, so the parallel>=serial floor is "
                "unwinnable here; rerun on >=2 cores to enforce it")
        elif SMOKE and not ENFORCE_DRIVER_FLOOR:
            floor["enforced"] = False
            floor["skip_reason"] = ("smoke run without "
                                    "REPRO_BENCH_ENFORCE_DRIVER_FLOOR=1")
        else:
            floor["enforced"] = True
        if floor["enforced"]:
            assert parallel_seconds <= serial_seconds, (
                f"parallel driver ({parallel_seconds:.2f}s with {WORKERS} "
                f"workers) fell behind serial ({serial_seconds:.2f}s) on "
                f"{CPUS} cores")
        else:
            print(f"parallel>=serial floor SKIPPED: {floor['skip_reason']}")
        feed = dict(parallel_result.feed_stats or {})
        if feed.get("feed_calls"):
            # The coalescing win: worker batches merged per parent ingest
            # call (1.0 = no queue backlog to merge, higher = fewer
            # driver.feed/store.write round-trips than batches arrived).
            feed["batches_per_call"] = (feed["batches_received"]
                                        / feed["feed_calls"])
            print(f"feed coalescing: {feed['batches_received']} worker "
                  f"batches -> {feed['feed_calls']} ingest calls "
                  f"({feed['batches_per_call']:.2f} batches/call, "
                  f"{feed['datagrams_fed']:,} datagrams)")
        RESULTS["parallel"] = {
            "seconds": parallel_seconds,
            "speedup_vs_serial": speedup,
            "stages": parallel_result.stage_timings,
            "driver_floor": floor,
            "feed": feed,
        }


class TestEncodeBatchingAB:
    def test_batched_paths_vs_reference(self, serial_run):
        """The profile-guided batching, measured against its reference paths.

        Profiling the seed driver put ``transport.encode`` (per-chunk
        dataclass copy + double header serialisation) and dynamic-linker
        ELF re-reads at the top of the job loop; the batched paths --
        shared-prefix chunk encoding and the ``(path, mtime)`` link cache
        -- are asserted byte-identical elsewhere, so this arm only measures
        what they bought.
        """
        optimized_result, optimized_seconds = serial_run
        reference_result, reference_seconds = _run_campaign(
            1, fast_encode=False, dynamic_cache=False)
        assert _record_set(reference_result.records) == \
            _record_set(optimized_result.records)
        win = reference_seconds / optimized_seconds
        ref_stages = reference_result.stage_timings
        opt_stages = optimized_result.stage_timings
        table = TextTable(["arm", "wall s", "transport.encode s",
                           "cluster.run_job s"],
                          title=f"Encode/link batching A/B ({win:.2f}x)")
        for name, seconds, stages in (
            ("reference (unbatched)", reference_seconds, ref_stages),
            ("batched (default)", optimized_seconds, opt_stages),
        ):
            table.add_row([name, f"{seconds:.2f}",
                           f"{stages['transport.encode']['seconds']:.3f}",
                           f"{stages['cluster.run_job']['seconds']:.3f}"])
        print()
        print(table.render())
        RESULTS["encode_batching"] = {
            "reference_seconds": reference_seconds,
            "batched_seconds": optimized_seconds,
            "win": win,
            "reference_stages": ref_stages,
            "batched_stages": opt_stages,
        }
        if not SMOKE:
            # The batched default must never lose to its own reference path.
            assert optimized_seconds <= reference_seconds * 1.05, (
                f"batched encode ({optimized_seconds:.2f}s) lost to the "
                f"reference path ({reference_seconds:.2f}s)")
