"""Table 2 -- users, jobs and processes per category.

Regenerates the paper's Table 2 from the benchmark campaign and benchmarks the
aggregation itself.  Absolute counts scale with ``REPRO_BENCH_SCALE``; the
structure (user ordering, per-user category mix) matches the paper.
"""

from repro.analysis.report import render_user_activity
from repro.analysis.stats import activity_totals


def test_table2_users_jobs_processes(benchmark, bench_pipeline):
    rows = benchmark(bench_pipeline.table2_user_activity)
    totals = activity_totals(rows)
    print()
    print(render_user_activity(rows, title="Table 2 (reproduced)"))
    print(f"Total: jobs={totals.job_count:,d} system={totals.system_processes:,d} "
          f"user={totals.user_processes:,d} python={totals.python_processes:,d}")

    by_user = {row.user: row for row in rows}
    # Paper shape: user_1 submits the most jobs, runs only system executables;
    # user_4 launches by far the most Python processes; user_6 never touches
    # system directories.
    assert rows[0].user == "user_1"
    assert by_user["user_1"].user_processes == 0
    assert by_user["user_4"].python_processes == max(r.python_processes for r in rows)
    assert by_user["user_6"].system_processes == 0
    assert len(rows) >= 12
