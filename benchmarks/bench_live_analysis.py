"""Live-analysis benchmark -- incremental snapshot analyses vs full rebuilds.

A streaming campaign runs with a bound
:class:`~repro.analysis.live.LiveAnalysis` observed after *every* job -- the
live-monitoring regime the subsystem exists for, where each observation pulls
one job's worth of record delta.  Each observation produces four artefacts
(Table 2, Table 3, Table 8, and the Table 7 similarity search); at evenly
spaced checkpoints the same four artefacts are also produced the pre-live
way -- ``snapshot()`` the full record set, build a fresh
:class:`AnalysisPipeline` and :class:`SimilaritySearch`, recompute everything
from scratch -- and compared:

* **byte-identical equality** of every artefact is asserted at every
  checkpoint first (the speedup is only meaningful if the answers match);
* the **per-snapshot cost** of both paths is recorded: the live observation
  scales with the delta since the previous job, the rebuild with the whole
  campaign so far.

Timings land in ``BENCH_live.json`` in the repository root (override with
``REPRO_BENCH_JSON``).  ``REPRO_BENCH_SMOKE=1`` shrinks the campaign for CI:
equivalence is still asserted at every checkpoint, but the speedup floor is
not enforced (shared CI runners are too noisy to gate on).  On the full run,
the aggregate per-snapshot cost of the live path must be at least 5x below
the rebuild path.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis.similarity import SimilaritySearch
from repro.core import AnalysisPipeline
from repro.util.errors import AnalysisError
from repro.util.tables import TextTable
from repro.workload import CampaignConfig, DeploymentCampaign

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SCALE = 0.0025 if SMOKE else 0.01
SEED = 2026
CHECKPOINTS = 8

RESULTS: dict = {
    "bench": "live_analysis",
    "smoke": SMOKE,
    "scale": SCALE,
    "checkpoints": CHECKPOINTS,
}


def _json_path() -> Path:
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return Path(override)
    if SMOKE:
        return Path(os.environ.get("TMPDIR", "/tmp")) / "BENCH_live_smoke.json"
    return Path(__file__).resolve().parent.parent / "BENCH_live.json"


@pytest.fixture(scope="module", autouse=True)
def _dump_results():
    yield
    path = _json_path()
    path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"\nwrote {path}")


def _live_artefacts(live):
    try:
        table7 = live.identify_unknown(top=10)
    except AnalysisError:
        table7 = None
    return (live.table2_user_activity(), live.table3_system_executables(),
            live.table8_python_interpreters(), table7)


def _rebuild_artefacts(campaign, user_names):
    records = campaign.snapshot()
    pipeline = AnalysisPipeline(records, user_names)
    search = SimilaritySearch(records)
    try:
        table7 = search.identify_unknown(top=10)
    except AnalysisError:
        table7 = None
    return (pipeline.table2_user_activity(), pipeline.table3_system_executables(),
            pipeline.table8_python_interpreters(), table7), len(records)


class TestLiveSnapshotCost:
    def test_live_vs_rebuild_at_checkpoints(self):
        config = CampaignConfig(scale=SCALE, seed=SEED, loss_rate=0.0002,
                                ingest_mode="streaming", ingest_shards=2,
                                keep_raw_messages=False)
        campaign = DeploymentCampaign(config=config)
        live = campaign.live_analysis()
        total_jobs = sum(config.jobs_for(profile) for profile in campaign.profiles)
        step = max(1, total_jobs // CHECKPOINTS)
        checkpoints = {job for job in range(step, total_jobs + 1, step)} | {total_jobs}
        rows: list[dict] = []

        live_ms_all_jobs: list[float] = []

        def on_job(jobs_run: int) -> None:
            # Observe after every job: each pull folds one job's delta.
            start = time.perf_counter()
            live_artefacts = _live_artefacts(live)
            live_seconds = time.perf_counter() - start
            live_ms_all_jobs.append(live_seconds * 1000)
            if jobs_run not in checkpoints:
                return
            start = time.perf_counter()
            rebuild_artefacts, record_count = _rebuild_artefacts(
                campaign, live.user_names)
            rebuild_seconds = time.perf_counter() - start
            # identical answers first -- the speedup is meaningless otherwise
            assert live_artefacts == rebuild_artefacts
            rows.append({
                "job": jobs_run,
                "records": record_count,
                "live_ms": live_seconds * 1000,
                "rebuild_ms": rebuild_seconds * 1000,
            })

        campaign.on_job = on_job
        result = campaign.run()
        assert len(rows) >= min(CHECKPOINTS, total_jobs)

        table = TextTable(
            ["job", "records", "live ms", "rebuild ms", "speedup"],
            title=f"Live snapshot analysis vs rebuild (scale={SCALE})")
        for row in rows:
            speedup = row["rebuild_ms"] / row["live_ms"] if row["live_ms"] else 0.0
            table.add_row([str(row["job"]), str(row["records"]),
                           f"{row['live_ms']:.1f}", f"{row['rebuild_ms']:.1f}",
                           f"{speedup:.1f}x"])
        print()
        print(table.render())

        live_total = sum(row["live_ms"] for row in rows)
        rebuild_total = sum(row["rebuild_ms"] for row in rows)
        aggregate = rebuild_total / live_total if live_total else 0.0
        mean_live = sum(live_ms_all_jobs) / len(live_ms_all_jobs)
        print(f"aggregate per-snapshot speedup: {aggregate:.1f}x "
              f"({len(rows)} checkpoints, {len(result.records)} final records); "
              f"mean live observation over all {len(live_ms_all_jobs)} jobs:"
              f" {mean_live:.1f} ms")
        RESULTS["snapshots"] = rows
        RESULTS["aggregate"] = {
            "live_ms_total": live_total,
            "rebuild_ms_total": rebuild_total,
            "speedup": aggregate,
            "live_ms_mean_all_jobs": mean_live,
            "observations": len(live_ms_all_jobs),
            "final_records": len(result.records),
            "jobs": result.jobs_run,
        }
        RESULTS["live_statistics"] = live.statistics()
        if not SMOKE:
            assert aggregate >= 5.0, (
                f"live snapshot analyses must be at least 5x cheaper than the"
                f" rebuild path (measured {aggregate:.1f}x)")
