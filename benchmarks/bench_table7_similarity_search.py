"""Table 7 -- similarity search identifying the UNKNOWN executable as icon.

This is the paper's headline qualitative result: an executable submitted under
a nondescript path/file name (``a.out``) is matched, via fuzzy-hash similarity
over six characteristics, to known instances of the ICON climate model, with
one perfect 100-score match and progressively lower scores for more distant
variants.
"""

from repro.analysis.report import render_similarity
from repro.analysis.similarity import HASH_COLUMNS


def test_table7_similarity_search(benchmark, bench_pipeline):
    searches = benchmark(lambda: bench_pipeline.table7_similarity_search(top=10))
    print()
    for baseline, results in searches.items():
        print(render_similarity(results, title=f"Table 7 (baseline: {baseline})"))
        print()

    aout_baseline = next(path for path in searches if path.endswith("a.out"))
    results = searches[aout_baseline]

    # Paper shape: every top candidate is icon; the best match is 100 across
    # all six hash columns; averages decrease monotonically; the raw-file hash
    # drops to 0 for distant variants while modules/compilers/objects stay 100
    # and the symbol hash stays high.
    assert all(result.label == "icon" for result in results)
    best = results[0]
    assert best.average == 100.0
    assert all(best.scores[column] == 100 for column in HASH_COLUMNS)
    averages = [result.average for result in results]
    assert averages == sorted(averages, reverse=True)
    assert averages[-1] < 100.0
    tail = results[1:]
    assert any(result.scores["FI_H"] < 100 for result in tail)
    assert all(result.scores["SY_H"] >= 80 for result in tail)
