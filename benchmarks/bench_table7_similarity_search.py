"""Table 7 -- similarity search identifying the UNKNOWN executable as icon.

This is the paper's headline qualitative result: an executable submitted under
a nondescript path/file name (``a.out``) is matched, via fuzzy-hash similarity
over six characteristics, to known instances of the ICON climate model, with
one perfect 100-score match and progressively lower scores for more distant
variants.
"""

from repro.analysis.report import render_similarity
from repro.analysis.similarity import HASH_COLUMNS, SimilaritySearch
from repro.util.tables import TextTable


def test_table7_similarity_search(benchmark, bench_pipeline):
    searches = benchmark(lambda: bench_pipeline.table7_similarity_search(top=10))
    print()
    for baseline, results in searches.items():
        print(render_similarity(results, title=f"Table 7 (baseline: {baseline})"))
        print()

    aout_baseline = next(path for path in searches if path.endswith("a.out"))
    results = searches[aout_baseline]

    # Paper shape: every top candidate is icon; the best match is 100 across
    # all six hash columns; averages decrease monotonically; the raw-file hash
    # drops to 0 for distant variants while modules/compilers/objects stay 100
    # and the symbol hash stays high.
    assert all(result.label == "icon" for result in results)
    best = results[0]
    assert best.average == 100.0
    assert all(best.scores[column] == 100 for column in HASH_COLUMNS)
    averages = [result.average for result in results]
    assert averages == sorted(averages, reverse=True)
    assert averages[-1] < 100.0
    tail = results[1:]
    assert any(result.scores["FI_H"] < 100 for result in tail)
    assert all(result.scores["SY_H"] >= 80 for result in tail)


def test_table7_similarity_search_brute_force(benchmark, bench_pipeline):
    """Timing reference: the same search on the all-pairs brute-force path."""
    searches = benchmark(lambda: bench_pipeline.table7_similarity_search(
        top=10, indexed=False))
    assert searches


def test_indexed_table7_is_byte_identical_with_fewer_comparisons(bench_campaign):
    """The n-gram index must not change a single byte of Table 7's output.

    Runs the search twice -- brute force and indexed (threshold forced to 0 so
    the index engages regardless of campaign scale) -- renders both result
    sets, and checks the renderings are byte-identical while the indexed run
    performed no more digest comparisons (strictly fewer at default scale).
    """
    brute = SimilaritySearch(bench_campaign.records, use_index=False)
    indexed = SimilaritySearch(bench_campaign.records, use_index=True, index_threshold=0)

    brute_out = brute.identify_unknown(top=10)
    indexed_out = indexed.identify_unknown(top=10)

    def rendered(searches) -> str:
        return "\n\n".join(
            render_similarity(results, title=f"Table 7 (baseline: {path})")
            for path, results in searches.items())

    assert rendered(brute_out) == rendered(indexed_out)
    assert brute_out == indexed_out

    stats = indexed.index_stats()
    table = TextTable(["path", "digest comparisons", "pairs pruned"],
                      title="Table 7: brute force vs n-gram index")
    table.add_row(["brute force", brute.comparisons, 0])
    table.add_row(["indexed", indexed.comparisons,
                   stats.pairs_pruned if stats is not None else 0])
    print()
    print(table.render())
    assert indexed.comparisons <= brute.comparisons
