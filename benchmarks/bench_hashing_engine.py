"""Hashing engine benchmark -- seed (per-byte) path vs single-pass engine.

Measures, on the same payloads and with identical digests verified first:

* single-thread CTPH throughput (MB/s) of the reference per-byte
  implementation vs :mod:`repro.hashing.engine` across payload regimes,
* batch hashing via ``FuzzyHasher.hash_many``, and
* end-to-end campaign wall-clock with the collector on the old vs new path.

Results are written as machine-readable JSON to ``BENCH_hashing.json`` in the
repository root (override with ``REPRO_BENCH_JSON``).  Setting
``REPRO_BENCH_SMOKE=1`` shrinks the payloads and the campaign for CI smoke
runs: equivalence is still asserted, timing is recorded, but the throughput
floor is not enforced (shared CI runners are too noisy to gate on).

On the full run the engine must beat the seed path by >= 3x single-thread
when the vectorised scan kernel is active (>= 1.05x on the pure-Python
fallback), and the default-scale campaign must get measurably faster.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.hashing.engine import scan_backend
from repro.hashing.ssdeep import FuzzyHasher
from repro.util.rng import SeededRNG
from repro.util.tables import TextTable
from repro.workload import CampaignConfig, DeploymentCampaign

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Collected by the tests below, dumped once at module teardown.
RESULTS: dict = {
    "bench": "hashing_engine",
    "backend": scan_backend(),
    "smoke": SMOKE,
}


def _json_path() -> Path:
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return Path(override)
    if SMOKE:
        # Smoke runs (CI) are throwaway measurements: keep the tracked
        # repo-root results file (the recorded full run) untouched.
        return Path(os.environ.get("TMPDIR", "/tmp")) / "BENCH_hashing_smoke.json"
    return Path(__file__).resolve().parent.parent / "BENCH_hashing.json"


@pytest.fixture(scope="module", autouse=True)
def _dump_results():
    yield
    path = _json_path()
    path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"\nwrote {path}")


def _payloads() -> list[tuple[str, bytes]]:
    scale = 8 if SMOKE else 1
    return [
        ("random-64k", SeededRNG(1).bytes(65536 // scale)),
        ("random-256k", SeededRNG(2).bytes(262144 // scale)),
        ("random-1m", SeededRNG(3).bytes(1048576 // scale)),
        ("text-like", ("\n".join(f"/opt/cray/pe/lib64/libsci_{i}.so" for i in
                                 range(4096 // scale))).encode()),
        ("repetitive", b"\x00\x01" * (131072 // scale)),
    ]


def _time(fn, *args) -> float:
    best = float("inf")
    for _ in range(1 if SMOKE else 3):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


class TestSingleThreadThroughput:
    def test_engine_speedup(self):
        hasher = FuzzyHasher()
        table = TextTable(["payload", "KiB", "seed MB/s", "engine MB/s", "speedup"],
                          title=f"CTPH throughput (scan backend: {scan_backend()})")
        per_payload = {}
        total_bytes = 0
        total_seed = 0.0
        total_engine = 0.0
        for name, payload in _payloads():
            assert hasher.hash(payload) == hasher.hash_reference(payload)
            seed_s = _time(hasher.hash_reference, payload)
            engine_s = _time(hasher.hash, payload)
            total_bytes += len(payload)
            total_seed += seed_s
            total_engine += engine_s
            per_payload[name] = {
                "bytes": len(payload),
                "seed_mbps": len(payload) / seed_s / 1e6,
                "engine_mbps": len(payload) / engine_s / 1e6,
                "speedup": seed_s / engine_s,
            }
            table.add_row([name, len(payload) // 1024,
                           f"{per_payload[name]['seed_mbps']:.2f}",
                           f"{per_payload[name]['engine_mbps']:.2f}",
                           f"{per_payload[name]['speedup']:.2f}x"])
        speedup = total_seed / total_engine
        table.add_row(["TOTAL", total_bytes // 1024,
                       f"{total_bytes / total_seed / 1e6:.2f}",
                       f"{total_bytes / total_engine / 1e6:.2f}",
                       f"{speedup:.2f}x"])
        print()
        print(table.render())
        RESULTS["single_thread"] = {
            "payloads": per_payload,
            "seed_mbps": total_bytes / total_seed / 1e6,
            "engine_mbps": total_bytes / total_engine / 1e6,
            "speedup": speedup,
        }
        if not SMOKE:
            floor = 3.0 if scan_backend() == "numpy" else 1.05
            assert speedup >= floor, (
                f"engine speedup {speedup:.2f}x below the {floor}x floor")

    def test_hash_many_batch(self):
        hasher = FuzzyHasher()
        payloads = [payload for _, payload in _payloads()] * (1 if SMOKE else 2)
        sequential = [hasher.hash(p) for p in payloads]
        batch_s = _time(hasher.hash_many, payloads)
        assert hasher.hash_many(payloads) == sequential
        RESULTS["hash_many"] = {
            "payload_count": len(payloads),
            "batch_seconds": batch_s,
        }


class TestCampaignWallClock:
    def test_campaign_old_vs_new_path(self):
        scale = 0.0025 if SMOKE else 0.01
        timings = {}
        digests = {}
        for engine in (False, True):
            config = CampaignConfig(scale=scale, seed=2025, loss_rate=0.0,
                                    hash_engine=engine)
            start = time.perf_counter()
            result = DeploymentCampaign(config=config).run()
            timings[engine] = time.perf_counter() - start
            digests[engine] = sorted((record.executable, record.file_h,
                                      record.strings_h, record.symbols_h)
                                     for record in result.records)
        assert digests[True] == digests[False]  # identical campaign output
        table = TextTable(["path", "seconds"],
                          title=f"Campaign wall-clock (scale={scale})")
        table.add_row(["seed (per-byte)", f"{timings[False]:.2f}"])
        table.add_row(["engine (single-pass)", f"{timings[True]:.2f}"])
        print()
        print(table.render())
        RESULTS["campaign"] = {
            "scale": scale,
            "seed_seconds": timings[False],
            "engine_seconds": timings[True],
            "speedup": timings[False] / timings[True],
        }
        if not SMOKE:
            # Single-sample campaign timings are noisy and hashing is only a
            # slice of campaign wall-clock; gate on "not slower" with a 10%
            # noise allowance (the recorded JSON carries the actual drop).
            assert timings[True] < timings[False] * 1.10, (
                "engine campaign regressed against the seed path")
