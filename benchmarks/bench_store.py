"""Tiered store benchmark -- gold query latency vs silver record scale.

The claim under test is the tier design's whole point: the gold rollups
answer the paper tables in O(answer), so query latency stays flat while the
silver record count grows 100x -- where the recompute-from-records
reference (the seed path every query used before the tiered store) grows
linearly.  Three arms at 1x / 10x / 100x record scale, answer size held
constant (same users, executables and object-set variants -- only the
record count grows, which is exactly the fleet-scale shape):

* **gold**: the four table queries (:meth:`TieredStore.user_activity`,
  :meth:`~repro.db.tiered.TieredStore.system_executables`,
  :meth:`~repro.db.tiered.TieredStore.shared_object_variants`,
  :meth:`~repro.db.tiered.TieredStore.python_interpreters`) served from the
  incrementally maintained rollups,
* **recompute**: the same four answers recomputed from the full record
  list through :mod:`repro.analysis.stats` -- the O(records) reference,
* **equivalence**: at every scale, every rollup answer is asserted
  byte-identical to the recompute reference before any timing is recorded
  (this assertion *is* the CI smoke gate).

Ingest wall-clock and the blob-dedup effect (distinct payloads stored vs
records ingested) are recorded alongside.  The flatness floor -- 100x gold
latency <= 2x of the 1x gold latency -- is enforced in full runs and
recorded skipped-with-reason in smoke mode, where sub-millisecond timings
on shared CI runners are dominated by scheduler noise.

Results are written as machine-readable JSON to ``BENCH_store.json`` in the
repository root (override with ``REPRO_BENCH_JSON``).
``REPRO_BENCH_SMOKE=1`` shrinks the record counts for CI smoke runs.
"""

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.analysis import stats
from repro.db.store import ProcessRecord
from repro.db.tiered import SqliteBackend, TieredStore
from repro.util.tables import TextTable

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SEED = 2025
#: Records at 1x scale; the arms run 1x / 10x / 100x.
BASE_RECORDS = 150 if SMOKE else 2_000
SCALE_FACTORS = (1, 10, 100)
#: Rounds of all-four-table queries per timing sample.
QUERY_ROUNDS = 10 if SMOKE else 50
#: Flatness ceiling: gold latency at 100x must stay within this factor of 1x.
FLATNESS_CEILING = 2.0

RESULTS: dict = {
    "bench": "store",
    "smoke": SMOKE,
    "seed": SEED,
    "base_records": BASE_RECORDS,
    "scale_factors": list(SCALE_FACTORS),
    "query_rounds": QUERY_ROUNDS,
}


def _json_path() -> Path:
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return Path(override)
    if SMOKE:
        # Smoke runs (CI) are throwaway measurements: keep the tracked
        # repo-root results file (the recorded full run) untouched.
        return Path(os.environ.get("TMPDIR", "/tmp")) / "BENCH_store_smoke.json"
    return Path(__file__).resolve().parent.parent / "BENCH_store.json"


@pytest.fixture(scope="module", autouse=True)
def _dump_results():
    yield
    path = _json_path()
    path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"\nwrote {path}")


#: Fixed answer-size pools: every scale draws from the same users,
#: executables and object-set variants, so the gold answer size is constant
#: while the record count grows.
_USERS = [(1000 + i, f"user_{i + 1}") for i in range(12)]
_SYSTEM_EXES = [f"/usr/bin/tool{i}" for i in range(12)] + ["/usr/bin/bash"]
_PYTHON_EXES = ["/opt/python/3.10/bin/python3", "/opt/python/3.9/bin/python3"]
_USER_EXES = [f"/home/proj/app{i}" for i in range(8)]
_OBJECT_SETS = [
    "/lib64/libc.so.6\n/lib64/libtinfo.so.5\n",
    "/lib64/libc.so.6\n/lib64/libtinfo.so.6\n/lib64/libm.so.6\n",
    "/lib64/libc.so.6\n/opt/cray/libsci.so\n" + "".join(
        f"/opt/cray/lib/libdep{i}.so\n" for i in range(40)),
    "",
]
_MAPS = ["|".join(f"7f{i:04x}000-7f{i:04x}fff r-xp /lib64/libc.so.6"
                  for i in range(30)),
         "|".join(f"55{i:04x}000-55{i:04x}fff rw-p [heap]"
                  for i in range(20))]


def _build_records(count: int, rng: random.Random) -> list[ProcessRecord]:
    """``count`` synthetic consolidated records with constant answer size."""
    records = []
    for index in range(count):
        uid, _name = rng.choice(_USERS)
        category = rng.choices(("system", "python", "user"),
                               weights=(70, 15, 15))[0]
        if category == "system":
            executable = rng.choice(_SYSTEM_EXES)
        elif category == "python":
            executable = rng.choice(_PYTHON_EXES)
        else:
            executable = rng.choice(_USER_EXES)
        records.append(ProcessRecord(
            jobid=f"j{rng.randrange(200)}",
            stepid="0",
            pid=1000 + index % 32768,
            hash=f"h{rng.randrange(64):02x}",
            host=f"nid{index % 64:06d}",
            time=100_000 + index,          # index-unique process keys
            uid=uid,
            executable=executable,
            category=category,
            objects=rng.choice(_OBJECT_SETS),
            objects_h=f"oh{rng.randrange(8)}",
            script_h=f"sh{rng.randrange(16)}" if category == "python" else "",
            modules="PrgEnv-cray:cray-mpich:cray-libsci",
            compilers="Cray clang 14;",
            maps=rng.choice(_MAPS),
            file_metadata="rwxr-xr-x root root 123456",
            python_packages=("numpy,scipy,netCDF4"
                             if category == "python" else ""),
        ))
    return records


def _key(record: ProcessRecord):
    return (record.jobid, record.stepid, record.pid, record.hash,
            record.host, record.time)


def _time_gold(tiered: TieredStore, user_names: dict[int, str]) -> float:
    start = time.perf_counter()
    for _ in range(QUERY_ROUNDS):
        tiered.user_activity()
        tiered.system_executables()
        tiered.shared_object_variants("bash")
        tiered.python_interpreters()
    return (time.perf_counter() - start) / QUERY_ROUNDS


def _time_recompute(records: list[ProcessRecord],
                    user_names: dict[int, str]) -> float:
    rounds = max(1, QUERY_ROUNDS // 10)  # O(records): 10x fewer rounds suffice
    start = time.perf_counter()
    for _ in range(rounds):
        stats.user_activity_table(records, user_names)
        stats.system_executable_table(records, user_names)
        stats.shared_object_variant_table(records, "bash")
        stats.python_interpreter_table(records, user_names)
    return (time.perf_counter() - start) / rounds


class TestGoldQueryLatency:
    def test_flat_latency_while_records_grow_100x(self):
        user_names = dict(_USERS)
        rng = random.Random(SEED)
        arms: dict[str, dict] = {}
        table = TextTable(
            ["scale", "records", "ingest s", "gold query s", "recompute s",
             "recompute/gold", "blobs"],
            title=f"Gold query latency vs record scale (base={BASE_RECORDS})")

        for factor in SCALE_FACTORS:
            label = f"{factor}x"
            records = _build_records(BASE_RECORDS * factor, rng)
            tiered = TieredStore(SqliteBackend(), shards=4,
                                 campaign="bench", user_names=user_names)
            start = time.perf_counter()
            tiered.ingest_records(records)
            ingest_seconds = time.perf_counter() - start

            # The CI gate: every rollup answer byte-identical to the
            # recompute reference, before any timing is trusted.
            reference = sorted(records, key=_key)
            assert tiered.user_activity() == \
                stats.user_activity_table(reference, user_names)
            assert tiered.system_executables() == \
                stats.system_executable_table(reference, user_names)
            assert tiered.shared_object_variants("bash") == \
                stats.shared_object_variant_table(reference, "bash")
            assert tiered.python_interpreters() == \
                stats.python_interpreter_table(reference, user_names)

            gold_seconds = _time_gold(tiered, user_names)
            recompute_seconds = _time_recompute(reference, user_names)
            store_stats = tiered.statistics()
            arms[label] = {
                "records": len(records),
                "ingest_seconds": ingest_seconds,
                "gold_query_seconds": gold_seconds,
                "recompute_seconds": recompute_seconds,
                "recompute_over_gold": recompute_seconds / gold_seconds,
                "blob_entries": store_stats["blob_entries"],
                "blob_dedup_hits": store_stats["blob_dedup_hits"],
                "equivalent": True,
            }
            table.add_row([label, f"{len(records):,}", f"{ingest_seconds:.2f}",
                           f"{gold_seconds * 1e3:.3f}ms",
                           f"{recompute_seconds * 1e3:.1f}ms",
                           f"{recompute_seconds / gold_seconds:.1f}x",
                           f"{store_stats['blob_entries']}"])
            tiered.close()
        print()
        print(table.render())

        ratio = (arms["100x"]["gold_query_seconds"]
                 / arms["1x"]["gold_query_seconds"])
        floor: dict = {"ceiling": FLATNESS_CEILING, "ratio_100x_vs_1x": ratio}
        if SMOKE:
            floor["enforced"] = False
            floor["skip_reason"] = (
                "smoke-scale gold queries finish in microseconds, where "
                "shared-runner scheduler noise swamps the 2x flatness "
                "ceiling; the full run enforces it")
            print(f"flatness floor SKIPPED (ratio {ratio:.2f}x): "
                  f"{floor['skip_reason']}")
        else:
            floor["enforced"] = True
            assert ratio <= FLATNESS_CEILING, (
                f"gold query latency grew {ratio:.2f}x while records grew "
                f"100x -- the rollups are no longer O(answer)")
        RESULTS["arms"] = arms
        RESULTS["flatness_floor"] = floor

    def test_blob_dedup_shares_payloads_across_campaigns(self):
        """Two campaigns over the same binaries store each payload once."""
        user_names = dict(_USERS)
        rng = random.Random(SEED + 1)
        tiered = TieredStore(SqliteBackend(), shards=4,
                             campaign="a", user_names=user_names)
        first = _build_records(BASE_RECORDS, rng)
        tiered.ingest_records(first, campaign="a")
        blobs_after_one = tiered.statistics()["blob_entries"]
        second = _build_records(BASE_RECORDS, rng)
        tiered.ingest_records(second, campaign="b")
        blobs_after_two = tiered.statistics()["blob_entries"]
        # Payload pools are shared, so the second campaign adds (nearly) no
        # new blobs -- the cross-campaign dedup the silver tier promises.
        assert blobs_after_two <= blobs_after_one + len(_OBJECT_SETS)
        RESULTS["cross_campaign_dedup"] = {
            "blobs_after_first_campaign": blobs_after_one,
            "blobs_after_second_campaign": blobs_after_two,
            "records_per_campaign": BASE_RECORDS,
        }
        tiered.close()
