"""Figure 5 -- loaded shared object (library) usage by software label."""

from repro.analysis.report import render_matrix


def test_fig5_library_matrix(benchmark, bench_pipeline):
    matrix = benchmark(lambda: bench_pipeline.figure5_library_matrix())
    print()
    print(render_matrix(matrix, title="Figure 5 (reproduced): libraries x software labels"))

    # Paper shape: siren is loaded by every label (it is the injected
    # collector); pthread by almost all; the ROCm stack belongs to the GPU
    # codes (LAMMPS, amber, RadRad); HDF5/NetCDF + climatedt identify icon;
    # the spack stack identifies janko; miniconda loads essentially nothing
    # informative beyond siren/pthread; amber uses the parallel HDF5/NetCDF
    # variants.
    for label in matrix.row_labels:
        assert matrix.value(label, "siren") == 1
    assert matrix.value("LAMMPS", "rocfft-rocm-fft") == 1
    assert matrix.value("amber", "hdf5-parallel-cray") == 1
    assert matrix.value("amber", "cuda-amber") == 1
    assert matrix.value("icon", "climatedt") == 1
    assert matrix.value("icon", "hdf5-cray") == 1
    assert matrix.value("icon", "openacc-cray") == 1
    assert matrix.value("janko", "blas-spack") == 1
    assert matrix.value("GROMACS", "gromacs") == 1
    assert matrix.value("GROMACS", "boost") == 1
    assert matrix.value("miniconda", "cray") == 0
    assert matrix.value("gzip", "pthread") == 0
    assert matrix.value("RadRad", "openacc-cray") == 1
    # Columns that should NOT be attributed to certain labels.
    assert matrix.value("LAMMPS", "climatedt") == 0
    assert matrix.value("icon", "rocfft-rocm-fft") == 0
