"""Table 3 -- top-10 most used executables from system directories."""

from repro.analysis.report import render_system_executables
from repro.analysis.stats import system_executable_count


def test_table3_system_executables(benchmark, bench_pipeline, bench_campaign):
    rows = benchmark(lambda: bench_pipeline.table3_system_executables(top=10))
    print()
    print(render_system_executables(rows, title="Table 3 (reproduced)"))
    total = system_executable_count(bench_campaign.records)
    print(f"Total distinct system-directory executables: {total}")

    names = [row.executable.rsplit("/", 1)[-1] for row in rows]
    by_name = {name: row for name, row in zip(names, rows)}
    # Paper shape: srun/bash are used by the most users; mkdir and rm dominate
    # the process counts (driven by user_1); bash shows multiple OBJECTS_H
    # variants while coreutils have exactly one.
    assert "srun" in names[:3] or "bash" in names[:3]
    assert {"mkdir", "rm"} <= set(names)
    heavy = max(rows, key=lambda row: row.process_count)
    assert heavy.executable.rsplit("/", 1)[-1] in {"mkdir", "rm"}
    assert by_name["bash"].unique_objects_h >= 2
    assert by_name["mkdir"].unique_objects_h == 1
    assert total >= 25
