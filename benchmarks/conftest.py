"""Shared fixtures for the benchmark harness.

One scaled deployment campaign is executed per benchmark session and shared by
every table/figure benchmark; the scale can be overridden with the
``REPRO_BENCH_SCALE`` environment variable (1.0 reproduces the paper's job
counts, the default keeps the harness laptop-friendly).
"""

from __future__ import annotations

import os

import pytest

from repro.core import AnalysisPipeline
from repro.workload import CampaignConfig, CampaignResult, DeploymentCampaign

#: Default fraction of the paper's job counts executed by the benchmark campaign.
DEFAULT_BENCH_SCALE = 0.01


def bench_scale() -> float:
    """Benchmark campaign scale (override with REPRO_BENCH_SCALE)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_BENCH_SCALE))


@pytest.fixture(scope="session", name="bench_scale_value")
def bench_scale_fixture() -> float:
    """The campaign scale as a fixture, so bench modules need not import conftest."""
    return bench_scale()


@pytest.fixture(scope="session")
def bench_campaign() -> CampaignResult:
    """The deployment campaign all table/figure benchmarks analyse."""
    config = CampaignConfig(scale=bench_scale(), seed=2025, loss_rate=0.0002)
    return DeploymentCampaign(config=config).run()


@pytest.fixture(scope="session")
def bench_pipeline(bench_campaign: CampaignResult) -> AnalysisPipeline:
    """Analysis pipeline over the benchmark campaign."""
    return AnalysisPipeline(bench_campaign.records, bench_campaign.user_names)
