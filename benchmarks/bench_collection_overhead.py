"""Ablation -- collection overhead and the Table 1 selective policy.

SIREN's design goal is lightweight collection: hashing is skipped for system
executables and for non-zero MPI ranks.  These benches measure per-process
collection cost under the default policy vs a collect-everything policy, and
the cost of the whole campaign machinery.
"""

import pytest

from repro.collector.hooks import SirenCollector
from repro.collector.policy import DEFAULT_POLICY, FULL_POLICY
from repro.corpus.builder import CorpusBuilder
from repro.corpus.packages import ICON
from repro.db.store import MessageStore
from repro.hpcsim.cluster import Cluster
from repro.hpcsim.slurm import JobScript, ProcessSpec, StepSpec
from repro.transport.channel import InMemoryChannel
from repro.transport.receiver import MessageReceiver
from repro.transport.sender import UDPSender
from repro.util.tables import TextTable
from repro.workload import CampaignConfig, DeploymentCampaign


def _environment():
    cluster = Cluster()
    corpus = CorpusBuilder(cluster)
    manifest = corpus.install_base_system()
    user = cluster.add_user("bench")
    corpus.install_package(ICON, user)
    return cluster, manifest


def _system_heavy_job(manifest) -> JobScript:
    return JobScript(name="system-heavy", modules=("siren",), steps=(StepSpec(processes=(
        ProcessSpec(executable=manifest.tool("bash"), count=10),
        ProcessSpec(executable=manifest.tool("mkdir"), count=30),
        ProcessSpec(executable=manifest.tool("rm"), count=30),
        ProcessSpec(executable=manifest.tool("cat"), count=5),
    )),))


def _run_policy(cluster, manifest, policy) -> int:
    store = MessageStore()
    channel = InMemoryChannel()
    receiver = MessageReceiver(store)
    receiver.attach(channel)
    collector = SirenCollector(cluster.filesystem, UDPSender(channel),
                               manifest.siren_library, policy=policy)
    cluster.register_preload_hook(collector)
    try:
        cluster.run_job("bench", _system_heavy_job(manifest))
    finally:
        cluster.runtime.unregister_hook(manifest.siren_library)
    receiver.flush()
    return store.message_count()


class TestSelectivePolicyAblation:
    @pytest.fixture(scope="class")
    def environment(self):
        return _environment()

    def test_default_policy_system_heavy_job(self, benchmark, environment):
        cluster, manifest = environment
        messages = benchmark.pedantic(_run_policy, args=(cluster, manifest, DEFAULT_POLICY),
                                      rounds=3, iterations=1)
        assert messages > 0

    def test_full_policy_system_heavy_job(self, benchmark, environment):
        cluster, manifest = environment
        messages = benchmark.pedantic(_run_policy, args=(cluster, manifest, FULL_POLICY),
                                      rounds=3, iterations=1)
        assert messages > 0

    def test_selective_policy_reduces_message_volume(self, environment):
        cluster, manifest = environment
        default_messages = _run_policy(cluster, manifest, DEFAULT_POLICY)
        full_messages = _run_policy(cluster, manifest, FULL_POLICY)
        table = TextTable(["policy", "UDP messages for one system-heavy job"],
                          title="Selective collection ablation (Table 1 policy)")
        table.add_row(["Table 1 (default)", default_messages])
        table.add_row(["collect everything", full_messages])
        print()
        print(table.render())
        assert default_messages < full_messages


class TestCampaignThroughput:
    def test_small_campaign_end_to_end(self, benchmark):
        """End-to-end cost of the whole pipeline at a tiny scale."""
        def run():
            config = CampaignConfig(scale=0.0, seed=99, min_jobs_per_user=1)
            return DeploymentCampaign(config=config).run()

        result = benchmark.pedantic(run, rounds=1, iterations=1)
        assert result.processes_run > 0
        per_process = (result.collector.processes_collected
                       + result.collector.processes_skipped)
        assert per_process == result.processes_run
