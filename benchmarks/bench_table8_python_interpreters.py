"""Table 8 -- Python interpreters, their users, processes and distinct scripts."""

from repro.analysis.report import render_python_interpreters


def test_table8_python_interpreters(benchmark, bench_pipeline):
    rows = benchmark(bench_pipeline.table8_python_interpreters)
    print()
    print(render_python_interpreters(rows, title="Table 8 (reproduced)"))

    by_name = {row.interpreter: row for row in rows}
    # Paper shape: three Python 3 interpreters; python3.10 has the most users
    # and the greatest script diversity relative to its process count;
    # python3.6 runs by far the most processes.
    assert set(by_name) == {"python3.6", "python3.10", "python3.11"}
    assert by_name["python3.10"].unique_users == 2
    assert by_name["python3.6"].unique_users == 1
    assert by_name["python3.11"].unique_users == 1
    assert by_name["python3.6"].process_count == max(row.process_count for row in rows)
    diversity = {name: row.unique_script_h / row.process_count for name, row in by_name.items()}
    assert diversity["python3.10"] == max(diversity.values())
