"""Figure 2 -- derived and filtered shared objects of user-directory executables."""

from repro.analysis.report import render_library_usage


def test_fig2_user_libraries(benchmark, bench_pipeline):
    rows = benchmark(bench_pipeline.figure2_library_usage)
    print()
    print(render_library_usage(rows, title="Figure 2 (reproduced)"))

    by_tag = {row.tag: row for row in rows}
    max_users = max(row.unique_users for row in rows)

    # Paper shape: siren (the injected collector) and pthread are loaded by
    # essentially every user executable; the Cray PE stack is next; the ROCm
    # stack, HDF5/NetCDF and climatedt appear for the GPU / climate codes;
    # climatedt is spread over many distinct executables relative to its job
    # count (the icon variant explosion).
    assert by_tag["siren"].unique_users == max_users
    assert by_tag["pthread"].unique_users >= max_users - 1
    assert by_tag["cray"].unique_users >= 3
    for tag in ("rocm", "rocfft-rocm-fft", "hdf5-cray", "netcdf-cray", "climatedt",
                "libsci-cray", "fabric-cray", "pmi-cray", "quadmath-cray", "gromacs",
                "torch-tykky", "spack"):
        assert tag in by_tag, f"missing Figure 2 tag {tag}"
    assert by_tag["climatedt"].unique_executables > by_tag["gromacs"].unique_executables
