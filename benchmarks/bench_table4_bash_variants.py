"""Table 4 -- distinct sets of shared objects loaded by /usr/bin/bash."""

from repro.analysis.report import render_shared_object_variants


def test_table4_bash_variants(benchmark, bench_pipeline):
    rows = benchmark(lambda: bench_pipeline.table4_shared_object_variants("bash"))
    print()
    print(render_shared_object_variants(rows, title="Table 4 (reproduced)"))

    # Paper shape: the default variant (system libtinfo, no libm) dominates;
    # at least one variant resolves libtinfo from a user/spack install, and
    # one variant additionally drags in libm.
    assert len(rows) >= 2
    assert rows[0].process_count == max(row.process_count for row in rows)
    assert rows[0].distinguishing["libtinfo"].startswith("/lib64/")
    assert rows[0].distinguishing["libm"] == ""
    assert any(row.distinguishing["libtinfo"]
               and not row.distinguishing["libtinfo"].startswith("/lib64/") for row in rows[1:])
    assert any(row.distinguishing["libm"] for row in rows[1:])
