"""Table 6 -- compiler identification strings of applications in user directories."""

from repro.analysis.report import render_compiler_combinations


def test_table6_compiler_combinations(benchmark, bench_pipeline):
    rows = benchmark(bench_pipeline.table6_compilers)
    print()
    print(render_compiler_combinations(rows, title="Table 6 (reproduced)"))

    combos = {row.compilers for row in rows}
    # Paper shape: several binaries carry multiple toolchains; the Cray,
    # AMD/ROCm, conda and rust toolchains all appear; a plain single-linker
    # combination (LLD [AMD]) is among the most widely used.
    assert any(len(combo) >= 2 for combo in combos)
    assert ("GCC [SUSE]", "clang [Cray]") in combos
    assert ("GCC [Red Hat]", "GCC [conda]", "rustc") in combos
    assert ("GCC [SUSE]", "clang [AMD]") in combos
    assert any(combo == ("LLD [AMD]",) or "LLD [AMD]" in combo for combo in combos)
    top = rows[0]
    assert top.unique_users >= 2
