"""Table 5 -- derived labels for user applications."""

from repro.analysis.labels import UNKNOWN_LABEL
from repro.analysis.report import render_labels


def test_table5_user_labels(benchmark, bench_pipeline):
    rows = benchmark(bench_pipeline.table5_user_applications)
    print()
    print(render_labels(rows, title="Table 5 (reproduced)"))

    by_label = {row.label: row for row in rows}
    # Paper shape: LAMMPS and GROMACS are the only multi-user applications,
    # GROMACS is a single shared executable, icon has by far the most distinct
    # executables of a single user, and one UNKNOWN instance remains.
    assert by_label["LAMMPS"].unique_users == 2
    assert by_label["GROMACS"].unique_users == 2
    assert by_label["GROMACS"].unique_file_h == 1
    single_user_labels = [row for row in rows if row.label not in ("LAMMPS", "GROMACS")]
    assert all(row.unique_users == 1 for row in single_user_labels)
    assert by_label["icon"].unique_file_h == max(row.unique_file_h for row in rows)
    assert UNKNOWN_LABEL in by_label
    expected = {"LAMMPS", "GROMACS", "miniconda", "janko", "icon", "amber", "gzip",
                "alexandria", "RadRad", UNKNOWN_LABEL}
    assert expected <= set(by_label)
