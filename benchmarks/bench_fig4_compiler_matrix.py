"""Figure 4 -- compiler identification strings by software label (usage matrix)."""

from repro.analysis.report import render_matrix
from repro.corpus.toolchains import TOOLCHAIN_ORDER


def test_fig4_compiler_matrix(benchmark, bench_pipeline):
    matrix = benchmark(lambda: bench_pipeline.figure4_compiler_matrix())
    print()
    print(render_matrix(matrix, title="Figure 4 (reproduced): compilers x software labels"))

    # Paper shape (Figure 4): LAMMPS uses GCC [SUSE] + LLD [AMD]; GROMACS only
    # LLD [AMD]; miniconda the Red Hat / conda / rust stack; janko GCC [SUSE] +
    # GCC [HPE]; icon GCC [SUSE] + Cray/AMD clang; amber GCC [SUSE] + clang
    # [AMD]; gzip LLD [AMD]; alexandria GCC [SUSE]; RadRad GCC [SUSE] + clang [Cray].
    assert matrix.value("LAMMPS", "GCC [SUSE]") == 1
    assert matrix.value("LAMMPS", "LLD [AMD]") == 1
    assert matrix.value("GROMACS", "LLD [AMD]") == 1
    assert matrix.value("GROMACS", "GCC [SUSE]") == 0
    assert matrix.value("miniconda", "GCC [Red Hat]") == 1
    assert matrix.value("miniconda", "GCC [conda]") == 1
    assert matrix.value("miniconda", "rustc") == 1
    assert matrix.value("janko", "GCC [HPE]") == 1
    assert matrix.value("icon", "clang [Cray]") == 1
    assert matrix.value("icon", "clang [AMD]") == 1
    assert matrix.value("amber", "clang [AMD]") == 1
    assert matrix.value("gzip", "LLD [AMD]") == 1
    assert matrix.value("alexandria", "GCC [SUSE]") == 1
    assert matrix.value("RadRad", "clang [Cray]") == 1
    # Every observed compiler column is one of the paper's eight toolchains.
    assert set(matrix.column_labels) <= set(TOOLCHAIN_ORDER)
