"""Ablation -- fuzzy hashing vs cryptographic hashing vs byte-by-byte comparison.

Section 2.1 motivates fuzzy hashing with two claims: (a) comparing fuzzy
hashes is faster and more scalable than comparing files byte-by-byte, and
(b) unlike cryptographic hashes, fuzzy hashes still recognise slightly
modified executables.  These benches measure both on the synthetic corpus.
"""

import hashlib
import time

import pytest

from repro.analysis.similarity import SimilaritySearch
from repro.corpus.builder import CorpusBuilder
from repro.corpus.packages import ICON
from repro.hashing.ssdeep import FuzzyHasher, compare, fuzzy_hash
from repro.hpcsim.cluster import Cluster
from repro.util.errors import AnalysisError
from repro.util.rng import SeededRNG
from repro.util.tables import TextTable
from repro.workload import CampaignConfig, DeploymentCampaign


@pytest.fixture(scope="module")
def icon_variants() -> list[bytes]:
    """The raw bytes of every installed ICON variant (realistic executables)."""
    cluster = Cluster()
    builder = CorpusBuilder(cluster)
    builder.install_base_system()
    user = cluster.add_user("bench")
    records = builder.install_package(ICON, user)
    return [cluster.filesystem.read(record.path) for record in records]


@pytest.fixture(scope="module")
def icon_digests(icon_variants) -> list[str]:
    return [fuzzy_hash(content) for content in icon_variants]


class TestHashingThroughput:
    def test_fuzzy_hashing_one_executable(self, benchmark, icon_variants):
        digest = benchmark(fuzzy_hash, icon_variants[0])
        assert digest.count(":") == 2

    def test_sha256_one_executable(self, benchmark, icon_variants):
        """Reference point: a cryptographic hash of the same executable."""
        digest = benchmark(lambda data: hashlib.sha256(data).hexdigest(), icon_variants[0])
        assert len(digest) == 64


class TestComparisonScaling:
    def test_pairwise_fuzzy_comparison(self, benchmark, icon_digests):
        def all_pairs() -> int:
            total = 0
            for i in range(len(icon_digests)):
                for j in range(i + 1, len(icon_digests)):
                    total += compare(icon_digests[i], icon_digests[j])
            return total

        total = benchmark(all_pairs)
        assert total > 0

    def test_pairwise_byte_comparison(self, benchmark, icon_variants):
        """The alternative SIREN avoids: comparing raw files byte-by-byte."""
        def all_pairs() -> int:
            matches = 0
            for i in range(len(icon_variants)):
                for j in range(i + 1, len(icon_variants)):
                    a, b = icon_variants[i], icon_variants[j]
                    matches += sum(x == y for x, y in zip(a, b))
            return matches

        assert benchmark(all_pairs) > 0

    def test_fuzzy_comparison_is_cheaper_than_byte_comparison(self, icon_digests, icon_variants):
        import time

        start = time.perf_counter()
        for i in range(len(icon_digests)):
            for j in range(i + 1, len(icon_digests)):
                compare(icon_digests[i], icon_digests[j])
        fuzzy_time = time.perf_counter() - start

        start = time.perf_counter()
        for i in range(len(icon_variants)):
            for j in range(i + 1, len(icon_variants)):
                a, b = icon_variants[i], icon_variants[j]
                sum(x == y for x, y in zip(a, b))
        byte_time = time.perf_counter() - start

        table = TextTable(["method", "seconds (all pairs)"], title="Comparison cost")
        table.add_row(["fuzzy-hash compare", f"{fuzzy_time:.4f}"])
        table.add_row(["byte-by-byte", f"{byte_time:.4f}"])
        print()
        print(table.render())
        assert fuzzy_time < byte_time


class TestRecognitionAbility:
    def test_crypto_hash_fails_on_variants_fuzzy_succeeds(self, icon_variants):
        """A one-byte change defeats SHA-256 matching but not fuzzy matching."""
        original = icon_variants[0]
        mutated = bytearray(original)
        mutated[len(mutated) // 2] ^= 0xFF
        mutated = bytes(mutated)

        assert hashlib.sha256(original).hexdigest() != hashlib.sha256(mutated).hexdigest()
        assert compare(fuzzy_hash(original), fuzzy_hash(mutated)) >= 90

    def test_variant_recognition_rate(self, icon_variants, icon_digests):
        """Most ICON variants recognise each other (score > 0) via the raw-file hash."""
        recognised = 0
        pairs = 0
        for i in range(len(icon_digests)):
            for j in range(i + 1, len(icon_digests)):
                pairs += 1
                if compare(icon_digests[i], icon_digests[j]) > 0:
                    recognised += 1
        assert recognised / pairs > 0.5

    def test_unrelated_payloads_not_recognised(self):
        rng = SeededRNG(5)
        a = fuzzy_hash(rng.bytes(16384))
        b = fuzzy_hash(rng.bytes(16384))
        assert compare(a, b) == 0

    def test_signature_size_is_compact(self, icon_variants, icon_digests):
        """Fuzzy digests are tiny compared with the executables they summarise."""
        total_content = sum(len(content) for content in icon_variants)
        total_digest = sum(len(digest) for digest in icon_digests)
        assert total_digest < total_content / 100


class TestIndexedSimilarityScaling:
    """Brute-force vs n-gram-indexed similarity search across campaign scales.

    The paper's Table 7 search is all-pairs: every UNKNOWN baseline meets
    every known instance on six hash columns, and the pairwise ablation
    matrix meets every instance pair.  The inverted 7-gram index
    (:mod:`repro.analysis.simindex`) only ever hands plausibly-similar pairs
    to the signature alignment; this bench runs both paths over campaigns of
    increasing scale, checks the outputs stay identical, and reports how many
    digest comparisons the index avoided.
    """

    def test_indexed_search_prunes_comparisons_across_scales(self, bench_campaign,
                                                             bench_scale_value):
        scales = sorted({0.0025, 0.005, 0.01, bench_scale_value})
        table = TextTable(
            ["scale", "instances", "brute cmps", "indexed cmps", "pruned %",
             "brute ms", "indexed ms"],
            title="Similarity search: brute force vs n-gram index")
        measured: list[tuple[float, int, int]] = []

        for scale in scales:
            if scale == bench_scale_value:
                records = bench_campaign.records
            else:
                config = CampaignConfig(scale=scale, seed=2025, loss_rate=0.0002)
                records = DeploymentCampaign(config=config).run().records

            brute = SimilaritySearch(records, use_index=False)
            indexed = SimilaritySearch(records, use_index=True, index_threshold=0)

            brute_out, brute_ms = self._run_search(brute)
            indexed_out, indexed_ms = self._run_search(indexed)
            assert brute_out == indexed_out  # identical tables + matrix, every scale

            pruned = 100.0 * (1 - indexed.comparisons / brute.comparisons) \
                if brute.comparisons else 0.0
            table.add_row([f"{scale:g}", len(brute.instances), brute.comparisons,
                           indexed.comparisons, f"{pruned:.1f}",
                           f"{brute_ms:.1f}", f"{indexed_ms:.1f}"])
            measured.append((scale, brute.comparisons, indexed.comparisons))

        print()
        print(table.render())

        at_scale = [(b, i) for scale, b, i in measured if scale >= 0.01]
        assert at_scale, "bench must include at least one scale >= 0.01"
        for brute_comparisons, indexed_comparisons in at_scale:
            assert indexed_comparisons < brute_comparisons

    @staticmethod
    def _run_search(search: SimilaritySearch) -> tuple[tuple, float]:
        """Run Table 7 + the pairwise matrix; return (results, elapsed ms)."""
        start = time.perf_counter()
        try:
            searches = search.identify_unknown(top=10)
        except AnalysisError:  # no UNKNOWN instance at tiny scales
            searches = {}
        matrix = search.pairwise_average_matrix()
        elapsed_ms = (time.perf_counter() - start) * 1000
        return (searches, matrix), elapsed_ms


class TestHasherConfiguration:
    def test_disabling_double_signature_requirement(self, icon_variants):
        """Ablation of the common-substring guard: scores can only grow without it."""
        strict = FuzzyHasher(require_common_substring=True)
        loose = FuzzyHasher(require_common_substring=False)
        a, b = icon_variants[0], icon_variants[1]
        strict_score = strict.compare(strict.hash(a), strict.hash(b))
        loose_score = loose.compare(loose.hash(a), loose.hash(b))
        assert loose_score >= strict_score
