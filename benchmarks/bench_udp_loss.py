"""Ablation -- transport degradation vs completeness of the consolidated records.

Section 3.1 reports that roughly 0.02 % of the jobs have missing fields
attributable to UDP message loss, and argues that hashing each collected list
keeps partially lost records analysable.  This bench sweeps two axes:

* the plain datagram loss rate (the original ablation), and
* the full deterministic fault-plan presets from :mod:`repro.faults`
  (loss / duplication / reordering / corruption / truncation / jitter and a
  mixed-hostile combination), plus a supervised worker-crash arm -- the
  degradation curves behind the self-healing ingest claims.

For every preset the curve records the *recovered-record fraction* (records
consolidated under the fault plan relative to the fault-free baseline), the
incomplete fraction, decode/quarantine counters and the channel's own fault
counters; the crash arm additionally records supervised restart counts and
replay losses.  Results are written as machine-readable JSON to
``BENCH_faults.json`` in the repository root (override with
``REPRO_BENCH_JSON``).  Setting ``REPRO_BENCH_SMOKE=1`` shrinks the campaigns
for CI smoke runs: curve shape is still asserted, absolute values are
recorded but not gated.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.faults import FaultPlan, WorkerFaultProfile, preset_plans
from repro.util.tables import TextTable
from repro.workload import CampaignConfig, DeploymentCampaign

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SCALE = 0.0025 if SMOKE else 0.01
SEED = 11

#: Collected by the tests below, dumped once at module teardown.
RESULTS: dict = {
    "bench": "faults",
    "smoke": SMOKE,
    "scale": SCALE,
    "seed": SEED,
}


def _json_path() -> Path:
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return Path(override)
    if SMOKE:
        # Smoke runs (CI) are throwaway measurements: keep the tracked
        # repo-root results file (the recorded full run) untouched.
        return Path(os.environ.get("TMPDIR", "/tmp")) / "BENCH_faults_smoke.json"
    return Path(__file__).resolve().parent.parent / "BENCH_faults.json"


@pytest.fixture(scope="module", autouse=True)
def _dump_results():
    yield
    path = _json_path()
    path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"\nwrote {path}")


def _run_with_loss(loss_rate: float):
    config = CampaignConfig(scale=0.0, seed=SEED, loss_rate=loss_rate,
                            min_jobs_per_user=2)
    return DeploymentCampaign(config=config).run()


@pytest.mark.parametrize("loss_rate", [0.0, 0.0002, 0.01, 0.05])
def test_udp_loss_sweep(benchmark, loss_rate):
    result = benchmark.pedantic(_run_with_loss, args=(loss_rate,), rounds=1, iterations=1)
    incomplete = result.incomplete_fraction
    observed = getattr(result.channel, "observed_loss_rate", 0.0)
    table = TextTable(["configured loss", "observed datagram loss", "incomplete records"],
                      title="UDP loss ablation")
    table.add_row([f"{loss_rate:.4f}", f"{observed:.4f}", f"{incomplete:.4f}"])
    print()
    print(table.render())

    # Shape: completeness degrades monotonically-ish with loss; at the paper's
    # operating point (0.02 % datagram loss) the incomplete fraction stays tiny.
    if loss_rate == 0.0:
        assert incomplete == 0.0
    elif loss_rate <= 0.0002:
        assert incomplete < 0.02
    elif loss_rate >= 0.05:
        assert incomplete > 0.0
    RESULTS.setdefault("udp_loss", {})[f"{loss_rate:.4f}"] = {
        "observed_loss_rate": observed,
        "incomplete_fraction": incomplete,
        "records": len(result.records),
    }


def test_list_hashes_survive_partial_loss():
    """Even heavily lossy collection keeps the per-list hashes usable for similarity."""
    lossless = _run_with_loss(0.0)
    lossy = _run_with_loss(0.05)
    lossless_hashes = {r.objects_h for r in lossless.records if r.objects_h}
    lossy_hashes = {r.objects_h for r in lossy.records if r.objects_h}
    # The same object-list hashes are still observed despite datagram loss.
    assert lossy_hashes & lossless_hashes


# --------------------------------------------------------------------- #
# degradation curves over the fault-plan presets
# --------------------------------------------------------------------- #
def _run_with_plan(plan: FaultPlan | None, **overrides):
    config = CampaignConfig(scale=SCALE, seed=SEED, loss_rate=0.0,
                            ingest_mode="streaming", fault_plan=plan,
                            **overrides)
    campaign = DeploymentCampaign(config=config)
    started = time.perf_counter()
    result = campaign.run()
    return result, time.perf_counter() - started


class TestFaultDegradationCurve:
    def test_preset_sweep(self):
        plans = preset_plans(seed=SEED)
        baseline, _ = _run_with_plan(plans["baseline"])
        assert baseline.records
        table = TextTable(
            ["preset", "recovered", "incomplete", "decode errors", "quarantined"],
            title="fault-plan degradation curve (streaming ingest)")
        curve: dict = {}
        for name, plan in plans.items():
            result, seconds = _run_with_plan(plan)
            recovered = len(result.records) / len(baseline.records)
            point = {
                "recovered_record_fraction": recovered,
                "incomplete_fraction": result.incomplete_fraction,
                "decode_errors": result.decode_errors,
                "quarantined": result.quarantined,
                "worker_restarts": result.worker_restarts,
                "seconds": seconds,
            }
            if result.fault_counters is not None:
                point["fault_counters"] = result.fault_counters
            curve[name] = point
            table.add_row([name, f"{recovered:.3f}",
                           f"{result.incomplete_fraction:.3f}",
                           str(result.decode_errors), str(result.quarantined)])
        print()
        print(table.render())
        RESULTS["presets"] = curve

        # Curve shape, not absolute values: the clean presets change nothing,
        # pure duplication changes nothing, and recovery degrades with the
        # configured loss rate.
        assert curve["baseline"]["recovered_record_fraction"] == 1.0
        assert curve["dup-10pct"]["recovered_record_fraction"] == 1.0
        assert curve["jitter-10pct"]["recovered_record_fraction"] == 1.0
        assert (curve["loss-20pct"]["recovered_record_fraction"]
                <= curve["loss-5pct"]["recovered_record_fraction"]
                <= curve["loss-1pct"]["recovered_record_fraction"]
                <= 1.0)
        # Pure loss degrades *completeness*, not record count: a lossy group
        # still closes into a (flagged) record, which is the paper's
        # list-hash robustness claim.  The incomplete curve must rise.
        assert (curve["baseline"]["incomplete_fraction"]
                <= curve["loss-1pct"]["incomplete_fraction"]
                <= curve["loss-5pct"]["incomplete_fraction"]
                <= curve["loss-20pct"]["incomplete_fraction"])
        assert curve["loss-20pct"]["incomplete_fraction"] > 0
        # Corruption/truncation produce genuine decode errors, and the
        # quarantine keeps (a bounded number of) them for forensics.
        for name in ("corrupt-5pct", "truncate-5pct", "mixed-hostile"):
            assert curve[name]["decode_errors"] > 0
            assert 0 < curve[name]["quarantined"] <= max(
                curve[name]["decode_errors"], 1)

    def test_worker_crash_arm(self):
        plan = FaultPlan(seed=SEED, workers=(
            WorkerFaultProfile(shard=0, kill_after_batches=2),
            WorkerFaultProfile(shard=1, kill_after_batches=4),
        ))
        baseline, _ = _run_with_plan(None, ingest_workers="process",
                                     ingest_shards=2)
        config = CampaignConfig(scale=SCALE, seed=SEED, loss_rate=0.0,
                                ingest_mode="streaming",
                                ingest_workers="process", ingest_shards=2,
                                fault_plan=plan)
        campaign = DeploymentCampaign(config=config)
        campaign.prepare()
        campaign.ingest._pool.drain_grace = 1.0  # keep the heal fast
        started = time.perf_counter()
        result = campaign.run()
        seconds = time.perf_counter() - started
        stats = result.ingest.statistics()
        recovered = len(result.records) / len(baseline.records)
        RESULTS["worker_crash"] = {
            "recovered_record_fraction": recovered,
            "worker_restarts": result.worker_restarts,
            "restart_lost_groups": stats["restart_lost_groups"],
            "restart_lost_datagrams": stats["restart_lost_datagrams"],
            "resend_replayed_batches": stats["resend_replayed_batches"],
            "seconds": seconds,
        }
        print(f"\nworker-crash arm: {recovered:.3f} recovered after "
              f"{result.worker_restarts} restart(s) in {seconds:.2f}s")
        # The whole point of the resend buffer: both kills heal with zero
        # record loss -- the degradation curve for crashes is flat.
        assert result.worker_restarts == 2
        assert stats["restart_lost_groups"] == 0
        assert stats["restart_lost_datagrams"] == 0
        assert recovered == 1.0
