"""Ablation -- UDP loss vs completeness of the consolidated records.

Section 3.1 reports that roughly 0.02 % of the jobs have missing fields
attributable to UDP message loss, and argues that hashing each collected list
keeps partially lost records analysable.  This bench sweeps the datagram loss
rate and reports the fraction of incomplete consolidated records.
"""

import pytest

from repro.util.tables import TextTable
from repro.workload import CampaignConfig, DeploymentCampaign


def _run_with_loss(loss_rate: float):
    config = CampaignConfig(scale=0.0, seed=11, loss_rate=loss_rate, min_jobs_per_user=2)
    return DeploymentCampaign(config=config).run()


@pytest.mark.parametrize("loss_rate", [0.0, 0.0002, 0.01, 0.05])
def test_udp_loss_sweep(benchmark, loss_rate):
    result = benchmark.pedantic(_run_with_loss, args=(loss_rate,), rounds=1, iterations=1)
    incomplete = result.incomplete_fraction
    observed = getattr(result.channel, "observed_loss_rate", 0.0)
    table = TextTable(["configured loss", "observed datagram loss", "incomplete records"],
                      title="UDP loss ablation")
    table.add_row([f"{loss_rate:.4f}", f"{observed:.4f}", f"{incomplete:.4f}"])
    print()
    print(table.render())

    # Shape: completeness degrades monotonically-ish with loss; at the paper's
    # operating point (0.02 % datagram loss) the incomplete fraction stays tiny.
    if loss_rate == 0.0:
        assert incomplete == 0.0
    elif loss_rate <= 0.0002:
        assert incomplete < 0.02
    elif loss_rate >= 0.05:
        assert incomplete > 0.0


def test_list_hashes_survive_partial_loss():
    """Even heavily lossy collection keeps the per-list hashes usable for similarity."""
    lossless = _run_with_loss(0.0)
    lossy = _run_with_loss(0.05)
    lossless_hashes = {r.objects_h for r in lossless.records if r.objects_h}
    lossy_hashes = {r.objects_h for r in lossy.records if r.objects_h}
    # The same object-list hashes are still observed despite datagram loss.
    assert lossy_hashes & lossless_hashes
