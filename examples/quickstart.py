#!/usr/bin/env python3
"""Quickstart: deploy SIREN on a simulated cluster and identify what ran.

This example walks through the whole pipeline on a tiny, fully deterministic
setup:

1. build a simulated HPC cluster and install the synthetic software corpus
   (system tools, shared libraries, Python environments, the ICON climate
   model and LAMMPS for one user, and the ``siren.so`` collection library),
2. deploy the SIREN framework (collector + UDP transport + SQLite store),
3. run a couple of batch jobs -- one of which executes a byte-identical copy
   of an ICON executable under the nondescript name ``a.out``,
4. consolidate the collected UDP messages into per-process records, and
5. analyse them: software labels, compiler usage, and the fuzzy-hash
   similarity search that identifies the unknown ``a.out`` as ICON.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import report
from repro.core import AnalysisPipeline, SirenConfig, SirenFramework
from repro.corpus.builder import CorpusBuilder
from repro.corpus.packages import ICON, LAMMPS
from repro.hpcsim.cluster import Cluster
from repro.hpcsim.slurm import JobScript, ProcessSpec, StepSpec


def build_cluster() -> tuple[Cluster, "CorpusBuilder", object]:
    """Create the simulated system and install the software corpus."""
    cluster = Cluster()
    corpus = CorpusBuilder(cluster)
    manifest = corpus.install_base_system()

    user = cluster.add_user("erin")
    corpus.install_package(ICON, user)
    corpus.install_package(LAMMPS, user)
    return cluster, corpus, manifest


def run_jobs(cluster: Cluster, manifest) -> None:
    """Submit two opt-in jobs (they load the ``siren`` module) and one that does not."""
    icon = manifest.find_executable("icon", "cray-r1", "erin")
    unknown = manifest.find_executable("icon", "unknown-copy", "erin")
    lammps = manifest.find_executable("LAMMPS", "gpu-2023", "erin")

    climate_job = JobScript(
        name="climate-production",
        modules=("siren", "PrgEnv-cray", "cray-netcdf", *icon.required_modules),
        steps=(StepSpec(processes=(
            ProcessSpec(executable=manifest.tool("bash"), count=3),
            ProcessSpec(executable=manifest.tool("srun")),
            ProcessSpec(executable=icon.path, ranks=4),
            # The "mystery" executable: a copy of icon under a nondescript name.
            ProcessSpec(executable=unknown.path, ranks=2),
        )),),
    )

    md_job = JobScript(
        name="lammps-run",
        modules=("siren", "rocm", *lammps.required_modules),
        steps=(StepSpec(processes=(
            ProcessSpec(executable=manifest.tool("bash"), count=2),
            ProcessSpec(executable=manifest.tool("srun")),
            ProcessSpec(executable=lammps.path, ranks=4),
        )),),
    )

    # A job that does not opt in: SIREN never sees it.
    invisible_job = JobScript(
        name="not-opted-in",
        modules=tuple(icon.required_modules),
        steps=(StepSpec(processes=(ProcessSpec(executable=icon.path, ranks=2),)),),
    )

    for job in (climate_job, md_job, invisible_job):
        cluster.run_job("erin", job)


def main() -> None:
    cluster, _corpus, manifest = build_cluster()

    framework = SirenFramework(SirenConfig(loss_rate=0.0))
    framework.deploy(cluster, siren_library_path=manifest.siren_library)

    run_jobs(cluster, manifest)

    records = framework.consolidate()
    pipeline = AnalysisPipeline(records, cluster.users.anonymize())

    print(f"Collected {len(records)} process records "
          f"from {cluster.scheduler.job_count} jobs\n")

    print(report.render_labels(pipeline.table5_user_applications(),
                               title="Derived software labels (Table 5 style)"))
    print()
    print(report.render_compiler_combinations(pipeline.table6_compilers(),
                                              title="Compiler usage (Table 6 style)"))
    print()

    searches = pipeline.table7_similarity_search(top=5)
    for baseline, results in searches.items():
        print(report.render_similarity(
            results, title=f"Similarity search for unknown executable {baseline}"))
        best = results[0]
        print(f"-> best match: {best.label} (average similarity {best.average:.1f})\n")

    print("Deployment statistics:", framework.statistics())


if __name__ == "__main__":
    main()
