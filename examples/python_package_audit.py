#!/usr/bin/env python3
"""Audit imported Python packages and recognise repeated executions.

Two forward-looking use cases from the paper's conclusion:

* cross-referencing imported Python packages against known package lists to
  detect potential slopsquatting / insecure packages (Section 4.4), and
* recognising repeated executions of the same software across jobs, which is
  the prerequisite for performance-variability studies (Section 1, use case a).

Run with::

    python examples/python_package_audit.py [scale]
"""

from __future__ import annotations

import sys

from repro.analysis.pythonpkgs import audit_python_packages
from repro.analysis.recognition import recognize_repeated_executions
from repro.core import AnalysisPipeline
from repro.corpus.python_env import PYTHON_PACKAGES_BY_NAME
from repro.util.tables import TextTable
from repro.workload import CampaignConfig, DeploymentCampaign


def main(scale: float = 0.01) -> None:
    print(f"Running the opt-in deployment campaign at scale {scale} ...")
    result = DeploymentCampaign(CampaignConfig(scale=scale, seed=5)).run()
    pipeline = AnalysisPipeline(result.records, result.user_names)

    # --- Python package audit -------------------------------------------- #
    # Pretend the site's allow-list is missing two packages that users import
    # and that one imported package version is on a safety-db style list.
    known = set(PYTHON_PACKAGES_BY_NAME) - {"mpi4py", "zoneinfo"}
    insecure = {"lzma"}
    findings = audit_python_packages(result.records, known_packages=known,
                                     insecure_packages=insecure,
                                     user_names=result.user_names)
    table = TextTable(["package", "reason", "processes", "users"],
                      title="Python package audit findings")
    for finding in findings:
        table.add_row([finding.package, finding.reason, finding.process_count,
                       ", ".join(finding.users)])
    print()
    print(table.render() if findings else "No suspicious imported packages.")

    # --- Repeated-execution recognition ----------------------------------- #
    report = recognize_repeated_executions(result.records, threshold=55)
    recognition = TextTable(["software family", "distinct executables", "jobs", "processes",
                             "repeated?"], title="Recognised software families")
    for row in report.rows:
        recognition.add_row([row.label, row.distinct_executables, row.job_count,
                             row.process_count, row.repeated])
    print()
    print(recognition.render())
    repeated = [row.label for row in report.repeated_families()]
    print(f"\nSoftware executed repeatedly across jobs: {', '.join(repeated) or 'none'}")

    # For completeness, show the Figure 3 style package table too.
    top = pipeline.figure3_python_packages()[:10]
    usage = TextTable(["package", "users", "jobs", "processes"],
                      title="Most imported Python packages")
    for row in top:
        usage.add_row([row.package, row.unique_users, row.job_count, row.process_count])
    print()
    print(usage.render())


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.01)
