#!/usr/bin/env python3
"""Detect deviating shared-library environments for a system executable.

Section 4.2 of the paper shows that the same ``/usr/bin/bash`` appears with
three distinct sets of loaded shared objects, caused by user environments that
prepend alternative ``libtinfo`` installs (and transitively drag in ``libm``).
Detecting such deviations helps support teams troubleshoot "standard tool
behaves unexpectedly" tickets.

This example runs a small campaign, groups every system executable by its
exact set of loaded objects, and reports the executables whose minority
variants deviate from the dominant environment -- including which library
paths differ.

Run with::

    python examples/detect_library_deviation.py [scale]
"""

from __future__ import annotations

import sys
from collections import Counter

from repro.analysis import report
from repro.analysis.stats import shared_object_variant_table
from repro.collector.classify import ExecutableCategory
from repro.core import AnalysisPipeline
from repro.workload import CampaignConfig, DeploymentCampaign


def main(scale: float = 0.01) -> None:
    print(f"Running the opt-in deployment campaign at scale {scale} ...")
    result = DeploymentCampaign(CampaignConfig(scale=scale, seed=11)).run()
    pipeline = AnalysisPipeline(result.records, result.user_names)

    # Which system executables show more than one library environment?
    variant_counts: Counter[str] = Counter()
    for record in result.records:
        if record.category == ExecutableCategory.SYSTEM.value and record.objects_h:
            variant_counts[(record.executable, record.objects_h)] += 0  # touch key
    per_executable: dict[str, set[str]] = {}
    for record in result.records:
        if record.category == ExecutableCategory.SYSTEM.value and record.objects_h:
            per_executable.setdefault(record.executable, set()).add(record.objects_h)

    deviating = sorted((path for path, variants in per_executable.items()
                        if len(variants) > 1),
                       key=lambda path: len(per_executable[path]), reverse=True)
    print(f"\n{len(per_executable)} distinct system executables observed; "
          f"{len(deviating)} show more than one library environment:\n")
    for path in deviating:
        print(f"  {path}: {len(per_executable[path])} distinct OBJECTS_H")

    # Zoom into bash, the paper's Table 4 case.
    print()
    rows = pipeline.table4_shared_object_variants("bash")
    print(report.render_shared_object_variants(rows, title="bash library variants (Table 4)"))
    if len(rows) > 1:
        dominant = set(rows[0].objects)
        print("\nDeviations from the dominant bash environment:")
        for index, row in enumerate(rows[1:], start=2):
            extra = sorted(set(row.objects) - dominant)
            missing = sorted(dominant - set(row.objects))
            print(f"  variant {index} ({row.process_count} processes):")
            for path in extra:
                print(f"    + {path}")
            for path in missing:
                print(f"    - {path}")

    # The same grouping works for any executable; show srun for contrast.
    srun_rows = shared_object_variant_table(result.records, "srun",
                                            distinguish=("libslurm", "libmunge"))
    print()
    print(report.render_shared_object_variants(srun_rows, title="srun library variants"))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.01)
