#!/usr/bin/env python3
"""Generate a full software-usage report for system operators.

This is the "usage statistics" use case of the paper: after a collection
campaign, produce the per-user activity table, the most-used system
executables, the derived application labels, compiler and library dependency
matrices, and the Python interpreter/package statistics -- everything a user
support team or a procurement decision would draw on (Tables 2-6, 8 and
Figures 2-5).

Run with::

    python examples/software_usage_report.py [scale] [output_path]
"""

from __future__ import annotations

import sys

from repro.core import AnalysisPipeline
from repro.workload import CampaignConfig, DeploymentCampaign


def main(scale: float = 0.01, output_path: str | None = None) -> None:
    print(f"Running the opt-in deployment campaign at scale {scale} ...")
    result = DeploymentCampaign(CampaignConfig(scale=scale, seed=42)).run()
    pipeline = AnalysisPipeline(result.records, result.user_names)

    header = [
        "SIREN software usage report",
        "===========================",
        f"users: {len(result.user_names)}   jobs: {result.jobs_run:,d}   "
        f"processes: {result.processes_run:,d}   records: {len(result.records):,d}",
        f"datagrams sent: {result.channel.datagrams_sent:,d}   "
        f"incomplete records: {result.incomplete_fraction:.4%}",
        "",
    ]
    body = pipeline.render_all()
    text = "\n".join(header) + "\n" + body

    if output_path:
        with open(output_path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"Report written to {output_path} ({len(text.splitlines())} lines).")
    else:
        print(text)


if __name__ == "__main__":
    scale_arg = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    output_arg = sys.argv[2] if len(sys.argv) > 2 else None
    main(scale_arg, output_arg)
