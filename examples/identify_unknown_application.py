#!/usr/bin/env python3
"""Identify an unknown application from a full opt-in campaign (Table 7 workflow).

This example reproduces the paper's headline analysis end-to-end: it runs a
scaled version of the 12-user opt-in deployment campaign, derives software
labels from file/path names, finds the instances whose names are nondescript
(``a.out``, ``model.x``), and identifies them by comparing their fuzzy hashes
(modules, compilers, shared objects, raw file, printable strings, symbols)
against every known instance.  It finishes with the "verify functionality"
step of Section 4.3: inspecting the matched instance's derived libraries to
confirm the scientific domain.

Run with::

    python examples/identify_unknown_application.py [scale]

where ``scale`` (default 0.01) is the fraction of the paper's job counts to
simulate.
"""

from __future__ import annotations

import sys

from repro.analysis import report
from repro.analysis.libfilter import record_library_tags
from repro.core import AnalysisPipeline
from repro.workload import CampaignConfig, DeploymentCampaign


def main(scale: float = 0.01) -> None:
    print(f"Running the opt-in deployment campaign at scale {scale} ...")
    result = DeploymentCampaign(CampaignConfig(scale=scale, seed=7)).run()
    print(f"  jobs: {result.jobs_run:,d}   processes: {result.processes_run:,d}   "
          f"consolidated records: {len(result.records):,d}")
    print(f"  incomplete records (UDP loss): {result.incomplete_fraction:.4%}\n")

    pipeline = AnalysisPipeline(result.records, result.user_names)

    # Step 1: derive labels from file/path names (Table 5).
    labels = pipeline.table5_user_applications()
    print(report.render_labels(labels, title="Step 1 -- derived software labels"))
    unknown_rows = [row for row in labels if row.label == "UNKNOWN"]
    if not unknown_rows:
        print("\nNo UNKNOWN instances in this campaign -- increase the scale.")
        return
    print(f"\n{unknown_rows[0].process_count} process(es) could not be labelled "
          f"from their file or path names.\n")

    # Step 2: similarity search against all known instances (Table 7).  The
    # search runs on the inverted n-gram index when the dataset is large
    # enough; `indexed=False` would force the brute-force all-pairs path with
    # identical results.
    search = pipeline.similarity_search(indexed=True)
    for unknown in search.unknown_instances():
        results = search.query(unknown, top=10)
        print(report.render_similarity(
            results, title=f"Step 2 -- similarity search for {unknown.executable}"))
        best = results[0]
        print(f"-> identified as {best.label} "
              f"(average similarity {best.average:.1f}, "
              f"raw-file similarity {best.scores['FI_H']})\n")
    pairs = len(search.unknown_instances()) * len(search.labelled_instances())
    mode = "n-gram index" if search.indexed else "brute force (small dataset)"
    print(f"Search mode: {mode} -- {search.comparisons} digest comparisons "
          f"for {pairs} instance pairs x 6 hash columns.")
    stats = search.index_stats()
    if stats is not None:
        print(f"  index: {stats.digests} digests, {stats.grams} distinct 7-grams, "
              f"{stats.pairs_pruned} candidate pairs pruned without comparison.\n")

    # Step 3: verify the functionality via the loaded scientific libraries.
    unknown_records = [record for record in result.records
                       if record.executable.endswith(("a.out", "model.x"))]
    tags = sorted({tag for record in unknown_records for tag in record_library_tags(record)})
    print("Step 3 -- derived libraries of the unknown instances:")
    print("  " + ", ".join(tags))
    climate_markers = [tag for tag in tags if "climatedt" in tag or "netcdf" in tag
                       or "hdf5" in tag]
    if climate_markers:
        print(f"  -> {', '.join(climate_markers)} indicate climate/weather simulation "
              f"(consistent with ICON).")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.01)
