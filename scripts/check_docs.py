#!/usr/bin/env python3
"""Documentation link and quickstart checker.

Keeps ``README.md`` and ``docs/*.md`` honest without any third-party tools:

* every relative Markdown link target must exist in the repository,
* every backtick-quoted repository path (``src/...``, ``examples/foo.py``,
  ``benchmarks/...``, ...) must exist,
* every ``python <file>`` command shown in fenced shell blocks must point at
  an existing script,
* every ``BENCH_*.json`` mentioned (the README benchmark table keys its
  claims to committed benchmark reports) must exist at the repo root, and
* every fenced Python code block must at least compile, and its
  ``import``/``from`` lines against the local ``repro`` package must resolve
  (so the README quickstart cannot silently rot).

Run from anywhere; exits non-zero listing every stale reference:

    python scripts/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documentation files under check.
DOC_FILES = ("README.md", "docs/architecture.md", "docs/devtools.md")

#: Benchmark reports that must be committed at the repo root whether or not
#: a doc currently cites them (the docs-mention check alone would go quiet
#: if a report's README table row were deleted along with the report).
REQUIRED_BENCH_REPORTS = (
    "BENCH_campaign.json",
    "BENCH_compare.json",
    "BENCH_faults.json",
    "BENCH_hashing.json",
    "BENCH_ingest.json",
    "BENCH_live.json",
    "BENCH_store.json",
)

_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)\)")
_BENCH_REF = re.compile(r"`?(BENCH_\w+\.json)`?")
_BACKTICK_PATH = re.compile(
    r"`((?:src|docs|examples|benchmarks|tests|scripts)/[\w./-]*)`")
_PYTHON_CMD = re.compile(r"python\s+((?:examples|scripts|benchmarks)/[\w./-]+\.py)")
_FENCE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)
_IMPORT_LINE = re.compile(r"^(?:from\s+(repro[\w.]*)\s+import\s+([\w, ]+)|import\s+(repro[\w.]*))",
                          re.MULTILINE)


def _exists(path: str) -> bool:
    return (REPO_ROOT / path.rstrip("/")).exists()


def check_file(doc_path: Path) -> list[str]:
    """Return one error string per stale reference in ``doc_path``."""
    errors: list[str] = []
    text = doc_path.read_text(encoding="utf-8")
    try:
        rel = doc_path.relative_to(REPO_ROOT)
    except ValueError:  # e.g. a temporary file under test
        rel = doc_path

    for match in _MD_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = (doc_path.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{rel}: broken link -> {target}")

    for pattern in (_BACKTICK_PATH, _PYTHON_CMD):
        for match in pattern.finditer(text):
            if not _exists(match.group(1)):
                errors.append(f"{rel}: missing path -> {match.group(1)}")

    for name in sorted({m.group(1) for m in _BENCH_REF.finditer(text)}):
        if not _exists(name):
            errors.append(f"{rel}: benchmark report not committed -> {name}")

    for language, body in _FENCE.findall(text):
        if language != "python":
            continue
        try:
            compile(body, f"{rel}:<python block>", "exec")
        except SyntaxError as exc:
            errors.append(f"{rel}: python block does not compile -> {exc}")
            continue
        errors.extend(_check_imports(body, rel))
    return errors


def _check_imports(body: str, rel: Path) -> list[str]:
    """Resolve ``repro`` imports of a doc code block against the real package."""
    import importlib

    sys.path.insert(0, str(REPO_ROOT / "src"))
    errors: list[str] = []
    try:
        for from_module, names, plain_module in _IMPORT_LINE.findall(body):
            module_name = from_module or plain_module
            try:
                module = importlib.import_module(module_name)
            except ImportError as exc:
                errors.append(f"{rel}: quickstart imports fail -> {exc}")
                continue
            for name in filter(None, (part.strip() for part in names.split(","))):
                if not hasattr(module, name):
                    errors.append(
                        f"{rel}: quickstart name missing -> {module_name}.{name}")
    finally:
        sys.path.remove(str(REPO_ROOT / "src"))
    return errors


def main() -> int:
    errors: list[str] = []
    for doc in DOC_FILES:
        path = REPO_ROOT / doc
        if not path.exists():
            errors.append(f"missing documentation file: {doc}")
            continue
        errors.extend(check_file(path))
    for name in REQUIRED_BENCH_REPORTS:
        if not _exists(name):
            errors.append(f"required benchmark report not committed -> {name}")
    if errors:
        print(f"documentation check FAILED ({len(errors)} problem(s)):")
        for error in errors:
            print(f"  - {error}")
        return 1
    print(f"documentation check passed ({len(DOC_FILES)} file(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
