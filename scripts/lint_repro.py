#!/usr/bin/env python3
"""Repo-invariant lint gate, runnable from a bare checkout.

Thin wrapper around ``python -m repro.devtools.lint`` that puts ``src`` on
the import path first, so CI and fresh clones need no installation step:

    python scripts/lint_repro.py                 # lint src/repro, all rules
    python scripts/lint_repro.py --strict --json lint-report.json

Exits 0 on a clean tree, 1 on any finding.  See ``docs/devtools.md`` for
the rule catalogue and the suppression syntax.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.devtools.lint.cli import main  # noqa: E402 - path bootstrap first

if __name__ == "__main__":
    sys.exit(main())
