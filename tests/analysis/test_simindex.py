"""Tests for the inverted n-gram digest index and the index-assisted search.

The load-bearing property is *no false negatives*: every pair the index
prunes must be a pair ``FuzzyHasher.compare`` would have scored 0, so an
index-assisted search that skips pruned pairs is result-identical to brute
force.  The tests check that property three ways: on handcrafted digests
exercising each banding/fallback path, on randomised synthetic records, and
on real campaign data.
"""

from __future__ import annotations

import pytest

from repro.analysis.similarity import HASH_COLUMNS, SimilaritySearch
from repro.analysis.simindex import DigestIndex, SimilarityIndex
from repro.db.store import ProcessRecord
from repro.hashing.ssdeep import FuzzyHasher, compare, fuzzy_hash_text
from repro.util.rng import SeededRNG

SIG = "ABCDEFGHIJKLMNOP"  # 16 chars -> plenty of 7-grams
OTHER = "qrstuvwxyz012345"


def _index(*digests: str) -> DigestIndex:
    index = DigestIndex()
    for digest_id, digest in enumerate(digests):
        index.add(digest_id, digest)
    return index


class TestDigestIndexBanding:
    def test_same_blocksize_shared_gram_is_candidate(self):
        index = _index(f"24:{SIG}:{OTHER}")
        assert index.candidates(f"24:{SIG}:zzzzzzzz") == {0}

    def test_double_blocksize_chunk_meets_double_chunk(self):
        # compare(48:..., 24:...) aligns the 48-digest's chunk part with the
        # 24-digest's double-chunk part; the index must band them together.
        index = _index(f"24:{OTHER}:{SIG}")
        assert index.candidates(f"48:{SIG}:zzzzzzzz") == {0}

    def test_half_blocksize_double_chunk_meets_chunk(self):
        index = _index(f"48:{SIG}:{OTHER}")
        assert index.candidates(f"24:zzzzzzzz:{SIG}") == {0}

    def test_incompatible_blocksizes_pruned_even_with_identical_signatures(self):
        index = _index(f"12:{SIG}:{SIG}")
        assert index.candidates(f"48:{SIG}:{SIG}") == set()
        # ... which is sound because compare() also refuses the pair:
        assert compare(f"48:{SIG}:{SIG}", f"12:{SIG}:{SIG}") == 0

    def test_no_shared_gram_is_pruned(self):
        index = _index(f"24:{SIG}:{SIG}")
        assert index.candidates(f"24:{OTHER}:{OTHER}") == set()
        assert compare(f"24:{OTHER}:{OTHER}", f"24:{SIG}:{SIG}") == 0

    def test_sequence_elimination_applied_before_gramming(self):
        # "AAAAAAAA..." collapses to "AAA..." on both sides of compare(); the
        # index grams the collapsed form, so differing run lengths still meet.
        index = _index(f"24:AAAAAAAA{SIG}:{OTHER}")
        assert index.candidates(f"24:AAAA{SIG}:zzzzzzzz") == {0}


class TestDigestIndexExactPath:
    def test_short_identical_signatures_are_candidates(self):
        # Too short for any 7-gram, but compare() == 100 for identical
        # digests at the same block size -- the exact table must catch it.
        index = _index("3:ABC:DE")
        assert index.candidates("3:ABC:DE") == {0}
        assert compare("3:ABC:DE", "3:ABC:DE") == 100

    def test_short_differing_signatures_pruned(self):
        index = _index("3:ABC:DE")
        assert index.candidates("3:ABD:DE") == set()
        assert compare("3:ABD:DE", "3:ABC:DE") == 0

    def test_short_identical_signatures_different_blocksize_pruned(self):
        index = _index("3:ABC:DE")
        assert index.candidates("6:ABC:DE") == set()
        assert compare("6:ABC:DE", "3:ABC:DE") == 0

    def test_empty_signature_never_matches(self):
        index = _index("3::")
        assert index.candidates("3::") == set()
        assert compare("3::", "3::") == 0


class TestDigestIndexInput:
    def test_empty_and_invalid_digests_not_indexed(self):
        index = DigestIndex()
        assert index.add(0, "") is False
        assert index.add(1, "not a digest") is False
        assert index.add(2, f"24:{SIG}:{OTHER}") is True
        assert len(index) == 1

    def test_invalid_query_returns_no_candidates(self):
        index = _index(f"24:{SIG}:{OTHER}")
        assert index.candidates("") == set()
        assert index.candidates("garbage") == set()

    def test_ngram_validation(self):
        with pytest.raises(ValueError):
            DigestIndex(ngram=1)

    def test_stats_track_pruning(self):
        index = _index(f"24:{SIG}:{OTHER}", f"24:{OTHER}:{SIG}")
        index.candidates(f"24:{SIG}:zzzzzzzz")
        assert index.stats.digests == 2
        assert index.stats.queries == 1
        assert index.stats.candidates_returned + index.stats.pairs_pruned == 2


class TestCompletenessProperty:
    def test_every_pruned_pair_scores_zero(self):
        """Handcrafted pool spanning bands and signature shapes: the index may
        return false positives but never false negatives."""
        pool = [
            f"3:{SIG}:{OTHER}", f"6:{SIG}:{OTHER}", f"12:{OTHER}:{SIG}",
            f"24:{SIG}:{SIG}", f"48:{OTHER}:{OTHER}", f"96:{SIG}:{OTHER}",
            "3:ABC:DE", "3:ABC:DE", "6:ABC:DE", "3::", f"24:AAAAAAAA{SIG}:zz",
            f"12:AAAA{SIG}:zz",
        ]
        index = _index(*pool)
        for i, query in enumerate(pool):
            candidates = index.candidates(query)
            for j, other in enumerate(pool):
                if j not in candidates:
                    assert compare(query, other) == 0, (query, other)


def _record(executable: str, *, content: str, environment: str,
            uid: int = 1000) -> ProcessRecord:
    return ProcessRecord(
        jobid="1", stepid="0", pid=1, hash="h", host="n", time=0, uid=uid,
        executable=executable, category="user",
        modules_h=fuzzy_hash_text(environment + " modules"),
        compilers_h=fuzzy_hash_text(environment + " compilers"),
        objects_h=fuzzy_hash_text(environment + " objects"),
        file_h=fuzzy_hash_text(content + " file"),
        strings_h=fuzzy_hash_text(content + " strings"),
        symbols_h=fuzzy_hash_text(content + " symbols"),
    )


@pytest.fixture(scope="module")
def synthetic_records() -> list[ProcessRecord]:
    """~30 instances from seeded content families with random mutations."""
    rng = SeededRNG(42)
    words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]
    records: list[ProcessRecord] = []
    for family in range(6):
        base = [rng.choice(words) for _ in range(150)]
        environment = f"env-{family % 3} " * 60
        for variant in range(5):
            content = list(base)
            for _ in range(rng.randint(0, 30 * variant)):
                content[rng.randint(0, len(content) - 1)] = rng.choice(words)
            name = "a.out" if family == 0 and variant == 4 else f"app{family}"
            records.append(_record(
                f"/proj/u/fam{family}/v{variant}/{name}",
                content=" ".join(content), environment=environment))
    return records


class TestIndexedSearchEquivalence:
    """Property-style: indexed and brute-force searches are result-identical."""

    def test_synthetic_query_rankings_identical_for_every_baseline(self, synthetic_records):
        brute = SimilaritySearch(synthetic_records, use_index=False)
        indexed = SimilaritySearch(synthetic_records, use_index=True, index_threshold=0)
        assert indexed.indexed and not brute.indexed
        for brute_instance, indexed_instance in zip(brute.instances, indexed.instances):
            assert brute.query(brute_instance, candidates=brute.instances) == \
                indexed.query(indexed_instance, candidates=indexed.instances)

    def test_synthetic_identify_unknown_identical(self, synthetic_records):
        brute = SimilaritySearch(synthetic_records, use_index=False)
        indexed = SimilaritySearch(synthetic_records, use_index=True, index_threshold=0)
        assert brute.identify_unknown(top=10) == indexed.identify_unknown(top=10)
        assert indexed.comparisons <= brute.comparisons

    def test_campaign_identify_unknown_identical(self, campaign_records):
        brute = SimilaritySearch(campaign_records, use_index=False)
        indexed = SimilaritySearch(campaign_records, use_index=True, index_threshold=0)
        assert brute.identify_unknown(top=10) == indexed.identify_unknown(top=10)
        assert indexed.comparisons < brute.comparisons

    def test_campaign_pairwise_matrix_identical(self, campaign_records):
        for column in ("FI_H", "MO_H"):
            brute = SimilaritySearch(campaign_records, use_index=False)
            indexed = SimilaritySearch(campaign_records, use_index=True, index_threshold=0)
            assert brute.pairwise_average_matrix(column) == \
                indexed.pairwise_average_matrix(column)
            assert indexed.comparisons <= brute.comparisons

    def test_unindexed_column_matches_brute_force(self, synthetic_records):
        """Columns the index does not cover score 0 on both paths, not crash."""
        brute = SimilaritySearch(synthetic_records, use_index=False)
        indexed = SimilaritySearch(synthetic_records, use_index=True, index_threshold=0)
        columns = ("FI_H", "NOT_A_COLUMN")
        unknown_b = brute.unknown_instances()[0]
        unknown_i = indexed.unknown_instances()[0]
        assert brute.query(unknown_b, columns=columns) == \
            indexed.query(unknown_i, columns=columns)
        assert brute.pairwise_average_matrix("NOT_A_COLUMN") == \
            indexed.pairwise_average_matrix("NOT_A_COLUMN")

    def test_campaign_query_with_column_subset_identical(self, campaign_records):
        brute = SimilaritySearch(campaign_records, use_index=False)
        indexed = SimilaritySearch(campaign_records, use_index=True, index_threshold=0)
        for unknown_b, unknown_i in zip(brute.unknown_instances(),
                                        indexed.unknown_instances()):
            assert brute.query(unknown_b, columns=("FI_H", "SY_H")) == \
                indexed.query(unknown_i, columns=("FI_H", "SY_H"))

    def test_index_stats_exposed(self, campaign_records):
        indexed = SimilaritySearch(campaign_records, use_index=True, index_threshold=0)
        indexed.identify_unknown(top=5)
        stats = indexed.index_stats()
        assert stats is not None
        assert stats.digests > 0 and stats.grams > 0
        assert stats.pairs_pruned > 0


class TestFallbacks:
    @pytest.fixture()
    def tiny_records(self) -> list[ProcessRecord]:
        return [
            _record("/p/u/one/app", content="first payload " * 40, environment="env-a " * 40),
            _record("/p/u/two/app", content="second payload " * 40, environment="env-a " * 40),
            _record("/p/u/three/a.out", content="first payload " * 40, environment="env-a " * 40),
        ]

    def test_small_dataset_falls_back_to_brute_force(self, tiny_records):
        search = SimilaritySearch(tiny_records)  # default threshold
        assert len(search.instances) < search.index_threshold
        assert not search.indexed
        assert search.index_stats() is None
        # ... and still answers queries (via the brute-force path).
        assert search.identify_unknown(top=2)

    def test_forced_index_on_small_dataset_identical(self, tiny_records):
        brute = SimilaritySearch(tiny_records, use_index=False)
        forced = SimilaritySearch(tiny_records, use_index=True, index_threshold=0)
        assert forced.indexed
        assert brute.identify_unknown() == forced.identify_unknown()

    def test_non_default_hasher_disables_index(self, tiny_records):
        loose = FuzzyHasher(require_common_substring=False)
        search = SimilaritySearch(tiny_records, hasher=loose,
                                  use_index=True, index_threshold=0)
        assert not search.indexed  # pruning guarantee void without the 7-gram gate

    def test_use_index_false_disables_index(self, tiny_records):
        search = SimilaritySearch(tiny_records, use_index=False, index_threshold=0)
        assert not search.indexed

    def test_external_baseline_and_candidates_supported(self, tiny_records):
        """Instances outside the built index are compared directly."""
        from repro.analysis.similarity import ExecutableInstance

        search = SimilaritySearch(tiny_records, use_index=True, index_threshold=0)
        external = ExecutableInstance(
            executable="/elsewhere/app", label="icon",
            hashes={column: fuzzy_hash_text("first payload " * 40 + " file")
                    for column in HASH_COLUMNS})
        unknown = search.unknown_instances()[0]
        indexed_scores = search.query(unknown, candidates=[external])
        brute = SimilaritySearch(tiny_records, use_index=False)
        brute_scores = brute.query(brute.unknown_instances()[0], candidates=[external])
        assert indexed_scores == brute_scores
