"""Tests for usage statistics (Tables 2-4, 8) and label derivation (Table 5)."""

from repro.analysis.labels import (
    UNKNOWN_LABEL,
    derive_label,
    label_by_executable,
    records_for_label,
    user_application_table,
)
from repro.analysis.stats import (
    activity_totals,
    python_interpreter_table,
    shared_object_variant_table,
    system_executable_count,
    system_executable_table,
    user_activity_table,
)
from repro.db.store import ProcessRecord


def _record(executable: str, category: str, *, uid: int = 1000, jobid: str = "1",
            objects: str = "", objects_h: str = "", file_h: str = "",
            script_h: str = "", compilers: str = "") -> ProcessRecord:
    return ProcessRecord(jobid=jobid, stepid="0", pid=1, hash="h", host="n1", time=0,
                         uid=uid, executable=executable, category=category,
                         objects=objects, objects_h=objects_h, file_h=file_h,
                         script_h=script_h, compilers=compilers)


USERS = {1000: "user_1", 1001: "user_2"}


class TestDeriveLabel:
    def test_known_software_names(self):
        assert derive_label("/project/p/u/lammps/bin-a/lmp") == "LAMMPS"
        assert derive_label("/appl/local/csc/soft/bio/gromacs/2024.1/gmx_mpi") == "GROMACS"
        assert derive_label("/project/p/u/miniconda3/bin/python3.10") == "miniconda"
        assert derive_label("/project/p/u/icon-model/bin-x/icon_ocean") == "icon"
        assert derive_label("/project/p/u/amber22/pmemd.hip") == "amber"
        assert derive_label("/users/u/tools/gzip-1.13/bin/gzip") == "gzip"
        assert derive_label("/project/p/u/RadRad/RadRad") == "RadRad"
        assert derive_label("/project/p/u/janko/bin-prod/janko") == "janko"
        assert derive_label("/project/p/u/alexandria/bin-v1/alexandria") == "alexandria"

    def test_nondescript_names_are_unknown(self):
        assert derive_label("/scratch/p/u/run_tmp/exp_042/a.out") == UNKNOWN_LABEL
        assert derive_label("/scratch/p/u/run_tmp/exp_043/model.x") == UNKNOWN_LABEL

    def test_case_insensitive(self):
        assert derive_label("/project/p/u/LAMMPS-stable/lmp_gpu") == "LAMMPS"

    def test_first_rule_wins(self):
        # A path mentioning both lammps and gromacs matches the earlier rule.
        assert derive_label("/project/p/u/lammps-vs-gromacs/lmp") == "LAMMPS"


class TestUserActivityTable:
    def test_counts_and_sorting(self):
        records = [
            _record("/usr/bin/bash", "system", uid=1000, jobid="1"),
            _record("/usr/bin/rm", "system", uid=1000, jobid="2"),
            _record("/project/p/u/lmp", "user", uid=1001, jobid="3"),
            _record("/usr/bin/python3.10", "python", uid=1001, jobid="3"),
        ]
        rows = user_activity_table(records, USERS)
        assert rows[0].user == "user_1"
        assert rows[0].job_count == 2 and rows[0].system_processes == 2
        assert rows[1].user == "user_2"
        assert rows[1].user_processes == 1 and rows[1].python_processes == 1

    def test_totals(self):
        records = [
            _record("/usr/bin/bash", "system", uid=1000, jobid="1"),
            _record("/project/p/u/lmp", "user", uid=1001, jobid="2"),
        ]
        total = activity_totals(user_activity_table(records, USERS))
        assert total.user == "Total"
        assert total.job_count == 2
        assert total.total_processes == 2

    def test_unmapped_uid_fallback(self):
        rows = user_activity_table([_record("/usr/bin/ls", "system", uid=4242)], {})
        assert rows[0].user == "uid_4242"


class TestSystemExecutableTable:
    def test_aggregation_and_top(self):
        records = [
            _record("/usr/bin/bash", "system", uid=1000, jobid="1", objects_h="3:a:b"),
            _record("/usr/bin/bash", "system", uid=1001, jobid="2", objects_h="3:c:d"),
            _record("/usr/bin/rm", "system", uid=1000, jobid="1", objects_h="3:a:b"),
            _record("/project/p/u/lmp", "user", uid=1000, jobid="1"),
        ]
        rows = system_executable_table(records, USERS, top=1)
        assert len(rows) == 1
        assert rows[0].executable == "/usr/bin/bash"
        assert rows[0].unique_users == 2
        assert rows[0].process_count == 2
        assert rows[0].unique_objects_h == 2
        assert system_executable_count(records) == 2

    def test_user_records_excluded(self):
        rows = system_executable_table([_record("/project/p/u/lmp", "user")], USERS)
        assert rows == []


class TestSharedObjectVariants:
    def test_groups_by_object_set(self):
        default_set = "/lib64/libtinfo.so.6\n/lib64/libc.so.6"
        alt_set = "/appl/spack/ncurses/libtinfo.so.6\n/lib64/libc.so.6\n/lib64/libm.so.6"
        records = [
            _record("/usr/bin/bash", "system", objects=default_set),
            _record("/usr/bin/bash", "system", objects=default_set),
            _record("/usr/bin/bash", "system", objects=alt_set),
            _record("/usr/bin/ls", "system", objects="/lib64/libc.so.6"),
        ]
        rows = shared_object_variant_table(records, "bash")
        assert len(rows) == 2
        assert rows[0].process_count == 2
        assert rows[0].distinguishing["libtinfo"] == "/lib64/libtinfo.so.6"
        assert rows[0].distinguishing["libm"] == ""
        assert rows[1].distinguishing["libm"] == "/lib64/libm.so.6"

    def test_unknown_executable_empty(self):
        assert shared_object_variant_table([], "bash") == []


class TestPythonInterpreterTable:
    def test_aggregation(self):
        records = [
            _record("/usr/bin/python3.10", "python", uid=1000, jobid="1", script_h="3:s1:x"),
            _record("/usr/bin/python3.10", "python", uid=1001, jobid="2", script_h="3:s2:x"),
            _record("/usr/bin/python3.6", "python", uid=1000, jobid="3", script_h="3:s3:x"),
            _record("/project/p/u/miniconda3/bin/python3.10", "user", uid=1000, jobid="4"),
        ]
        rows = python_interpreter_table(records, USERS)
        assert rows[0].interpreter == "python3.10"
        assert rows[0].unique_users == 2
        assert rows[0].unique_script_h == 2
        assert rows[1].interpreter == "python3.6"
        # user-directory interpreters are not part of the PYTHON category table
        assert all(row.interpreter != "python3.10" or row.process_count == 2 for row in rows)


class TestUserApplicationTable:
    def test_label_aggregation(self):
        records = [
            _record("/project/p/a/lammps/lmp", "user", uid=1000, jobid="1", file_h="3:f1:x"),
            _record("/project/p/b/lammps/lmp", "user", uid=1001, jobid="2", file_h="3:f2:x"),
            _record("/scratch/p/u/exp/a.out", "user", uid=1000, jobid="3", file_h="3:f3:x"),
            _record("/usr/bin/bash", "system", uid=1000, jobid="1"),
        ]
        rows = user_application_table(records, USERS)
        assert rows[0].label == "LAMMPS"
        assert rows[0].unique_users == 2 and rows[0].unique_file_h == 2
        assert any(row.label == UNKNOWN_LABEL for row in rows)

    def test_records_for_label(self):
        records = [
            _record("/project/p/a/lammps/lmp", "user"),
            _record("/project/p/a/icon-model/icon", "user"),
        ]
        assert len(records_for_label(records, "LAMMPS")) == 1

    def test_label_by_executable(self):
        records = [_record("/project/p/a/lammps/lmp", "user"),
                   _record("/usr/bin/bash", "system")]
        mapping = label_by_executable(records)
        assert mapping == {"/project/p/a/lammps/lmp": "LAMMPS"}
