"""Tests for compiler combinations (Table 6), library tags (Figure 2), Python
packages (Figure 3) and the usage matrices (Figures 4-5)."""

from repro.analysis.compilers import compiler_combination_table, record_compiler_labels
from repro.analysis.libfilter import library_usage_table, record_library_tags
from repro.analysis.matrices import compiler_label_matrix, library_label_matrix
from repro.analysis.pythonpkgs import audit_python_packages, python_package_table
from repro.corpus.toolchains import TOOLCHAINS
from repro.db.store import ProcessRecord

USERS = {1000: "user_1", 1001: "user_2"}

_SUSE = TOOLCHAINS["GCC [SUSE]"].comment
_CRAY = TOOLCHAINS["clang [Cray]"].comment
_LLD = TOOLCHAINS["LLD [AMD]"].comment


def _record(executable: str, *, category: str = "user", uid: int = 1000, jobid: str = "1",
            compilers: str = "", objects: str = "", file_h: str = "3:f:x",
            python_packages: str = "", script_h: str = "") -> ProcessRecord:
    return ProcessRecord(jobid=jobid, stepid="0", pid=1, hash="h", host="n", time=0,
                         uid=uid, executable=executable, category=category,
                         compilers=compilers, objects=objects, file_h=file_h,
                         python_packages=python_packages, script_h=script_h)


class TestCompilerAnalysis:
    def test_record_labels(self):
        record = _record("/p/lmp", compilers=f"{_SUSE};{_CRAY}")
        assert record_compiler_labels(record) == ("GCC [SUSE]", "clang [Cray]")

    def test_combination_table(self):
        records = [
            _record("/p/u1/icon-model/icon", uid=1000, jobid="1",
                    compilers=f"{_SUSE};{_CRAY}", file_h="3:a:x"),
            _record("/p/u2/icon-model/icon", uid=1001, jobid="2",
                    compilers=f"{_SUSE};{_CRAY}", file_h="3:b:x"),
            _record("/p/u1/gromacs/gmx_mpi", uid=1000, jobid="3",
                    compilers=_LLD, file_h="3:c:x"),
            _record("/usr/bin/bash", category="system", compilers=_SUSE),
        ]
        rows = compiler_combination_table(records, USERS)
        assert rows[0].compilers == ("GCC [SUSE]", "clang [Cray]")
        assert rows[0].unique_users == 2
        assert rows[0].unique_file_h == 2
        assert rows[0].display == "GCC [SUSE], clang [Cray]"
        assert rows[1].compilers == ("LLD [AMD]",)

    def test_records_without_compilers_skipped(self):
        assert compiler_combination_table([_record("/p/x", compilers="")], USERS) == []


class TestLibraryUsage:
    def test_record_library_tags(self):
        record = _record("/p/lmp", objects="\n".join([
            "/appl/local/siren/lib/siren.so",
            "/lib64/libpthread.so.0",
            "/opt/rocm-6.0.3/lib/librocblas.so.4",
            "/lib64/libc.so.6",
        ]))
        assert record_library_tags(record) == ["siren", "pthread", "rocm-blas"]

    def test_usage_table(self):
        records = [
            _record("/p/u1/lmp", uid=1000, jobid="1", file_h="3:a:x",
                    objects="/lib64/libpthread.so.0\n/opt/rocm-6.0.3/lib/libamdhip64.so.6"),
            _record("/p/u2/gmx", uid=1001, jobid="2", file_h="3:b:x",
                    objects="/lib64/libpthread.so.0"),
            _record("/usr/bin/bash", category="system",
                    objects="/lib64/libpthread.so.0"),
        ]
        rows = library_usage_table(records, USERS)
        by_tag = {row.tag: row for row in rows}
        assert by_tag["pthread"].unique_users == 2
        assert by_tag["pthread"].unique_executables == 2
        assert by_tag["rocm"].process_count == 1
        # system processes are not part of Figure 2
        assert by_tag["pthread"].process_count == 2


class TestPythonPackageAnalysis:
    def test_package_table(self):
        records = [
            _record("/usr/bin/python3.10", category="python", uid=1000, jobid="1",
                    python_packages="heapq,numpy", script_h="3:s1:x"),
            _record("/usr/bin/python3.10", category="python", uid=1001, jobid="2",
                    python_packages="heapq", script_h="3:s2:x"),
        ]
        rows = python_package_table(records, USERS)
        by_package = {row.package: row for row in rows}
        assert by_package["heapq"].unique_users == 2
        assert by_package["heapq"].unique_scripts == 2
        assert by_package["numpy"].unique_users == 1

    def test_audit_flags_unknown_and_insecure(self):
        records = [
            _record("/usr/bin/python3.11", category="python", uid=1000,
                    python_packages="numpy,reqeusts,insecure-lib", script_h="3:s:x"),
        ]
        findings = audit_python_packages(
            records, known_packages={"numpy", "insecure-lib"},
            insecure_packages={"insecure-lib"}, user_names=USERS,
        )
        flagged = {finding.package: finding for finding in findings}
        assert "reqeusts" in flagged            # unknown -> potential slopsquatting
        assert "insecure-lib" in flagged        # known insecure
        assert "numpy" not in flagged
        assert flagged["reqeusts"].users == ("user_1",)


class TestMatrices:
    def _records(self):
        return [
            _record("/p/u/icon-model/icon", uid=1000, compilers=f"{_SUSE};{_CRAY}",
                    objects="/opt/cray/pe/libsci/23.12/lib/libsci_cray.so.6"),
            _record("/p/u/gromacs/gmx_mpi", uid=1001, compilers=_LLD,
                    objects="/project/project_465000200/gromacs/2024.1/lib/libgromacs_mpi.so.8"),
        ]

    def test_compiler_matrix(self):
        matrix = compiler_label_matrix(self._records())
        assert matrix.value("icon", "GCC [SUSE]") == 1
        assert matrix.value("icon", "LLD [AMD]") == 0
        assert matrix.value("GROMACS", "LLD [AMD]") == 1

    def test_library_matrix(self):
        matrix = library_label_matrix(self._records())
        assert matrix.value("icon", "libsci-cray") == 1
        assert matrix.value("GROMACS", "gromacs") == 1
        assert matrix.value("GROMACS", "libsci-cray") == 0

    def test_row_and_totals_helpers(self):
        matrix = compiler_label_matrix(self._records())
        row = matrix.row("icon")
        assert row["clang [Cray]"] == 1
        totals = matrix.column_totals()
        assert totals["GCC [SUSE]"] == 1

    def test_explicit_column_order(self):
        matrix = compiler_label_matrix(self._records(),
                                       column_order=("LLD [AMD]", "GCC [SUSE]"))
        assert matrix.column_labels == ("LLD [AMD]", "GCC [SUSE]")
