"""Tests for the similarity search (Table 7) and report rendering."""

import pytest

from repro.analysis import report
from repro.analysis.similarity import HASH_COLUMNS, ExecutableInstance, SimilaritySearch
from repro.db.store import ProcessRecord
from repro.hashing.ssdeep import fuzzy_hash_text
from repro.util.errors import AnalysisError


def _record(executable: str, *, content_tag: str, env_tag: str = "env-a",
            category: str = "user", uid: int = 1000) -> ProcessRecord:
    """Build a user record whose six hashes are derived from two tags."""
    content = f"{content_tag} " * 120
    environment = f"{env_tag} " * 80
    return ProcessRecord(
        jobid="1", stepid="0", pid=1, hash="h", host="n", time=0, uid=uid,
        executable=executable, category=category,
        modules_h=fuzzy_hash_text(environment + "modules"),
        compilers_h=fuzzy_hash_text(environment + "compilers"),
        objects_h=fuzzy_hash_text(environment + "objects"),
        file_h=fuzzy_hash_text(content + "file"),
        strings_h=fuzzy_hash_text(content + "strings"),
        symbols_h=fuzzy_hash_text(content + "symbols"),
    )


@pytest.fixture()
def records() -> list[ProcessRecord]:
    return [
        _record("/p/u/icon-model/bin-a/icon", content_tag="icon release one"),
        _record("/p/u/icon-model/bin-b/icon", content_tag="icon release one patched lightly"),
        _record("/p/u/lammps/bin/lmp", content_tag="completely different lammps payload",
                env_tag="env-b"),
        # The unknown instance: identical content to bin-a, same environment.
        _record("/scratch/p/u/exp_042/a.out", content_tag="icon release one"),
    ]


class TestInstanceIndex:
    def test_instances_built_per_path(self, records):
        search = SimilaritySearch(records)
        assert len(search.instances) == 4

    def test_duplicate_records_merge_by_path(self, records):
        search = SimilaritySearch(records + [records[0]])
        assert len(search.instances) == 4
        merged = [i for i in search.instances if i.executable == records[0].executable][0]
        assert merged.process_count == 2

    def test_unknown_and_labelled_partition(self, records):
        search = SimilaritySearch(records)
        assert {i.executable for i in search.unknown_instances()} == {
            "/scratch/p/u/exp_042/a.out"}
        assert len(search.labelled_instances()) == 3

    def test_system_records_ignored(self, records):
        extra = _record("/usr/bin/bash", content_tag="bash", category="system")
        assert len(SimilaritySearch(records + [extra]).instances) == 4

    def test_records_without_file_hash_ignored(self, records):
        nohash = ProcessRecord(jobid="1", stepid="0", pid=2, hash="h", host="n", time=0,
                               uid=1000, executable="/p/u/x", category="user")
        assert len(SimilaritySearch(records + [nohash]).instances) == 4


class TestQueries:
    def test_identical_content_and_env_scores_100(self, records):
        search = SimilaritySearch(records)
        unknown = search.unknown_instances()[0]
        best = search.best_match(unknown)
        assert best is not None
        assert best.label == "icon"
        assert best.average == 100.0
        assert all(best.scores[column] == 100 for column in HASH_COLUMNS)

    def test_ranking_prefers_similar_variant_over_unrelated(self, records):
        search = SimilaritySearch(records)
        unknown = search.unknown_instances()[0]
        ranked = search.query(unknown)
        assert [result.label for result in ranked[:2]] == ["icon", "icon"]
        assert ranked[0].average >= ranked[1].average > ranked[-1].average

    def test_identify_unknown_returns_per_baseline_results(self, records):
        searches = SimilaritySearch(records).identify_unknown(top=2)
        assert set(searches) == {"/scratch/p/u/exp_042/a.out"}
        assert len(searches["/scratch/p/u/exp_042/a.out"]) == 2

    def test_identify_unknown_without_unknowns_raises(self, records):
        with pytest.raises(AnalysisError):
            SimilaritySearch(records[:3]).identify_unknown()

    def test_query_with_custom_columns(self, records):
        search = SimilaritySearch(records)
        unknown = search.unknown_instances()[0]
        ranked = search.query(unknown, columns=("FI_H",))
        assert set(ranked[0].scores) == {"FI_H"}

    def test_compare_instances_handles_missing_hash(self, records):
        search = SimilaritySearch(records)
        empty = ExecutableInstance(executable="/p/x", label="icon",
                                   hashes={column: "" for column in HASH_COLUMNS})
        scores = search.compare_instances(search.instances[0], empty)
        assert all(score == 0 for score in scores.values())

    def test_pairwise_matrix_shape_and_diagonal(self, records):
        search = SimilaritySearch(records)
        matrix = search.pairwise_average_matrix("FI_H")
        size = len(search.instances)
        assert len(matrix) == size and all(len(row) == size for row in matrix)
        assert all(matrix[i][i] == 100 for i in range(size))
        assert matrix[0][1] == matrix[1][0]

    def test_pairwise_matrix_counter_and_cache_skip_missing_digests(self, records):
        """Missing digests score their 0 for free, exactly as ``query`` does.

        Regression test: the matrix used to substitute a ``"3::"``
        placeholder, count a comparison for it, and plant the placeholder
        pair in the shared compare LRU -- diverging from the
        ``_compare_digests`` semantics every other path shares.
        """
        # Four instances, two of which never produced a MAPS_H-like digest:
        # clear MO_H on two records so missing-digest pairs exist.
        sparse = [
            records[0],
            records[1],
            ProcessRecord(**{**records[2].__dict__, "modules_h": ""}),
            ProcessRecord(**{**records[3].__dict__, "modules_h": ""}),
        ]
        search = SimilaritySearch(sparse, use_index=False)
        assert search.comparisons == 0
        matrix = search.pairwise_average_matrix("MO_H")
        # Only the single pair with both digests present was compared ...
        assert search.comparisons == 1
        # ... it missed the (cold) cache exactly once, and no placeholder
        # pair was ever planted in the LRU.
        info = search.hasher.compare_cache_info()
        assert info.misses == 1
        assert info.currsize == 1
        # and the scores are unchanged: missing pairs are 0, diagonal 100.
        assert matrix[2][3] == matrix[0][2] == 0
        assert all(matrix[i][i] == 100 for i in range(4))

    def test_result_row_format(self, records):
        search = SimilaritySearch(records)
        result = search.best_match(search.unknown_instances()[0])
        row = result.as_row()
        assert row[0] == "icon"
        assert len(row) == 2 + len(HASH_COLUMNS)


class TestCompareBackendEquivalence:
    """The batched bit-parallel engine against the seed scalar path."""

    def _searches(self, records, **kwargs):
        from repro.hashing.ssdeep import FuzzyHasher

        return (SimilaritySearch(records, **kwargs),
                SimilaritySearch(records,
                                 hasher=FuzzyHasher(compare_backend="reference"),
                                 **kwargs))

    def test_identify_unknown_identical_across_backends(self, records):
        bit, ref = self._searches(records)
        assert bit.identify_unknown(top=10) == ref.identify_unknown(top=10)
        assert bit.comparisons == ref.comparisons

    def test_pairwise_matrix_identical_across_backends(self, records):
        for use_index in (True, False):
            bit, ref = self._searches(records, use_index=use_index)
            for column in HASH_COLUMNS:
                assert bit.pairwise_average_matrix(column) == \
                    ref.pairwise_average_matrix(column)
            assert bit.comparisons == ref.comparisons

    def test_compare_instances_many_matches_scalar(self, records):
        bit, ref = self._searches(records)
        first = bit.instances[0]
        others = bit.instances[1:] + [ExecutableInstance(
            executable="/p/empty", label="empty",
            hashes={column: "" for column in HASH_COLUMNS})]
        batched = bit.compare_instances_many(first, others)
        scalar = [ref.compare_instances(first, other) for other in others]
        assert batched == scalar
        assert bit.comparisons == ref.comparisons

    def test_query_counter_matches_scalar_path(self, records):
        bit, ref = self._searches(records, use_index=False)
        unknown = bit.unknown_instances()[0]
        assert bit.query(unknown) == ref.query(unknown)
        assert bit.comparisons == ref.comparisons
        info = bit.hasher.compare_cache_info()
        # Every unique non-empty pair was scored once and cached.
        assert info.misses == info.currsize


class TestReportRendering:
    def test_render_similarity(self, records):
        search = SimilaritySearch(records)
        results = search.query(search.unknown_instances()[0], top=3)
        rendered = report.render_similarity(results)
        assert "Avg. Sim." in rendered
        assert "icon" in rendered

    def test_render_all_section_helpers_smoke(self, pipeline):
        """Every render helper produces a non-empty table on real campaign data."""
        assert "Table 2" in report.render_user_activity(pipeline.table2_user_activity())
        assert "Table 3" in report.render_system_executables(pipeline.table3_system_executables())
        assert "Table 5" in report.render_labels(pipeline.table5_user_applications())
        assert "Table 6" in report.render_compiler_combinations(pipeline.table6_compilers())
        assert "Table 8" in report.render_python_interpreters(pipeline.table8_python_interpreters())
        assert "Figure 2" in report.render_library_usage(pipeline.figure2_library_usage())
        assert "Figure 3" in report.render_python_packages(pipeline.figure3_python_packages())
