"""Tests for similarity clustering and repeated-execution recognition."""

import pytest

from repro.analysis.labels import UNKNOWN_LABEL
from repro.analysis.recognition import (
    cluster_instances,
    propagate_labels,
    recognize_repeated_executions,
    similarity_graph,
)
from repro.analysis.similarity import SimilaritySearch
from repro.db.store import ProcessRecord
from repro.hashing.ssdeep import fuzzy_hash_text


def _record(executable: str, *, content_tag: str = "", content: str | None = None,
            jobid: str = "1", time: int = 100, uid: int = 1000) -> ProcessRecord:
    content = content if content is not None else f"{content_tag} " * 150
    return ProcessRecord(
        jobid=jobid, stepid="0", pid=1, hash="h", host="n", time=time, uid=uid,
        executable=executable, category="user",
        modules_h=fuzzy_hash_text(content + "modules"),
        compilers_h=fuzzy_hash_text(content + "compilers"),
        objects_h=fuzzy_hash_text(content + "objects"),
        file_h=fuzzy_hash_text(content + "file"),
        strings_h=fuzzy_hash_text(content + "strings"),
        symbols_h=fuzzy_hash_text(content + "symbols"),
    )


@pytest.fixture()
def records() -> list[ProcessRecord]:
    icon_sections = [f"icon payload alpha section {index} routine nh_{index % 9}"
                     for index in range(120)]
    icon_base = "\n".join(icon_sections)
    # A lightly patched variant: a handful of sections rewritten.
    patched_sections = list(icon_sections)
    for index in (10, 40, 80):
        patched_sections[index] = f"icon payload alpha section {index} PATCHED r2"
    icon_variant = "\n".join(patched_sections)
    return [
        _record("/p/u/icon-model/bin-a/icon", content=icon_base, jobid="1"),
        _record("/p/u/icon-model/bin-b/icon", content=icon_variant, jobid="2", time=200),
        _record("/scratch/p/u/exp/a.out", content=icon_base, jobid="3", time=300),
        _record("/p/u/lammps/bin/lmp", content_tag="totally different lammps bits", jobid="4"),
    ]


class TestSimilarityGraph:
    def test_nodes_and_edges(self, records):
        search = SimilaritySearch(records)
        graph = similarity_graph(search, threshold=60)
        assert graph.number_of_nodes() == 4
        # icon variants and the a.out copy are linked; lammps is isolated.
        assert graph.number_of_edges() >= 2
        lammps_key = next(i.key for i in search.instances if "lmp" in i.executable)
        assert graph.degree[lammps_key] == 0

    def test_threshold_validation(self, records):
        with pytest.raises(ValueError):
            similarity_graph(SimilaritySearch(records), threshold=150)

    def test_high_threshold_removes_edges(self, records):
        search = SimilaritySearch(records)
        loose = similarity_graph(search, threshold=40)
        strict = similarity_graph(search, threshold=100)
        assert strict.number_of_edges() <= loose.number_of_edges()


class TestClustering:
    def test_families_and_label_propagation(self, records):
        families = cluster_instances(SimilaritySearch(records), threshold=60)
        assert families[0].size == 3
        assert families[0].label == "icon"
        assert families[0].unknown_members == 1
        labels = propagate_labels(families)
        assert labels["/scratch/p/u/exp/a.out"] == "icon"
        assert labels["/p/u/lammps/bin/lmp"] == "LAMMPS"

    def test_unknown_only_family_stays_unknown(self):
        lonely = [_record("/scratch/p/u/x/a.out", content_tag="mystery payload")]
        families = cluster_instances(SimilaritySearch(lonely), threshold=60)
        assert families[0].label == UNKNOWN_LABEL

    def test_families_sorted_by_size(self, records):
        families = cluster_instances(SimilaritySearch(records), threshold=60)
        sizes = [family.size for family in families]
        assert sizes == sorted(sizes, reverse=True)


class TestRepeatedExecutionRecognition:
    def test_repeated_family_detected(self, records):
        report = recognize_repeated_executions(records, threshold=60)
        by_label = {row.label: row for row in report.rows}
        assert by_label["icon"].job_count == 3
        assert by_label["icon"].repeated
        assert by_label["icon"].distinct_executables == 3
        assert by_label["icon"].first_seen == 100
        assert by_label["icon"].last_seen == 300
        assert not by_label["LAMMPS"].repeated
        assert report.repeated_families() == [by_label["icon"]]

    def test_on_campaign_data(self, campaign_records):
        """On real campaign data the unknown a.out joins the icon family."""
        report = recognize_repeated_executions(campaign_records, threshold=55)
        by_label = {row.label: row for row in report.rows}
        assert "icon" in by_label
        assert by_label["icon"].repeated
        search = SimilaritySearch(campaign_records)
        families = cluster_instances(search, threshold=55)
        labels = propagate_labels(families)
        aout = next(path for path in labels if path.endswith("a.out"))
        assert labels[aout] == "icon"
